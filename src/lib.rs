#![forbid(unsafe_code)]
//! # bloomsampletree
//!
//! A reproduction of **"Sampling and Reconstruction Using Bloom Filters"**
//! (Neha Sengupta, Amitabha Bagchi, Srikanta Bedathur, Maya Ramanath;
//! ICDE 2017, arXiv:1701.03308) as a production-quality Rust workspace.
//!
//! Given a set `S ⊆ [0, M)` stored in a Bloom filter `B`, this crate can:
//!
//! * draw a (near-)uniform random sample from `S ∪ S(B)` (the stored set
//!   plus `B`'s false positives) — [`Query::sample`];
//! * reconstruct `S ∪ S(B)` entirely — [`Query::reconstruct`];
//!
//! without touching the original data, using only the filter and a
//! once-built **BloomSampleTree** index over the namespace.
//!
//! ## Quickstart
//!
//! The shape of the API mirrors the paper's framework: one shared tree,
//! many filters, *repeated* operations per filter. [`BstSystem`] is a
//! cheap-to-clone (`Arc`), `Send + Sync` handle to the tree; per-filter
//! work goes through a [`Query`] handle that caches descent state so
//! repeated operations on the same filter amortize the intersection work.
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! // One tree for the namespace, reused across all query filters.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//!
//! // Store a set as a Bloom filter (in practice these filters arrive
//! // from elsewhere — a log, a cache, another machine).
//! let community = system.store((0..500u64).map(|i| i * 31));
//!
//! // Open a query handle: the filter is captured once, and descent
//! // state accumulates across calls.
//! let query = system.query(&community);
//!
//! // Sample from it, without the original set. Fallible operations
//! // return `Result<_, BstError>` naming the failure cause.
//! let mut rng = rand::thread_rng();
//! let member = query.sample(&mut rng).unwrap();
//! assert!(community.contains(member));
//!
//! // Repeated samples through the same handle get cheaper: cached
//! // intersections are hash-map hits, visible in the handle's stats.
//! for _ in 0..100 {
//!     query.sample(&mut rng).unwrap();
//! }
//!
//! // Or rebuild the whole set.
//! let rebuilt = query.reconstruct().unwrap();
//! assert!(rebuilt.binary_search(&(31 * 7)).is_ok());
//! ```
//!
//! ## Error handling
//!
//! Every fallible operation returns [`BstError`], which distinguishes an
//! empty filter, a filter built with the wrong hash family, provably-dead
//! descents, and an exhausted rejection budget:
//!
//! ```
//! use bloomsampletree::{BstError, BstSystem};
//!
//! let system = BstSystem::builder(10_000).build();
//! let empty = system.store(std::iter::empty());
//! let mut rng = rand::thread_rng();
//! assert_eq!(system.query(&empty).sample(&mut rng), Err(BstError::EmptyFilter));
//! ```
//!
//! ## The filter database: mutable sets by id
//!
//! The paper's setting is a *database* `D̄` of stored sets. Registering a
//! set with the system ([`BstSystem::create`]) backs it with a counting
//! filter — it supports `insert_keys` *and* `remove_keys` — addressed by
//! a stable [`FilterId`]. Handles opened by id are generation-stamped:
//! mutating the set invalidates their cached descent state, so they
//! always answer against the current membership:
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! let system = BstSystem::builder(10_000).build();
//! let community = system.create((0..300u64).map(|i| i * 3)).unwrap();
//! let query = system.query_id(community).unwrap();
//!
//! system.insert_keys(community, [9_001u64]).unwrap();   // member joins
//! system.remove_keys(community, [0u64, 3]).unwrap();    // members leave
//! let rebuilt = query.reconstruct().unwrap();           // sees the churn
//! assert!(rebuilt.binary_search(&9_001).is_ok());
//!
//! // The whole system — tree, store, config — snapshots to bytes.
//! let restored = BstSystem::from_bytes(&system.to_bytes()).unwrap();
//! assert_eq!(restored.query_id(community).unwrap().reconstruct().unwrap(), rebuilt);
//! ```
//!
//! ## Serving many filters
//!
//! `BstSystem: Clone + Send + Sync` (an `Arc` bump), so worker threads
//! share one tree; [`BstSystem::query_batch`] samples across a whole
//! batch of filters in parallel ([`BstSystem::query_batch_ids`] is the
//! id-addressed form). Sparse or dynamic-occupancy namespaces build the
//! same system over a pruned backend with
//! [`builder(M).pruned(occupied)`](bst_core::system::BstSystemBuilder::pruned)
//! and get the identical surface:
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! let system = BstSystem::builder(10_000).build();
//! let filters: Vec<_> = (0..8)
//!     .map(|i| system.store((0..50u64).map(|j| (i * 997 + j * 11) % 10_000)))
//!     .collect();
//! let (picks, _stats) = system.query_batch(&filters, 42, 0);
//! for (filter, pick) in filters.iter().zip(&picks) {
//!     assert!(filter.contains(pick.unwrap()));
//! }
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`bloom`] (re-export of `bst-bloom`) | bit vectors, hash families (Simple affine / Murmur3 / MD5), the Bloom filter, estimators, parameter planning, counting filters, codec |
//! | [`core`] (re-export of `bst-core`) | the BloomSampleTree, pruned variant (mutable occupancy via tree generations), BSTSample, reconstruction, the `Query` handle facade, DictionaryAttack and HashInvert baselines, cost model |
//! | [`shard`] (re-export of `bst-shard`) | `ShardedBstSystem`: the namespace split into contiguous shards, scatter-gather sampling/reconstruction, crossbeam batch fan-out |
//! | [`workloads`] (re-export of `bst-workloads`) | uniform/clustered query sets, namespace occupancy, the synthetic social stream |
//! | [`stats`] (re-export of `bst-stats`) | chi-squared testing, summaries, binomial sampling |
//!
//! See `README.md` for the workspace tour, `DESIGN.md` for the system
//! inventory, and `results/` for the measured performance record of
//! every growth step.

#![warn(missing_docs)]

pub use bst_bloom as bloom;
pub use bst_core as core;
pub use bst_shard as shard;
pub use bst_stats as stats;
pub use bst_workloads as workloads;

pub use bst_bloom::counting::CountingBloomFilter;
pub use bst_bloom::{BloomFilter, BloomHasher, HashKind, TreePlan};
pub use bst_core::{
    BloomSampleTree, BstConfig, BstError, BstReconstructor, BstSampler, BstStore, BstSystem,
    FilterId, OpStats, PersistError, PrunedBloomSampleTree, Query, QueryMemo, ReconstructConfig,
    SampleTree, SamplerConfig, TreeBackend, TreeView,
};
pub use bst_shard::{CachedWeight, ShardQuery, ShardedBstSystem, WeightCacheStats};

/// The README's quickstart snippet, compiled and executed by
/// `cargo test --doc` so the front-page example can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
