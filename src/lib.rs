//! # bloomsampletree
//!
//! A reproduction of **"Sampling and Reconstruction Using Bloom Filters"**
//! (Neha Sengupta, Amitabha Bagchi, Srikanta Bedathur, Maya Ramanath;
//! ICDE 2017, arXiv:1701.03308) as a production-quality Rust workspace.
//!
//! Given a set `S ⊆ [0, M)` stored in a Bloom filter `B`, this crate can:
//!
//! * draw a (near-)uniform random sample from `S ∪ S(B)` (the stored set
//!   plus `B`'s false positives) — [`Query::sample`];
//! * reconstruct `S ∪ S(B)` entirely — [`Query::reconstruct`];
//!
//! without touching the original data, using only the filter and a
//! once-built **BloomSampleTree** index over the namespace.
//!
//! ## Quickstart
//!
//! The shape of the API mirrors the paper's framework: one shared tree,
//! many filters, *repeated* operations per filter. [`BstSystem`] is a
//! cheap-to-clone (`Arc`), `Send + Sync` handle to the tree; per-filter
//! work goes through a [`Query`] handle that caches descent state so
//! repeated operations on the same filter amortize the intersection work.
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! // One tree for the namespace, reused across all query filters.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//!
//! // Store a set as a Bloom filter (in practice these filters arrive
//! // from elsewhere — a log, a cache, another machine).
//! let community = system.store((0..500u64).map(|i| i * 31));
//!
//! // Open a query handle: the filter is captured once, and descent
//! // state accumulates across calls.
//! let query = system.query(&community);
//!
//! // Sample from it, without the original set. Fallible operations
//! // return `Result<_, BstError>` naming the failure cause.
//! let mut rng = rand::thread_rng();
//! let member = query.sample(&mut rng).unwrap();
//! assert!(community.contains(member));
//!
//! // Repeated samples through the same handle get cheaper: cached
//! // intersections are hash-map hits, visible in the handle's stats.
//! for _ in 0..100 {
//!     query.sample(&mut rng).unwrap();
//! }
//!
//! // Or rebuild the whole set.
//! let rebuilt = query.reconstruct().unwrap();
//! assert!(rebuilt.binary_search(&(31 * 7)).is_ok());
//! ```
//!
//! ## Error handling
//!
//! Every fallible operation returns [`BstError`], which distinguishes an
//! empty filter, a filter built with the wrong hash family, provably-dead
//! descents, and an exhausted rejection budget:
//!
//! ```
//! use bloomsampletree::{BstError, BstSystem};
//!
//! let system = BstSystem::builder(10_000).build();
//! let empty = system.store(std::iter::empty());
//! let mut rng = rand::thread_rng();
//! assert_eq!(system.query(&empty).sample(&mut rng), Err(BstError::EmptyFilter));
//! ```
//!
//! ## Serving many filters
//!
//! `BstSystem: Clone + Send + Sync` (an `Arc` bump), so worker threads
//! share one tree; [`BstSystem::query_batch`] samples across a whole
//! batch of filters in parallel:
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! let system = BstSystem::builder(10_000).build();
//! let filters: Vec<_> = (0..8)
//!     .map(|i| system.store((0..50u64).map(|j| (i * 997 + j * 11) % 10_000)))
//!     .collect();
//! let (picks, _stats) = system.query_batch(&filters, 42, 0);
//! for (filter, pick) in filters.iter().zip(&picks) {
//!     assert!(filter.contains(pick.unwrap()));
//! }
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`bloom`] (re-export of `bst-bloom`) | bit vectors, hash families (Simple affine / Murmur3 / MD5), the Bloom filter, estimators, parameter planning, counting filters, codec |
//! | [`core`] (re-export of `bst-core`) | the BloomSampleTree, pruned variant, BSTSample, reconstruction, the `Query` handle facade, DictionaryAttack and HashInvert baselines, cost model |
//! | [`workloads`] (re-export of `bst-workloads`) | uniform/clustered query sets, namespace occupancy, the synthetic social stream |
//! | [`stats`] (re-export of `bst-stats`) | chi-squared testing, summaries, binomial sampling |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use bst_bloom as bloom;
pub use bst_core as core;
pub use bst_stats as stats;
pub use bst_workloads as workloads;

pub use bst_bloom::{BloomFilter, BloomHasher, HashKind, TreePlan};
pub use bst_core::{
    BloomSampleTree, BstConfig, BstError, BstReconstructor, BstSampler, BstSystem, OpStats,
    PrunedBloomSampleTree, Query, QueryMemo, ReconstructConfig, SampleTree, SamplerConfig,
};
