//! # bloomsampletree
//!
//! A reproduction of **"Sampling and Reconstruction Using Bloom Filters"**
//! (Neha Sengupta, Amitabha Bagchi, Srikanta Bedathur, Maya Ramanath;
//! ICDE 2017, arXiv:1701.03308) as a production-quality Rust workspace.
//!
//! Given a set `S ⊆ [0, M)` stored in a Bloom filter `B`, this crate can:
//!
//! * draw a (near-)uniform random sample from `S ∪ S(B)` (the stored set
//!   plus `B`'s false positives) — [`BstSystem::sample`];
//! * reconstruct `S ∪ S(B)` entirely — [`BstSystem::reconstruct`];
//!
//! without touching the original data, using only the filter and a
//! once-built **BloomSampleTree** index over the namespace.
//!
//! ## Quickstart
//!
//! ```
//! use bloomsampletree::BstSystem;
//!
//! // One tree for the namespace, reused across all query filters.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//!
//! // Store a set as a Bloom filter (in practice these filters arrive
//! // from elsewhere — a log, a cache, another machine).
//! let community = system.store((0..500u64).map(|i| i * 31));
//!
//! // Sample from it, without the original set.
//! let mut rng = rand::thread_rng();
//! let member = system.sample(&community, &mut rng).unwrap();
//! assert!(community.contains(member));
//!
//! // Or rebuild the whole set.
//! let rebuilt = system.reconstruct(&community);
//! assert!(rebuilt.binary_search(&(31 * 7)).is_ok());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`bloom`] (re-export of `bst-bloom`) | bit vectors, hash families (Simple affine / Murmur3 / MD5), the Bloom filter, estimators, parameter planning, counting filters, codec |
//! | [`core`] (re-export of `bst-core`) | the BloomSampleTree, pruned variant, BSTSample, reconstruction, DictionaryAttack and HashInvert baselines, cost model |
//! | [`workloads`] (re-export of `bst-workloads`) | uniform/clustered query sets, namespace occupancy, the synthetic social stream |
//! | [`stats`] (re-export of `bst-stats`) | chi-squared testing, summaries, binomial sampling |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use bst_bloom as bloom;
pub use bst_core as core;
pub use bst_stats as stats;
pub use bst_workloads as workloads;

pub use bst_bloom::{BloomFilter, BloomHasher, HashKind, TreePlan};
pub use bst_core::{
    BloomSampleTree, BstReconstructor, BstSampler, BstSystem, OpStats, PrunedBloomSampleTree,
    SampleTree, SamplerConfig,
};
