//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements exactly the subset of the `rand` 0.8 API this workspace
//! uses: the [`Rng`]/[`RngCore`] traits (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256++ seeded
//! via SplitMix64) and [`thread_rng`]. Distribution quality matters here —
//! the workspace's chi-squared uniformity tests run on top of this
//! generator — so the core generator is a full-strength xoshiro256++, not
//! a toy LCG.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` by 128-bit widening multiply (Lemire's
/// method without the rejection step; bias is `O(n / 2^64)`, far below
/// anything the workspace's statistical tests can resolve).
#[inline]
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + u64_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + u64_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`] exactly as in `rand` 0.8 (so `&mut R` is itself an `Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a `u64` into a full generator state (SplitMix64, matching
    /// the recommendation of the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard state expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Builds from raw xoshiro state (must not be all-zero).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily time-seeded generator for non-reproducible use.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(StdRng);

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            ThreadRng(StdRng::seed_from_u64(nanos ^ unique.rotate_left(32)))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh, non-deterministically seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn takes_dynlike<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_dynlike(&mut rng);
    }

    #[test]
    fn uniformity_chi2_coarse() {
        // 16 buckets, 160k draws: a broken generator fails wildly.
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u64; 16];
        let n = 160_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..16)] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expect).powi(2) / expect)
            .sum();
        // dof 15; P(chi2 > 50) is astronomically small for a fair die.
        assert!(chi2 < 50.0, "chi2 {chi2}");
    }
}
