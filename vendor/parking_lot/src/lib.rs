//! Offline stand-in for `parking_lot`: a `Mutex`/`RwLock` with the
//! poison-free `parking_lot` API, backed by `std::sync`.

#![warn(missing_docs)]

/// Guard type returned by [`Mutex::lock`] (std-backed in this stand-in).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`RwLock::read`] (std-backed in this stand-in).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`] (std-backed in this stand-in).
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error
/// (a poisoned std lock is recovered into its inner guard).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the poison-free `parking_lot` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
