//! Offline stand-in for the `bytes` crate: the little-endian cursor and
//! buffer subset the workspace's codec and persistence layers use.

#![warn(missing_docs)]

/// Read cursor over a byte source; implemented for `&[u8]`, where reads
/// advance the slice in place.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only write interface.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Empties the buffer, keeping its capacity (as in the real crate:
    /// the reuse idiom for steady-state-allocation-free encoders).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"MAGI");
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(0.25);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGI");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
