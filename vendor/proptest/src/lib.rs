//! Offline mini-`proptest`: deterministic randomized property testing with
//! the subset of the proptest DSL this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   (cases are deterministic per test name and case index, so failures
//!   reproduce exactly on re-run);
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning a `TestCaseResult`;
//! * `prop_assume!` skips the current case.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The case generator handed to strategies (deterministic per case).
pub type TestRng = StdRng;

/// Builds the generator for one case of one property. Deterministic in
/// `(test_name, case)` so failures reproduce run to run.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice among boxed alternatives; construct via `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps the alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
);

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`, size drawn from `size`
    /// (best-effort when the element domain is nearly exhausted).
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` strategy.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(64) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` of values from `element`, size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` strategy.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(64) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a proptest file needs in one import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Assertion (panics with context on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($argpat:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::rng_for_case(stringify!($name), __case);
                    $(let $argpat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), ()> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    let _ = __result;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_parity() -> impl Strategy<Value = u64> {
        prop_oneof![Just(0u64), Just(1u64)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_hit_size_targets(
            v in prop::collection::vec(0u64..1000, 3..6),
            s in prop::collection::hash_set(0u64..100_000, 2..5),
            b in prop::collection::btree_set(0usize..100_000, 2..5),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!((2..5).contains(&s.len()));
            prop_assert!((2..5).contains(&b.len()));
        }

        #[test]
        fn oneof_and_assume_work(p in arb_parity(), n in 0u32..100) {
            prop_assert!(p < 2);
            prop_assume!(n > 10);
            prop_assert!(n > 10);
        }

        #[test]
        fn mut_bindings_allowed(mut xs in prop::collection::vec(0i64..10, 1..4)) {
            xs.push(11);
            prop_assert_eq!(*xs.last().unwrap(), 11);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::rng_for_case("t", 3);
        let mut b = crate::rng_for_case("t", 3);
        let s: u64 = (0u64..100).generate(&mut a);
        let t: u64 = (0u64..100).generate(&mut b);
        assert_eq!(s, t);
    }
}
