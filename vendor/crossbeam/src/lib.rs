//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope` (stable since Rust 1.63). Only the
//! `crossbeam::scope(|s| { s.spawn(|_| ...) })` shape the workspace uses
//! is provided.

#![warn(missing_docs)]

use std::any::Any;

/// Scope handle passed to the `scope` closure and to spawned threads.
///
/// `Copy`, so `move` closures can capture it by value exactly like
/// crossbeam's `&Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope (so nested
    /// spawns work), matching crossbeam's `FnOnce(&Scope) -> T` signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let captured = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(captured)),
        }
    }
}

/// Creates a scope in which threads borrowing the environment can be
/// spawned; all are joined before `scope` returns.
///
/// Returns `Ok(result)` on normal completion. A panicking child thread
/// propagates its panic at join time (crossbeam would return `Err`; every
/// call site in this workspace immediately `expect`s, so the observable
/// behaviour — abort with the panic message — is the same).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = s.spawn(move |_| a.iter().sum::<u64>());
            let hb = s.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn spawn_without_join_still_completes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
