//! Offline mini-`criterion`: a wall-clock benchmark harness exposing the
//! subset of the criterion API the workspace's benches use. No plotting,
//! no statistics beyond mean/min — just stable, comparable ns/iter
//! numbers printed to stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Clone, Debug)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let cfg = self.clone();
        run_one(&cfg, &label, &mut f);
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement budget for subsequent benches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement = d;
        self
    }

    fn config(&self) -> Criterion {
        let mut cfg = self.parent.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        cfg
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config(), &label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config(), &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Iterations per timing sample (tuned during warm-up).
    iters_per_sample: u64,
    /// Collected per-iteration times, one entry per sample, in ns.
    samples: Vec<f64>,
    sample_budget: usize,
    warm_up: Duration,
    tuned: bool,
}

impl Bencher {
    /// Measures `routine`, called in batches; keeps the return value alive
    /// via [`black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.tuned {
            // Warm-up: find an iteration count putting one sample in the
            // ~1ms range, bounded by the warm-up budget.
            let start = Instant::now();
            let mut iters = 1u64;
            loop {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = t.elapsed();
                if elapsed >= Duration::from_millis(1) || start.elapsed() >= self.warm_up {
                    let per_iter = elapsed.as_nanos().max(1) as u64 / iters.max(1);
                    self.iters_per_sample =
                        (1_000_000u64 / per_iter.max(1)).clamp(1, 1_000_000_000);
                    break;
                }
                iters = iters.saturating_mul(4);
            }
            self.tuned = true;
        }
        for _ in 0..self.sample_budget {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, f: &mut F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_budget: cfg.sample_size,
        warm_up: cfg.warm_up,
        tuned: false,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<50} mean {:>12} min {:>12}",
        fmt_ns(mean),
        fmt_ns(min)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &m| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(black_box(m)) | 1;
                x
            })
        });
        group.finish();
    }

    criterion_group! {
        name = fast;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(5));
        targets = work
    }

    #[test]
    fn harness_runs() {
        fast();
    }
}
