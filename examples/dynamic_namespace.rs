//! Dynamic namespaces through the facade: a pruned-backend `BstSystem`
//! over sparse occupancy (§5.2), a store of mutable communities that
//! churn via `insert_keys`/`remove_keys`, generation-stamped query
//! handles that survive the churn, and a whole-system snapshot.
//!
//! Everything below is public facade API — no raw tree, sampler, or memo
//! plumbing.
//!
//! Run with: `cargo run --release --example dynamic_namespace`

use bloomsampletree::BstSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let namespace = 1u64 << 24; // 16.7M ids
    let mut rng = StdRng::seed_from_u64(1);

    // The service's user base occupies a few regions of the huge id
    // namespace: a launch cohort plus several growth regions.
    let mut occupied: Vec<u64> = (0..2_000u64).map(|i| 1_000_000 + i * 3).collect();
    for _ in 1..=5 {
        let region = rng.gen_range(0..16u64) * (namespace / 16);
        for _ in 0..1_500 {
            occupied.push(region + rng.gen_range(0..namespace / 16));
        }
    }

    // One builder call: the system plans the filters for the full
    // namespace but materialises its tree only over occupied ids.
    let system = BstSystem::builder(namespace)
        .expected_set_size(500)
        .accuracy(0.85)
        .seed(5)
        .pruned(occupied.iter().copied())
        .build();
    let tree = system.tree();
    let complete_nodes = (1u64 << (tree.depth() + 1)) - 1;
    println!(
        "pruned backend: {} users in {} nodes, {:.2} MB \
         (complete tree would hold {} nodes, {:.1} MB; pruned uses {:.1}%)",
        tree.occupied_count(),
        tree.node_count(),
        tree.memory_bytes() as f64 / 1e6,
        complete_nodes,
        complete_nodes as f64 * (tree.plan().m as f64 / 8.0) / 1e6,
        100.0 * tree.node_count() as f64 / complete_nodes as f64
    );

    // A community with churn lives in the system's store: counting-filter
    // backed, so members can join AND leave. It is addressed by a stable
    // id from now on.
    let occupied = {
        let mut o = occupied;
        o.sort_unstable();
        o.dedup();
        o
    };
    let members: Vec<u64> = occupied.iter().copied().step_by(11).collect();
    let community = system
        .create(members.iter().copied())
        .expect("create community");
    println!("\ncommunity {community}: {} members", members.len());

    // Open a handle before the churn; it stays valid throughout.
    let query = system.query_id(community).expect("open handle");
    let mut warmup_rng = StdRng::seed_from_u64(7);
    query.sample(&mut warmup_rng).expect("warm-up sample");
    println!(
        "handle opened at generation {} ({} node evals cached after one draw)",
        query.generation(),
        query.cached_evals()
    );

    // Half the members leave; a few new ones join.
    let (leavers, stayers) = members.split_at(members.len() / 2);
    system
        .remove_keys(community, leavers.iter().copied())
        .expect("remove leavers");
    let joiners: Vec<u64> = occupied.iter().copied().step_by(501).collect();
    system
        .insert_keys(community, joiners.iter().copied())
        .expect("insert joiners");
    println!(
        "{} left, {} joined -> store generation {}, open handle stale: {}",
        leavers.len(),
        joiners.len(),
        system.filters().generation(community).expect("generation"),
        query.is_stale().expect("staleness")
    );

    // The stale handle transparently re-projects and re-descends cold on
    // its next operation — never a stale answer.
    let mut hits = 0;
    let mut ghost_hits = 0;
    for _ in 0..50 {
        if let Ok(u) = query.sample(&mut warmup_rng) {
            if stayers.binary_search(&u).is_ok() || joiners.binary_search(&u).is_ok() {
                hits += 1;
            } else if leavers.binary_search(&u).is_ok() {
                ghost_hits += 1;
            }
        }
    }
    println!(
        "50 post-churn samples: {hits} current members, {ghost_hits} ghost leavers \
         (handle now at generation {})",
        query.generation()
    );

    let rebuilt = query.reconstruct().expect("reconstruct");
    let still_there = stayers
        .iter()
        .filter(|x| rebuilt.binary_search(x).is_ok())
        .count();
    let ghosts = leavers
        .iter()
        .filter(|x| rebuilt.binary_search(x).is_ok())
        .count();
    println!(
        "reconstruction after churn: {} ids ({} of {} stayers, {} ghost leavers)",
        rebuilt.len(),
        still_there,
        stayers.len(),
        ghosts
    );

    // The namespace itself evolves (§5.2): new user ids sign up and old
    // ones are purged, straight through the facade — the pruned tree
    // grows/shrinks in place and every open handle re-descends cold via
    // the tree-generation stamp.
    let signup = occupied.last().unwrap() / 2 + 1;
    let was_occupied = system.contains_occupied(signup);
    let gen_after_signup = system.insert_occupied(signup).expect("signup");
    system
        .insert_keys(community, [signup])
        .expect("new user joins the community");
    let visible = query
        .reconstruct()
        .expect("reconstruct")
        .binary_search(&signup)
        .is_ok();
    println!(
        "\nsignup of id {signup} (previously occupied: {was_occupied}): tree generation {} \
         -> visible through the open handle: {visible}",
        gen_after_signup,
    );
    let purged = occupied[0];
    system.remove_occupied(purged).expect("purge");
    println!(
        "purged id {purged}: occupancy {} -> {}, tree generation {}",
        occupied.len(),
        system.occupied_count(),
        system.tree_generation(),
    );

    // Accounts get deleted too: whole stored sets drop from the store,
    // and their ids are retired (open handles fail typed, not silently).
    let doomed = system
        .create(occupied.iter().copied().take(100))
        .expect("create");
    let doomed_handle = system.query_id(doomed).expect("open");
    system.drop_set(doomed).expect("drop");
    println!(
        "\ndropped set {doomed}: re-query -> {}",
        doomed_handle
            .reconstruct()
            .expect_err("dropped sets fail typed")
    );

    // Nightly ops: snapshot the whole system — plan, pruned tree, store
    // (counting filters + generations) — and restore it elsewhere.
    let final_rec = query.reconstruct().expect("reconstruct before snapshot");
    let snapshot = system.to_bytes();
    let restored = BstSystem::from_bytes(&snapshot).expect("restore snapshot");
    let restored_rec = restored
        .query_id(community)
        .expect("same id after restore")
        .reconstruct()
        .expect("reconstruct on restored system");
    println!(
        "\nsnapshot: {:.2} MB; restored system answers identically: {} \
         (community still at generation {})",
        snapshot.len() as f64 / 1e6,
        restored_rec == final_rec,
        restored
            .filters()
            .generation(community)
            .expect("generation"),
    );
    assert_eq!(restored_rec, final_rec);
}
