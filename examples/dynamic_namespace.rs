//! Dynamic namespaces — the Pruned-BloomSampleTree growing as occupancy
//! changes (§5.2: "it is easy to see how to evolve the
//! Pruned-BloomSampleTree when M' grows (e.g. when new Twitter accounts
//! are made)"), plus counting-filter deletions for the query sets
//! themselves.
//!
//! Run with: `cargo run --release --example dynamic_namespace`

use bloomsampletree::{BstReconstructor, BstSampler, OpStats, PrunedBloomSampleTree, QueryMemo};
use bst_bloom::counting::CountingBloomFilter;
use bst_bloom::params::TreePlan;
use bst_bloom::HashKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let namespace = 1u64 << 24; // 16.7M ids
    let plan = TreePlan::for_accuracy(namespace, 500, 0.85, 3, HashKind::Murmur3, 5, 128.0);

    // Day 0: the service launches with a small beta cohort in one id block.
    let mut rng = StdRng::seed_from_u64(1);
    let beta: Vec<u64> = (0..2_000u64).map(|i| 1_000_000 + i * 3).collect();
    let mut tree = PrunedBloomSampleTree::build(&plan, &beta);
    println!(
        "day 0: {} users, {} tree nodes, {:.2} MB",
        tree.occupied_count(),
        tree.node_count(),
        tree.memory_bytes() as f64 / 1e6
    );

    // Days 1..5: signups arrive in new regions of the namespace; the tree
    // grows only where occupancy appears.
    for day in 1..=5 {
        let region = rng.gen_range(0..16u64) * (namespace / 16);
        let mut added = 0;
        for _ in 0..1_500 {
            let id = region + rng.gen_range(0..namespace / 16);
            if tree.insert(id) {
                added += 1;
            }
        }
        println!(
            "day {day}: +{added} users (region at {region:>9}) -> {} nodes, {:.2} MB",
            tree.node_count(),
            tree.memory_bytes() as f64 / 1e6
        );
    }
    let complete_nodes = (1u64 << (plan.depth + 1)) - 1;
    println!(
        "complete tree would hold {} nodes ({:.1} MB); pruned tree uses {:.1}%",
        complete_nodes,
        complete_nodes as f64 * (plan.m as f64 / 8.0) / 1e6,
        100.0 * tree.node_count() as f64 / complete_nodes as f64
    );

    // A community with churn: members join AND leave. Plain Bloom filters
    // cannot forget, so the community lives in a counting filter and is
    // projected to a plain filter whenever the tree needs to query it.
    let hasher = Arc::new(plan.build_hasher());
    let mut community = CountingBloomFilter::new(Arc::clone(&hasher));
    let occupied = tree.occupied_ids();
    let members: Vec<u64> = occupied.iter().copied().step_by(11).collect();
    for &m in &members {
        community.insert(m);
    }
    println!("\ncommunity: {} members", members.len());

    // Half the members leave.
    let (leavers, stayers) = members.split_at(members.len() / 2);
    for &m in leavers {
        community.remove(m);
    }
    println!(
        "{} members left; counting filter now answers stale queries correctly: \
         contains(leaver) = {}, contains(stayer) = {}",
        leavers.len(),
        community.contains(leavers[0]),
        community.contains(stayers[0])
    );

    // Sample and reconstruct the *current* membership through the tree.
    // A QueryMemo amortizes the 50 draws: the pruned tree is walked once,
    // later draws reuse the cached liveness and leaf matches.
    let snapshot = community.to_bloom();
    let sampler = BstSampler::new(&tree);
    let mut memo = QueryMemo::new();
    let mut stats = OpStats::new();
    let mut hits = 0;
    for _ in 0..50 {
        if let Ok(u) = sampler.try_sample_memo(&snapshot, &mut memo, &mut rng, &mut stats) {
            if stayers.binary_search(&u).is_ok() {
                hits += 1;
            }
        }
    }
    println!(
        "50 samples from the post-churn community: {hits} are current members \
         ({} ops total through the memo)",
        stats.total_ops()
    );

    let mut rec_stats = OpStats::new();
    let rebuilt = BstReconstructor::new(&tree).reconstruct(&snapshot, &mut rec_stats);
    let still_there = stayers
        .iter()
        .filter(|x| rebuilt.binary_search(x).is_ok())
        .count();
    let ghosts = leavers
        .iter()
        .filter(|x| rebuilt.binary_search(x).is_ok())
        .count();
    println!(
        "reconstruction after churn: {} ids ({} of {} stayers, {} ghost leavers)",
        rebuilt.len(),
        still_there,
        stayers.len(),
        ghosts
    );
    println!("  cost: {rec_stats}");

    // Accounts get deleted too: the pruned tree supports removal with
    // exact filter rebuilds along the path, shrinking where occupancy
    // disappears.
    let before_nodes = tree.node_count();
    let ghosts: Vec<u64> = tree.occupied_ids().into_iter().take(2000).collect();
    for id in &ghosts {
        tree.remove(*id);
    }
    println!(
        "\ndeleted {} accounts: {} users remain (arena {} -> {} reachable nodes tracked)",
        ghosts.len(),
        tree.occupied_count(),
        before_nodes,
        tree.node_count(),
    );
    assert!(!tree.contains_occupied(ghosts[0]));
}
