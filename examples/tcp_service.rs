//! The serving layer end to end, in one process: a `bst-server` bound
//! to an ephemeral loopback port, driven by the wire client through the
//! whole facade — set lifecycle, occupancy churn, warm-path sampling,
//! a mixed batch, a snapshot round-trip, and the live STATS surface —
//! with the wire answers checked against an in-process handle on the
//! very same engine, and warm loopback sample latency measured against
//! the in-process equivalent.
//!
//! Run with: `cargo run --release --example tcp_service`

use std::time::Instant;

use bloomsampletree::ShardedBstSystem;
use bst_server::client::Client;
use bst_server::protocol::Target;
use bst_server::server::{serve, ServerConfig};
use bst_server::stats::OpClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let namespace = 1u64 << 16;
    let engine = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(512)
        .seed(11)
        .build();
    // The engine is an Arc clone: this handle and the server share state,
    // so in-process answers are ground truth for the wire's.
    let local = engine.clone();
    let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    println!(
        "bst-server on {} ({} ids, 4 shards)\n",
        handle.addr(),
        namespace
    );

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");

    // --- Set lifecycle over the wire ------------------------------------
    let members: Vec<u64> = (0..600u64).map(|i| (i * 109) % namespace).collect();
    let community = client.create(members.clone()).expect("create");
    client
        .insert_keys(community, vec![40_000, 40_001])
        .expect("insert");
    client
        .remove_keys(community, vec![members[0]])
        .expect("remove");
    println!(
        "stored set {community}: {} members shipped over the wire",
        members.len() + 1
    );

    // --- Occupancy churn -------------------------------------------------
    for key in 1_000..1_064u64 {
        client.occ_remove(key).expect("occ_remove");
    }
    for key in 1_000..1_032u64 {
        client.occ_insert(key).expect("occ_insert");
    }
    println!("occupancy churn: 64 ids vacated, 32 re-occupied\n");

    // --- Warm sampling: wire vs in-process, same engine state ------------
    let rounds = 2_000usize;
    let mut wire_keys = Vec::with_capacity(rounds);
    let started = Instant::now();
    for i in 0..rounds {
        wire_keys.push(
            client
                .sample(Target::Stored(community), i as u64)
                .expect("wire sample"),
        );
    }
    let wire_elapsed = started.elapsed();

    let query = local
        .query_id(bst_core::store::FilterId::from_raw(community))
        .expect("local handle");
    let mut local_keys = Vec::with_capacity(rounds);
    let started = Instant::now();
    for i in 0..rounds {
        let mut rng = StdRng::seed_from_u64(i as u64);
        local_keys.push(query.sample(&mut rng).expect("local sample"));
    }
    let local_elapsed = started.elapsed();
    assert_eq!(wire_keys, local_keys, "wire draws must be bit-identical");
    let wire_us = wire_elapsed.as_secs_f64() * 1e6 / rounds as f64;
    let local_us = local_elapsed.as_secs_f64() * 1e6 / rounds as f64;
    println!("warm sample, {rounds} rounds (seeded, bit-identical results):");
    println!("  over loopback : {wire_us:>8.1} µs/op");
    println!("  in-process    : {local_us:>8.1} µs/op");
    println!("  wire overhead : {:>8.1} µs/op\n", wire_us - local_us);

    // --- A mixed batch ---------------------------------------------------
    let adhoc = local.store((5_000..5_064u64).collect::<Vec<_>>());
    let results = client
        .batch(
            vec![
                Target::Stored(community),
                Target::adhoc(&adhoc),
                Target::Stored(community),
            ],
            77,
        )
        .expect("batch");
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("mixed batch: {ok}/{} slots sampled", results.len());

    // --- Snapshot round-trip over the wire -------------------------------
    let snapshot = client.save().expect("save");
    client.load(snapshot.clone()).expect("load");
    assert_eq!(
        client.save().expect("save again"),
        snapshot,
        "byte-deterministic"
    );
    println!(
        "snapshot: {} bytes, SAVE → LOAD → SAVE byte-identical\n",
        snapshot.len()
    );

    // --- The live stats surface -----------------------------------------
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} sets, {} occupied, epoch {}, {} frames over {} sessions",
        stats.sets, stats.occupied, stats.epoch, stats.frames_served, stats.sessions_served
    );
    println!(
        "weight cache: {} hits / {} misses / {} repairs",
        stats.weight_cache_hits, stats.weight_cache_misses, stats.weight_cache_repairs
    );
    println!("latency (µs):     count      p50      p95      p99");
    for row in &stats.ops {
        let name = OpClass::from_tag(row.op).map_or("?", OpClass::name);
        println!(
            "  {name:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
            row.count, row.p50_us, row.p95_us, row.p99_us
        );
    }
    if let Some(t) = &stats.total {
        println!(
            "  {:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
            "total", t.count, t.p50_us, t.p95_us, t.p99_us
        );
    }

    client.shutdown_server().expect("shutdown");
    handle.join();
    println!("\nserver stopped cleanly");
}
