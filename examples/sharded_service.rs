//! A sharded sampling service: the namespace split into shards, each
//! with its own pruned tree and store, serving scatter-gather queries
//! whose merged results match a single-tree system — plus live shard
//! rebalancing of traffic, occupancy churn routed to the owning shard,
//! and a whole-engine snapshot.
//!
//! Run with: `cargo run --release --example sharded_service`

use bloomsampletree::stats::chi2_uniform_test;
use bloomsampletree::{BstConfig, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let namespace = 1u64 << 20; // 1M ids
    let shards = 8usize;
    let mut rng = StdRng::seed_from_u64(1);

    // Occupancy clusters unevenly across the namespace — some shards are
    // hot, some nearly empty, exactly the case where naive round-robin
    // sampling would skew the merged distribution.
    let mut occupied: Vec<u64> = Vec::new();
    for region in 0..5u64 {
        let base = region * (namespace / 5);
        let density = 1 + region * 4; // later regions denser
        for _ in 0..(2_000 * density) {
            occupied.push(base + rng.gen_range(0..namespace / 5));
        }
    }
    occupied.sort_unstable();
    occupied.dedup();

    let engine = ShardedBstSystem::builder(namespace)
        .shards(shards)
        .expected_set_size(500)
        .accuracy(0.85)
        .seed(9)
        .config(BstConfig::corrected())
        .occupied(occupied.iter().copied())
        .build();
    println!(
        "sharded engine: {} ids across {} shards of [0, {namespace})",
        engine.occupied_count(),
        engine.shard_count()
    );
    for (s, sys) in engine.shard_systems().iter().enumerate() {
        println!(
            "  shard {s}: [{:>8}, {:>8})  {:>6} occupied, {:>5} tree nodes, {:.2} MB",
            engine.boundaries()[s],
            engine.boundaries()[s + 1],
            sys.occupied_count(),
            sys.tree().node_count(),
            sys.tree().memory_bytes() as f64 / 1e6
        );
    }

    // A community spanning several shards, stored by one sharded id.
    let members: Vec<u64> = occupied.iter().copied().step_by(97).collect();
    let community = engine.create(members.iter().copied()).expect("create");
    let query = engine.query_id(community).expect("open");
    println!(
        "\ncommunity {community}: {} members across shards, live-leaf weight {}",
        members.len(),
        query.live_weight().expect("weight")
    );

    // Scatter-gather sampling: shard picked by live-leaf weight, then
    // sampled within. Verify the merged distribution is uniform.
    let subset: Vec<u64> = members.iter().copied().take(50).collect();
    let sub_filter = engine.store(subset.iter().copied());
    let sub_query = engine.query(&sub_filter);
    let positives = sub_query.reconstruct().expect("reconstruct");
    let mut counts = vec![0u64; positives.len()];
    let mut sample_rng = StdRng::seed_from_u64(2);
    for _ in 0..130 * positives.len() {
        let s = sub_query.sample(&mut sample_rng).expect("sample");
        counts[positives.binary_search(&s).expect("positive")] += 1;
    }
    let chi2 = chi2_uniform_test(&counts);
    println!(
        "merged sampling over {} positives: chi2 p-value {:.3} (uniform at 1%: {})",
        positives.len(),
        chi2.p_value,
        chi2.is_uniform_at(0.01)
    );

    // Batch traffic fans out across shards on a worker pool.
    let filters: Vec<_> = (0..64)
        .map(|i| {
            let base = i * 731;
            engine.store(occupied.iter().copied().skip(base).step_by(211).take(40))
        })
        .collect();
    let (results, stats) = engine.query_batch(&filters, 42, 0);
    let served = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "\nbatch of {} filters: {served} served, {} ops total ({} intersections, {} memberships)",
        filters.len(),
        stats.total_ops(),
        stats.intersections,
        stats.memberships
    );

    // Occupancy churn routes to the owning shard; only that shard's
    // handles re-descend.
    let newcomer = namespace - 7;
    let owner = engine.shard_of(newcomer);
    engine.insert_occupied(newcomer).expect("signup");
    engine.insert_keys(community, [newcomer]).expect("join");
    let rec = query.reconstruct().expect("reconstruct");
    println!(
        "\nsignup of id {newcomer} -> shard {owner} (tree generation {}), \
         visible through the open sharded handle: {}",
        engine.shard_systems()[owner].tree_generation(),
        rec.binary_search(&newcomer).is_ok()
    );

    // Snapshot the whole engine: boundaries, registry, every shard.
    let snapshot = engine.to_bytes();
    let restored = ShardedBstSystem::from_bytes(&snapshot).expect("restore");
    let restored_rec = restored
        .query_id(community)
        .expect("open")
        .reconstruct()
        .expect("reconstruct");
    println!(
        "\nsnapshot: {:.2} MB; restored engine answers identically: {}",
        snapshot.len() as f64 / 1e6,
        restored_rec == rec
    );
    assert_eq!(restored_rec, rec);
}
