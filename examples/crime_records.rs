//! Call-record forensics — the paper's second motivating scenario (§1):
//! "storing and retrieving all call records associated with specific
//! locations in crime-related investigations."
//!
//! A telecom keeps, per cell tower and per day, the set of phone numbers
//! observed — as Bloom filters (compact, privacy-friendlier than raw
//! lists). Months later an investigator needs the numbers present near a
//! crime scene. With the weakly invertible "Simple" hash family, all three
//! of the paper's methods apply; this example runs the same reconstruction
//! with each and compares their costs.
//!
//! Run with: `cargo run --release --example crime_records`

use bloomsampletree::core::baselines::{dictionary, hashinvert};
use bloomsampletree::{BstSystem, OpStats};
use bst_bloom::HashKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Phone-number namespace: 7-digit local numbers.
const NAMESPACE: u64 = 10_000_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xCA11);

    // The "towers": each day, each tower sees a set of numbers. A tower
    // near a residential area sees clustered blocks (numbers are assigned
    // in ranges); a downtown tower sees a broad mix.
    let residential: Vec<u64> = (0..800u64)
        .map(|i| 4_210_000 + i * 3 + rng.gen_range(0..2u64))
        .collect();
    let downtown: Vec<u64> = (0..2500u64).map(|_| rng.gen_range(0..NAMESPACE)).collect();

    // The telecom's archival system: one tree for the number namespace,
    // Simple (invertible) hashes so HashInvert is possible, sized for 90%
    // accuracy on ~1000-number sets.
    println!("building archive index over {NAMESPACE} numbers…");
    let t0 = Instant::now();
    let system = BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .hash_kind(HashKind::Simple)
        .seed(0xA7C4)
        .build();
    println!(
        "  tree: depth {}, {} nodes, {:.1} MB, built in {:?}",
        system.tree().depth(),
        system.tree().node_count(),
        system.tree().memory_bytes() as f64 / 1e6,
        t0.elapsed()
    );

    let mut res_set = residential.clone();
    res_set.sort_unstable();
    res_set.dedup();
    let mut dtn_set = downtown.clone();
    dtn_set.sort_unstable();
    dtn_set.dedup();

    let evidence_a = system.store(res_set.iter().copied());
    let evidence_b = system.store(dtn_set.iter().copied());
    println!(
        "\narchived: tower A ({} numbers), tower B ({} numbers); {} KB per filter",
        res_set.len(),
        dtn_set.len(),
        evidence_a.m() / 8 / 1024
    );

    // The investigation: recover all numbers seen by tower A.
    println!("\n--- reconstructing tower A's numbers, three ways ---");

    // The investigator holds one query handle per evidence filter: the
    // first operation pays for the tree descent, every later operation on
    // the same filter reuses the cached frontier.
    let query_a = system.query(&evidence_a);
    let t1 = Instant::now();
    let via_bst = query_a.reconstruct().expect("reconstruct tower A");
    let bst_time = t1.elapsed();
    let bst_stats = query_a.take_stats();

    let mut hi_stats = OpStats::new();
    let t2 = Instant::now();
    let via_hi = hashinvert::hi_reconstruct(&evidence_a, &mut hi_stats);
    let hi_time = t2.elapsed();

    let mut da_stats = OpStats::new();
    let t3 = Instant::now();
    let via_da = dictionary::da_reconstruct(&evidence_a, NAMESPACE, &mut da_stats);
    let da_time = t3.elapsed();

    let recall = |result: &[u64]| {
        res_set
            .iter()
            .filter(|x| result.binary_search(x).is_ok())
            .count()
    };
    println!(
        "{:<18} {:>9} {:>12} {:>14} {:>9} {:>7}",
        "method", "found", "memberships", "intersections", "recall", "time"
    );
    for (name, result, stats, time) in [
        ("BloomSampleTree", &via_bst, &bst_stats, bst_time),
        ("HashInvert", &via_hi, &hi_stats, hi_time),
        ("DictionaryAttack", &via_da, &da_stats, da_time),
    ] {
        println!(
            "{:<18} {:>9} {:>12} {:>14} {:>6}/{:<3} {:>6.0?}",
            name,
            result.len(),
            stats.memberships,
            stats.intersections,
            recall(result),
            res_set.len(),
            time
        );
    }
    // All three answer the same question; the positives of the filter are
    // method-independent.
    assert_eq!(via_hi, via_da, "HashInvert must equal the full scan");
    for x in &res_set {
        assert!(via_bst.binary_search(x).is_ok(), "BST lost {x}");
    }

    // Cross-referencing: was a suspect's number seen at both towers?
    let suspect = res_set[17];
    println!(
        "\nsuspect {suspect}: tower A says {}, tower B says {}",
        evidence_a.contains(suspect),
        evidence_b.contains(suspect)
    );

    // Sampling for canvassing: pick a handful of numbers seen by tower A
    // to contact first. The handle already holds tower A's leaf matches
    // from the reconstruction, so this costs almost nothing extra.
    let mut rng2 = StdRng::seed_from_u64(9);
    let canvass = query_a.sample_many(5, &mut rng2).expect("canvass sample");
    println!(
        "canvassing sample from tower A: {canvass:?} ({} extra ops after reconstruction)",
        query_a.stats().total_ops()
    );
}
