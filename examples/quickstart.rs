//! Quickstart: store a set in a Bloom filter, then sample from it and
//! reconstruct it through a query handle on a BloomSampleTree — including
//! an ASCII rendering of the paper's Figure 1 tree, an empirical sampling
//! histogram, and the handle's amortization at work.
//!
//! Run with: `cargo run --release --example quickstart`

use bloomsampletree::core::sampler::SamplerConfig;
use bloomsampletree::BstSystem;
use bst_stats::chi2_uniform_test;
use bst_stats::histogram::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build the system: one BloomSampleTree for a namespace of 100k
    //    ids, sized for 90% sampling accuracy on ~1000-element sets. The
    //    system is an Arc handle — clone it freely across threads.
    // ------------------------------------------------------------------
    let system = BstSystem::builder(100_000)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(42)
        .build();
    let plan = system.tree().plan();
    println!("BloomSampleTree over [0, {})", plan.namespace);
    println!(
        "  m = {} bits, k = {}, depth = {}, leaf capacity = {}, {} nodes, {:.2} MB",
        plan.m,
        plan.k,
        plan.depth,
        plan.leaf_capacity,
        system.tree().node_count(),
        system.tree().memory_bytes() as f64 / 1e6
    );

    // ------------------------------------------------------------------
    // 2. Store a set. Only the filter survives; the set is forgotten.
    // ------------------------------------------------------------------
    let secret_set: Vec<u64> = (0..1000u64).map(|i| i * 97 + 13).collect();
    let filter = system.store(secret_set.iter().copied());
    println!(
        "\nStored {} elements in a {}-bit filter ({} bits set, fill {:.1}%)",
        secret_set.len(),
        filter.m(),
        filter.count_ones(),
        filter.fill_ratio() * 100.0
    );
    println!(
        "  estimated cardinality from the filter alone: {:.1}",
        filter.estimate_cardinality()
    );

    // ------------------------------------------------------------------
    // 3. Open a query handle and sample from the filter. The handle
    //    captures the filter once; descent state accumulates across
    //    calls, so repeated samples get cheaper.
    // ------------------------------------------------------------------
    let query = system.query(&filter);
    let mut rng = StdRng::seed_from_u64(7);
    print!("\nTen samples drawn without the original set:");
    for _ in 0..10 {
        let s = query.sample(&mut rng).expect("sample");
        print!(" {s}");
    }
    println!();
    let cold = query.take_stats();
    for _ in 0..990 {
        query.sample(&mut rng).expect("sample");
    }
    let warming = query.take_stats();
    for _ in 0..1000 {
        query.sample(&mut rng).expect("sample");
    }
    let warm = query.take_stats();
    println!(
        "  amortization: {} ops for the first 10 samples, {} for the next 990, {} for the 1000 after that",
        cold.total_ops(),
        warming.total_ops(),
        warm.total_ops()
    );

    // ------------------------------------------------------------------
    // 4. Check sample quality: histogram + chi-squared over 130 draws per
    //    element (the paper's Table 5 protocol, corrected sampler).
    // ------------------------------------------------------------------
    let subset: Vec<u64> = secret_set.iter().copied().take(50).collect();
    // A different sampler config on the *same* shared tree: drop to the
    // sampler layer with a persistent memo (no second tree build).
    let view = system.tree().read();
    let sampler = bloomsampletree::BstSampler::with_config(&view, SamplerConfig::corrected());
    let small = system.store(subset.iter().copied());
    let mut memo = bloomsampletree::QueryMemo::new();
    let mut stats = bloomsampletree::OpStats::new();
    let mut counts = vec![0u64; subset.len()];
    for _ in 0..130 * subset.len() {
        if let Ok(s) = sampler.try_sample_memo(&small, &mut memo, &mut rng, &mut stats) {
            if let Ok(i) = subset.binary_search(&s) {
                counts[i] += 1;
            }
        }
    }
    let mut hist = Histogram::new(0.0, 100_000.0, 10);
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            hist.record(subset[i] as f64);
        }
    }
    println!("\nEmpirical distribution of 6500 samples over 50 elements:");
    print!("{}", hist.render(40));
    let chi = chi2_uniform_test(&counts);
    println!(
        "chi-squared: q = {:.1} (dof {}), p = {:.3} -> {}",
        chi.statistic,
        chi.dof,
        chi.p_value,
        if chi.is_uniform_at(0.08) {
            "uniformity NOT rejected (paper's criterion)"
        } else {
            "uniformity rejected"
        }
    );

    // ------------------------------------------------------------------
    // 5. Reconstruct the full set from the filter, through the same
    //    handle that sampled it (the cached leaf matches are reused).
    // ------------------------------------------------------------------
    let rebuilt = query.reconstruct().expect("reconstruct");
    let true_hits = rebuilt
        .iter()
        .filter(|x| secret_set.binary_search(x).is_ok())
        .count();
    println!(
        "\nReconstruction: {} elements returned, {} of {} true elements recovered, {} false positives",
        rebuilt.len(),
        true_hits,
        secret_set.len(),
        rebuilt.len() - true_hits
    );

    // ------------------------------------------------------------------
    // 6. Figure 1: a miniature BloomSampleTree, drawn.
    // ------------------------------------------------------------------
    println!("\nFigure 1 miniature: BloomSampleTree over [0, 16), m = 10 bits, k = 2");
    let mini = BstSystem::builder(16)
        .expected_set_size(2)
        .depth(2)
        .hash_count(2)
        .seed(1)
        .build();
    use bloomsampletree::SampleTree;
    let tree = mini.tree().read();
    for level in 0..=mini.tree().depth() {
        let start = (1usize << level) - 1;
        let mut line = String::new();
        for i in start..start + (1 << level) {
            let r = tree.range(i as u32);
            line.push_str(&format!("[{:>2}..{:>2}) ", r.start, r.end));
        }
        let pad = " ".repeat((mini.tree().depth() - level) as usize * 5);
        println!("  {pad}{line}");
    }
    let s = mini.store([4u64, 6]);
    println!("  query filter for {{4, 6}}: {} bits set", s.count_ones());
    println!(
        "  reconstructed: {:?}",
        mini.query(&s).reconstruct().expect("reconstruct")
    );
}
