//! Social-network communities — the paper's motivating scenario (§1):
//! "storing and subsequently sampling from a large number of dynamic,
//! online communities that form on social networks … that could help
//! advertisers determine where to target their products."
//!
//! A synthetic microblog stream (substitute for the paper's Twitter crawl,
//! see DESIGN.md) produces per-hashtag audiences. Each audience is
//! registered in the system's store — the filter database `D̄` — and
//! addressed by a stable id. A single pruned-backend `BstSystem` over the
//! sparsely occupied user-id namespace then answers:
//!
//! * "give me a random user who tweeted #tag" (ad targeting),
//! * "list the whole audience of #tag" (campaign export), and
//! * both again after the audience churns (members join and leave),
//!
//! at a fraction of the memory of a complete tree, using only public
//! facade API.
//!
//! Run with: `cargo run --release --example social_communities`

use bloomsampletree::{BstSystem, FilterId};
use bst_workloads::occupancy::clustered_occupancy;
use bst_workloads::social::{SocialConfig, SocialStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A downscaled stream: 22M-wide id namespace, 72k active users
    // clustered into 30% of it, 240 hashtags.
    let cfg = SocialConfig::small();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let occupancy = clustered_occupancy(&mut rng, cfg.namespace, 256, 0.3);
    println!(
        "namespace: {} ids, occupied fraction {:.2} in {} contiguous ranges",
        cfg.namespace,
        occupancy.fraction(),
        occupancy.ranges().len()
    );

    let t0 = Instant::now();
    let stream = SocialStream::generate(cfg.clone(), &occupancy);
    println!(
        "generated {} users, {} hashtags in {:?}",
        stream.users().len(),
        cfg.hashtags,
        t0.elapsed()
    );

    // One facade call: filters planned for 80% accuracy (the paper's §8
    // setting), pruned tree over the occupied ids only.
    let t1 = Instant::now();
    let system = BstSystem::builder(cfg.namespace)
        .expected_set_size(1000)
        .accuracy(0.8)
        .seed(99)
        .pruned(stream.users().iter().copied())
        .build();
    println!(
        "pruned backend: {} nodes (complete tree would need {}), {:.1} MB, built in {:?}",
        system.tree().node_count(),
        (1u64 << (system.tree().depth() + 1)) - 1,
        system.tree().memory_bytes() as f64 / 1e6,
        t1.elapsed()
    );

    // Register the 40 most popular hashtag audiences in the store.
    let audiences: Vec<Vec<u64>> = (0..40).map(|tag| stream.audience(tag)).collect();
    let ids: Vec<FilterId> = audiences
        .iter()
        .map(|a| system.create(a.iter().copied()).expect("register audience"))
        .collect();
    println!(
        "\nregistered {} audiences in the store ({} KB per projection); sizes {}..{} users",
        ids.len(),
        system.tree().plan().m / 8 / 1024,
        audiences.iter().map(Vec::len).min().unwrap(),
        audiences.iter().map(Vec::len).max().unwrap()
    );

    // Ad targeting: one random member of each audience, batched across
    // worker threads, addressed by id.
    let t2 = Instant::now();
    let (picks, stats) = system.query_batch_ids(&ids, 7, 0);
    let hit = picks
        .iter()
        .zip(&audiences)
        .filter(|(p, aud)| matches!(p, Ok(x) if aud.binary_search(x).is_ok()))
        .count();
    println!(
        "sampled one target user per audience in {:?} ({} of {} samples are true members)",
        t2.elapsed(),
        hit,
        picks.len()
    );
    println!("  batch cost: {stats}");

    // Campaign export: reconstruct one audience from its stored filter.
    let tag = 3usize;
    let export_query = system.query_id(ids[tag]).expect("open handle");
    let t3 = Instant::now();
    let exported = export_query.reconstruct().expect("reconstruct");
    let truth = &audiences[tag];
    let recovered = truth
        .iter()
        .filter(|x| exported.binary_search(x).is_ok())
        .count();
    println!(
        "\nexported audience #{tag}: {} ids in {:?} ({} of {} true members, {} false positives)",
        exported.len(),
        t3.elapsed(),
        recovered,
        truth.len(),
        exported.len() - recovered
    );
    println!("  export cost: {}", export_query.take_stats());
    println!(
        "  a DictionaryAttack export would need {} membership queries",
        cfg.namespace
    );

    // Heavy-user overlap: sample repeatedly from one audience and count
    // cross-membership with another — the preferential-attachment
    // signature. Repeated samples share the handle's memo, so only the
    // first draw pays for the tree descent.
    let overlap_query = system.query_id(ids[0]).expect("open handle");
    let mut cross = 0usize;
    let mut draws = 0usize;
    for _ in 0..200 {
        if let Ok(u) = overlap_query.sample(&mut rng) {
            draws += 1;
            if audiences[1].binary_search(&u).is_ok() {
                cross += 1;
            }
        }
    }
    println!(
        "\naudience overlap probe: {cross}/{draws} samples from #0 are also in #1 \
         (heavy users span hashtags; 200 draws cost {} ops through the handle)",
        overlap_query.take_stats().total_ops()
    );

    // Audiences churn: a trending hashtag gains users, a fading one loses
    // half. The store mutates in place; the open export handle notices.
    let newcomers: Vec<u64> = stream.audience(100);
    system
        .insert_keys(ids[5], newcomers.iter().copied())
        .expect("insert");
    let (fading_leavers, _) = audiences[tag].split_at(truth.len() / 2);
    system
        .remove_keys(ids[tag], fading_leavers.iter().copied())
        .expect("remove");
    println!(
        "\nchurn: audience #5 gained {} users (gen {}), #{} lost {} (gen {}; export handle stale: {})",
        newcomers.len(),
        system.filters().generation(ids[5]).expect("generation"),
        tag,
        fading_leavers.len(),
        system.filters().generation(ids[tag]).expect("generation"),
        export_query.is_stale().expect("staleness"),
    );
    let re_export = export_query.reconstruct().expect("re-export");
    let ghosts = fading_leavers
        .iter()
        .filter(|x| re_export.binary_search(x).is_ok())
        .count();
    println!(
        "re-export of #{tag}: {} ids ({} ghost leavers), handle refreshed to generation {}",
        re_export.len(),
        ghosts,
        export_query.generation()
    );
}
