//! Social-network communities — the paper's motivating scenario (§1):
//! "storing and subsequently sampling from a large number of dynamic,
//! online communities that form on social networks … that could help
//! advertisers determine where to target their products."
//!
//! A synthetic microblog stream (substitute for the paper's Twitter crawl,
//! see DESIGN.md) produces per-hashtag audiences. Each audience is stored
//! *only* as a Bloom filter. A single Pruned-BloomSampleTree over the
//! sparsely occupied user-id namespace then answers:
//!
//! * "give me a random user who tweeted #tag" (ad targeting), and
//! * "list the whole audience of #tag" (campaign export),
//!
//! at a fraction of the memory of a complete tree.
//!
//! Run with: `cargo run --release --example social_communities`

use bloomsampletree::core::multiquery::sample_each;
use bloomsampletree::core::sampler::SamplerConfig;
use bloomsampletree::{
    BstReconstructor, BstSampler, OpStats, PrunedBloomSampleTree, QueryMemo, SampleTree,
};
use bst_bloom::params::TreePlan;
use bst_bloom::HashKind;
use bst_workloads::occupancy::clustered_occupancy;
use bst_workloads::social::{SocialConfig, SocialStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A downscaled stream: 22M-wide id namespace, 72k active users
    // clustered into 30% of it, 240 hashtags.
    let cfg = SocialConfig::small();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let occupancy = clustered_occupancy(&mut rng, cfg.namespace, 256, 0.3);
    println!(
        "namespace: {} ids, occupied fraction {:.2} in {} contiguous ranges",
        cfg.namespace,
        occupancy.fraction(),
        occupancy.ranges().len()
    );

    let t0 = Instant::now();
    let stream = SocialStream::generate(cfg.clone(), &occupancy);
    println!(
        "generated {} users, {} hashtags in {:?}",
        stream.users().len(),
        cfg.hashtags,
        t0.elapsed()
    );

    // Plan filters for 80% accuracy (the paper's §8 setting) and build the
    // pruned tree over the occupied ids only.
    let plan = TreePlan::for_accuracy(cfg.namespace, 1000, 0.8, 3, HashKind::Murmur3, 99, 128.0);
    let t1 = Instant::now();
    let tree = PrunedBloomSampleTree::build(&plan, stream.users());
    println!(
        "pruned tree: {} nodes (complete tree would need {}), {:.1} MB, built in {:?}",
        tree.node_count(),
        (1u64 << (plan.depth + 1)) - 1,
        tree.memory_bytes() as f64 / 1e6,
        t1.elapsed()
    );

    // Store the 40 most popular hashtag audiences as Bloom filters.
    let audiences: Vec<Vec<u64>> = (0..40).map(|tag| stream.audience(tag)).collect();
    let filters: Vec<_> = audiences
        .iter()
        .map(|a| tree.query_filter(a.iter().copied()))
        .collect();
    println!(
        "\nstored {} audiences as filters ({} KB each); sizes {}..{} users",
        filters.len(),
        plan.m / 8 / 1024,
        audiences.iter().map(Vec::len).min().unwrap(),
        audiences.iter().map(Vec::len).max().unwrap()
    );

    // Ad targeting: one random member of each audience, batched across
    // worker threads.
    let t2 = Instant::now();
    let (picks, stats) = sample_each(&tree, &filters, SamplerConfig::default(), 7, 0);
    let hit = picks
        .iter()
        .zip(&audiences)
        .filter(|(p, aud)| matches!(p, Ok(x) if aud.binary_search(x).is_ok()))
        .count();
    println!(
        "sampled one target user per audience in {:?} ({} of {} samples are true members)",
        t2.elapsed(),
        hit,
        picks.len()
    );
    println!("  batch cost: {stats}");

    // Campaign export: reconstruct one audience from its filter alone.
    let tag = 3usize;
    let mut rec_stats = OpStats::new();
    let t3 = Instant::now();
    let exported = BstReconstructor::new(&tree).reconstruct(&filters[tag], &mut rec_stats);
    let truth = &audiences[tag];
    let recovered = truth
        .iter()
        .filter(|x| exported.binary_search(x).is_ok())
        .count();
    println!(
        "\nexported audience #{tag}: {} ids in {:?} ({} of {} true members, {} false positives)",
        exported.len(),
        t3.elapsed(),
        recovered,
        truth.len(),
        exported.len() - recovered
    );
    println!("  export cost: {rec_stats}");
    println!(
        "  a DictionaryAttack export would need {} membership queries",
        cfg.namespace
    );

    // Heavy-user overlap: sample repeatedly from two audiences and count
    // cross-membership — the preferential-attachment signature. Repeated
    // samples of one filter share a QueryMemo, so only the first draw
    // pays for the tree descent.
    let sampler = BstSampler::new(&tree);
    let mut memo = QueryMemo::new();
    let mut cross = 0usize;
    let mut draws = 0usize;
    let mut s_stats = OpStats::new();
    for _ in 0..200 {
        if let Ok(u) = sampler.try_sample_memo(&filters[0], &mut memo, &mut rng, &mut s_stats) {
            draws += 1;
            if audiences[1].binary_search(&u).is_ok() {
                cross += 1;
            }
        }
    }
    println!(
        "\naudience overlap probe: {cross}/{draws} samples from #0 are also in #1 \
         (heavy users span hashtags; 200 draws cost {} ops through the memo)",
        s_stats.total_ops()
    );
}
