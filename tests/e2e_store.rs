//! End-to-end coverage of the mutable filter database: generation-stamped
//! handles re-descend cold after `insert_keys`/`remove_keys`, warm results
//! equal a fresh handle's for the same RNG state on the mutable path, both
//! tree backends serve the identical surface, and a whole-system snapshot
//! restores to a system whose samples and reconstructions match.

use bloomsampletree::{BstConfig, BstError, BstSystem, FilterId, PersistError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dense_system() -> BstSystem {
    BstSystem::builder(50_000)
        .expected_set_size(400)
        .seed(1234)
        .build()
}

fn pruned_system() -> BstSystem {
    BstSystem::builder(50_000)
        .expected_set_size(400)
        .seed(1234)
        .pruned((0..50_000u64).step_by(4))
        .build()
}

/// Both backends, so every store/handle guarantee is pinned on each.
fn systems() -> [BstSystem; 2] {
    [dense_system(), pruned_system()]
}

#[test]
fn mutate_then_query_invalidates_the_memo() {
    for sys in systems() {
        let id = sys
            .create((0..400u64).map(|i| (i * 112) % 50_000))
            .expect("create");
        let q = sys.query_id(id).expect("open");
        let mut rng = StdRng::seed_from_u64(1);

        // Warm the handle: descent state accumulates.
        q.sample(&mut rng).expect("sample");
        q.reconstruct().expect("reconstruct");
        let warm_evals = q.cached_evals();
        let warm_leaves = q.cached_leaves();
        assert!(warm_evals > 0 && warm_leaves > 0);
        let warm_ops = q.take_stats().total_ops();
        assert!(warm_ops > 0);

        // A fully-warm repeat does no filter work at all.
        q.reconstruct().expect("warm reconstruct");
        assert_eq!(q.take_stats().total_ops(), 0);

        // Mutation bumps the generation and strands the handle's stamp.
        assert_eq!(q.is_stale(), Ok(false));
        sys.insert_keys(id, [49_996u64]).expect("insert");
        assert_eq!(q.is_stale(), Ok(true));

        // The next operation provably re-descends: the memo was discarded
        // (cache counters reset to this op's coverage) and filter work is
        // paid again — never a stale answer.
        let rec = q.reconstruct().expect("post-mutation reconstruct");
        assert!(rec.binary_search(&49_996).is_ok(), "new key visible");
        assert!(
            q.take_stats().total_ops() > 0,
            "stale handle must pay cold-descent filter ops again"
        );
        assert_eq!(q.generation(), 1);
        assert_eq!(q.is_stale(), Ok(false));

        // Removal invalidates again, and the key disappears from answers.
        sys.remove_keys(id, [49_996u64]).expect("remove");
        let rec = q.reconstruct().expect("post-removal reconstruct");
        assert!(rec.binary_search(&49_996).is_err(), "removed key gone");
        assert_eq!(q.generation(), 2);
    }
}

#[test]
fn warm_handle_equals_fresh_cold_handle_across_mutations() {
    // The warm-equals-cold e2e guarantee, extended to the mutable path:
    // after every mutation, a long-lived handle must return exactly what
    // a freshly opened handle returns for the same RNG state.
    for cfg in [BstConfig::default(), BstConfig::corrected()] {
        for sys in [
            BstSystem::builder(50_000)
                .expected_set_size(400)
                .seed(77)
                .config(cfg)
                .build(),
            BstSystem::builder(50_000)
                .expected_set_size(400)
                .seed(77)
                .config(cfg)
                .pruned((0..50_000u64).step_by(3))
                .build(),
        ] {
            let id = sys
                .create((0..399u64).map(|i| (i * 125) % 50_000))
                .expect("create");
            let reused = sys.query_id(id).expect("open");
            let mut rng_warm = StdRng::seed_from_u64(9);
            let mut rng_cold = StdRng::seed_from_u64(9);
            for round in 0..8 {
                // Mutate between rounds: joins and leaves.
                sys.insert_keys(id, [(round * 31 + 7) % 50_000])
                    .expect("insert");
                if round % 2 == 0 {
                    sys.remove_keys(id, [(round * 125) % 50_000])
                        .expect("remove");
                }
                for draw in 0..10 {
                    let warm = reused.sample(&mut rng_warm);
                    let cold = sys.query_id(id).expect("open").sample(&mut rng_cold);
                    assert_eq!(warm, cold, "round {round} draw {draw}");
                }
                assert_eq!(
                    reused.reconstruct(),
                    sys.query_id(id).expect("open").reconstruct(),
                    "round {round}"
                );
            }
        }
    }
}

#[test]
fn dropped_sets_fail_typed_everywhere() {
    for sys in systems() {
        let id = sys.create(0..100u64).expect("create");
        let q = sys.query_id(id).expect("open");
        let mut rng = StdRng::seed_from_u64(2);
        q.sample(&mut rng).expect("sample while live");
        sys.drop_set(id).expect("drop");
        assert_eq!(q.sample(&mut rng), Err(BstError::UnknownFilterId(id)));
        assert_eq!(q.reconstruct(), Err(BstError::UnknownFilterId(id)));
        assert_eq!(
            q.sample_many(3, &mut rng),
            Err(BstError::UnknownFilterId(id))
        );
        assert_eq!(sys.query_id(id).err(), Some(BstError::UnknownFilterId(id)));
        assert_eq!(
            sys.insert_keys(id, [1u64]),
            Err(BstError::UnknownFilterId(id))
        );
        // Ids are never reused: creating again yields a fresh id.
        let id2 = sys.create(0..10u64).expect("create");
        assert_ne!(id, id2);
    }
}

#[test]
fn handles_share_mutations_across_threads() {
    let sys = dense_system();
    let id = sys
        .create((0..300u64).map(|i| i * 166 % 50_000))
        .expect("create");
    let writer = {
        let sys = sys.clone();
        std::thread::spawn(move || {
            for i in 0..50u64 {
                sys.insert_keys(id, [(40_000 + i) % 50_000])
                    .expect("insert");
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let sys = sys.clone();
            std::thread::spawn(move || {
                let q = sys.query_id(id).expect("open");
                let mut rng = StdRng::seed_from_u64(300 + t);
                for _ in 0..50 {
                    // Every sample must come from *some* generation's
                    // positives; the filter snapshot pins which one.
                    let snap = q.filter();
                    if let Ok(s) = q.sample(&mut rng) {
                        // The handle may have refreshed between snapshot
                        // and sample; accept either filter's verdict.
                        assert!(snap.contains(s) || q.filter().contains(s));
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }
    assert_eq!(sys.filters().generation(id), Ok(50));
}

#[test]
fn whole_system_snapshot_roundtrips_end_to_end() {
    for (label, sys) in [("dense", dense_system()), ("pruned", pruned_system())] {
        let a = sys
            .create((0..350u64).map(|i| i * 142 % 50_000))
            .expect("create");
        let b = sys
            .create((0..80u64).map(|i| i * 619 % 50_000))
            .expect("create");
        sys.insert_keys(a, [11u64, 12, 13]).expect("insert");
        sys.remove_keys(b, [0u64]).expect("remove");

        let bytes = sys.to_bytes();
        let restored = BstSystem::from_bytes(&bytes).expect("restore");

        // Same ids, same generations, same filter projections.
        assert_eq!(restored.filters().ids(), sys.filters().ids(), "{label}");
        for id in sys.filters().ids() {
            assert_eq!(
                restored.filters().generation(id),
                sys.filters().generation(id),
                "{label} {id}"
            );
            assert_eq!(
                restored.get(id).expect("get").bits(),
                sys.get(id).expect("get").bits(),
                "{label} {id}"
            );
        }

        // Same samples for the same RNG state; same reconstructions.
        for id in [a, b] {
            let q_orig = sys.query_id(id).expect("open");
            let q_rest = restored.query_id(id).expect("open");
            let mut r1 = StdRng::seed_from_u64(17);
            let mut r2 = StdRng::seed_from_u64(17);
            for _ in 0..25 {
                assert_eq!(q_orig.sample(&mut r1), q_rest.sample(&mut r2), "{label}");
            }
            assert_eq!(q_orig.reconstruct(), q_rest.reconstruct(), "{label}");
        }

        // The restored store stays mutable and stamps keep advancing.
        restored.insert_keys(a, [77u64]).expect("insert");
        assert_eq!(
            restored.filters().generation(a).expect("gen"),
            sys.filters().generation(a).expect("gen") + 1,
            "{label}"
        );
    }
}

#[test]
fn snapshot_rejects_corruption_with_one_error_type() {
    let sys = dense_system();
    sys.create(0..50u64).expect("create");
    let bytes = sys.to_bytes();
    // All decode failures surface as BstError::Persist — one taxonomy.
    let failures = [
        BstSystem::from_bytes(&[]).unwrap_err(),
        BstSystem::from_bytes(&bytes[..20]).unwrap_err(),
        {
            let mut v = bytes.clone();
            v[0] = b'Z';
            BstSystem::from_bytes(&v).unwrap_err()
        },
        {
            let mut v = bytes.clone();
            v[4] = 99; // version byte
            BstSystem::from_bytes(&v).unwrap_err()
        },
    ];
    for e in failures {
        assert!(
            matches!(e, BstError::Persist(_)),
            "expected Persist variant, got {e:?}"
        );
    }
    assert_eq!(
        BstSystem::from_bytes(&bytes[..20]).err(),
        Some(BstError::Persist(PersistError::Truncated))
    );
}

#[test]
fn filter_id_raw_roundtrip_for_wire_use() {
    let sys = dense_system();
    let id = sys.create(0..10u64).expect("create");
    // Service layers ship ids as integers; the raw value round-trips.
    let wire = id.raw();
    let back = FilterId::from_raw(wire);
    assert_eq!(back, id);
    assert!(sys.get(back).is_ok());
}
