//! End-to-end coverage of the sharded engine and the tree-generation
//! mechanism behind it:
//!
//! * scatter-gather sampling is statistically indistinguishable from
//!   single-tree sampling (chi² goodness-of-fit via `bst-stats`);
//! * warm handles equal cold handles across `insert_occupied` /
//!   `remove_occupied` mutations on the pruned backend — single system
//!   and sharded engine both;
//! * `ShardedBstSystem` round-trips through `to_bytes`/`from_bytes`
//!   deterministically.

use bloomsampletree::stats::chi2_uniform_test;
use bloomsampletree::{BstConfig, BstError, BstSystem, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's Table 5 protocol (130 draws per element), asserted at 1%
/// like the core uniformity tests: a correct sampler's p-values are
/// Uniform(0,1), so the paper's 0.08 level would flake by construction.
const ROUNDS_PER_ELEMENT: usize = 130;
const ALPHA: f64 = 0.01;

fn sample_counts<F: FnMut(&mut StdRng) -> u64>(
    keys: &[u64],
    rounds: usize,
    seed: u64,
    mut draw: F,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; keys.len()];
    for _ in 0..rounds {
        let s = draw(&mut rng);
        let idx = keys.binary_search(&s).expect("true element");
        counts[idx] += 1;
    }
    counts
}

/// Sharded scatter-gather sampling and single-tree sampling over the
/// same key set must both pass the chi² uniformity bar — the merged
/// shard distribution is statistically indistinguishable from one tree.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn sharded_sampling_matches_single_tree_chi2() {
    let namespace = 40_000u64;
    let n = 40usize;
    // Keys spread across all four shards' ranges.
    let keys: Vec<u64> = (0..n as u64)
        .map(|i| i * 997 % namespace)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let n = keys.len();
    let rounds = ROUNDS_PER_ELEMENT * n;

    // Sparse occupancy containing the keys: the pruned path on both
    // sides, so leaf candidate sets agree exactly.
    let mut occupied: Vec<u64> = (0..namespace).step_by(5).collect();
    occupied.extend(keys.iter().copied());
    occupied.sort_unstable();
    occupied.dedup();

    let sharded = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(42)
        .config(BstConfig::corrected())
        .occupied(occupied.iter().copied())
        .build();
    let single = BstSystem::builder(namespace)
        .expected_set_size(200)
        .seed(42)
        .config(BstConfig::corrected())
        .pruned(occupied.iter().copied())
        .build();

    let filter = sharded.store(keys.iter().copied());
    // Both engines must agree on the positive set before distributions
    // are compared (otherwise the counts index different supports).
    let positives = sharded.query(&filter).reconstruct().expect("sharded rec");
    assert_eq!(
        positives,
        single.query(&filter).reconstruct().expect("single rec")
    );
    assert_eq!(
        positives, keys,
        "no false positives at this m for the test seed"
    );

    let sharded_query = sharded.query(&filter);
    let sharded_counts = sample_counts(&keys, rounds, 7, |rng| {
        sharded_query.sample(rng).expect("sharded sample")
    });
    let single_query = single.query(&filter);
    let single_counts = sample_counts(&keys, rounds, 7, |rng| {
        single_query.sample(rng).expect("single sample")
    });

    let sharded_chi2 = chi2_uniform_test(&sharded_counts);
    let single_chi2 = chi2_uniform_test(&single_counts);
    assert!(
        sharded_chi2.is_uniform_at(ALPHA),
        "sharded sampling rejected uniformity: p = {}",
        sharded_chi2.p_value
    );
    assert!(
        single_chi2.is_uniform_at(ALPHA),
        "single-tree sampling rejected uniformity: p = {}",
        single_chi2.p_value
    );
    // Every shard with keys actually serves samples (the weighted pick
    // is not collapsing onto one shard).
    let boundaries = sharded.boundaries().to_vec();
    for s in 0..sharded.shard_count() {
        let in_shard: u64 = keys
            .iter()
            .zip(&sharded_counts)
            .filter(|(k, _)| (boundaries[s]..boundaries[s + 1]).contains(*k))
            .map(|(_, c)| *c)
            .sum();
        let keys_in_shard = keys
            .iter()
            .filter(|k| (boundaries[s]..boundaries[s + 1]).contains(*k))
            .count();
        if keys_in_shard > 0 {
            assert!(
                in_shard > 0,
                "shard {s} with {keys_in_shard} keys never sampled"
            );
        }
    }
}

/// Warm handles equal freshly opened handles across occupancy mutations
/// (`insert_occupied`/`remove_occupied`) on the pruned backend, for both
/// configurations — the tree-generation invalidation path end to end.
#[test]
fn warm_equals_cold_across_occupancy_mutations() {
    for cfg in [BstConfig::default(), BstConfig::corrected()] {
        let namespace = 30_000u64;
        let occupied: Vec<u64> = (0..namespace).step_by(2).collect();
        let sys = BstSystem::builder(namespace)
            .expected_set_size(300)
            .seed(91)
            .config(cfg)
            .pruned(occupied.iter().copied())
            .build();
        // The filter stores both occupied and (currently) unoccupied
        // ids, so occupancy churn changes the answer set.
        let keys: Vec<u64> = (0..300u64).map(|i| i * 97 % namespace).collect();
        let id = sys.create(keys.iter().copied()).expect("create");
        let reused = sys.query_id(id).expect("open");
        let detached = sys.query(&sys.get(id).expect("get"));
        let mut rng_warm = StdRng::seed_from_u64(17);
        let mut rng_cold = StdRng::seed_from_u64(17);
        let mut rng_det_warm = StdRng::seed_from_u64(18);
        let mut rng_det_cold = StdRng::seed_from_u64(18);
        for round in 0..8u64 {
            // Occupancy churn: ids enter and leave the namespace.
            let newcomer = (round * 2 + 1) * 97 % namespace;
            if round % 2 == 0 {
                sys.insert_occupied(newcomer).expect("insert_occupied");
            } else {
                sys.remove_occupied(newcomer | 1).ok();
                sys.remove_occupied((round * 194) % namespace).ok();
            }
            assert_eq!(reused.is_stale(), Ok(true), "round {round}");
            for draw in 0..6 {
                let warm = reused.sample(&mut rng_warm);
                let cold = sys.query_id(id).expect("open").sample(&mut rng_cold);
                assert_eq!(warm, cold, "stored handle, round {round} draw {draw}");
                let warm_det = detached.sample(&mut rng_det_warm);
                let cold_det = sys
                    .query(&sys.get(id).expect("get"))
                    .sample(&mut rng_det_cold);
                assert_eq!(
                    warm_det, cold_det,
                    "detached handle, round {round} draw {draw}"
                );
            }
            assert_eq!(
                reused.reconstruct(),
                sys.query_id(id).expect("open").reconstruct(),
                "round {round}"
            );
            assert_eq!(reused.tree_generation(), sys.tree_generation());
        }
    }
}

/// The same warm-equals-cold bar on the sharded engine, with both
/// mutation paths (set churn + occupancy churn) interleaved.
#[test]
fn sharded_warm_equals_cold_across_mutations() {
    let namespace = 16_384u64;
    let sharded = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(5)
        .occupied((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..200u64).map(|i| i * 81 % namespace).collect();
    let id = sharded.create(keys.iter().copied()).expect("create");
    let reused = sharded.query_id(id).expect("open");
    let mut rng_warm = StdRng::seed_from_u64(23);
    let mut rng_cold = StdRng::seed_from_u64(23);
    for round in 0..6u64 {
        match round % 3 {
            0 => sharded
                .insert_keys(id, [(round * 1_237 + 1) % namespace])
                .expect("insert_keys"),
            1 => {
                sharded
                    .insert_occupied((round * 2_467 + 1) % namespace)
                    .ok();
            }
            _ => sharded
                .remove_keys(id, [(round * 81) % namespace])
                .expect("remove_keys"),
        };
        for draw in 0..6 {
            let warm = reused.sample(&mut rng_warm);
            let cold = sharded.query_id(id).expect("open").sample(&mut rng_cold);
            assert_eq!(warm, cold, "round {round} draw {draw}");
        }
        assert_eq!(
            reused.reconstruct(),
            sharded.query_id(id).expect("open").reconstruct(),
            "round {round}"
        );
    }
}

/// The sharded engine snapshots and restores deterministically through
/// the facade, preserving scatter-gather behaviour exactly.
#[test]
fn sharded_snapshot_roundtrips_end_to_end() {
    let sharded = ShardedBstSystem::builder(20_000)
        .shards(4)
        .expected_set_size(300)
        .seed(77)
        .config(BstConfig::corrected())
        .occupied((0..20_000u64).step_by(3))
        .build();
    let a = sharded
        .create((0..250u64).map(|i| i * 333 % 20_000))
        .expect("create");
    let b = sharded.create((0..60u64).map(|i| i * 41)).expect("create");
    sharded.insert_keys(a, [19_999u64]).expect("insert");
    sharded.remove_keys(a, [0u64]).expect("remove");
    sharded.drop_set(b).expect("drop");
    sharded.insert_occupied(1).expect("insert_occupied");
    sharded.remove_occupied(3).expect("remove_occupied");

    let bytes = sharded.to_bytes();
    let restored = ShardedBstSystem::from_bytes(&bytes).expect("restore");
    assert_eq!(restored.boundaries(), sharded.boundaries());
    assert_eq!(restored.ids(), sharded.ids());
    assert_eq!(restored.occupied_count(), sharded.occupied_count());
    assert_eq!(bytes, restored.to_bytes(), "byte-deterministic");
    assert_eq!(
        restored.get(b).unwrap_err(),
        BstError::UnknownFilterId(b),
        "dropped spans stay dropped"
    );

    let q1 = sharded.query_id(a).expect("open");
    let q2 = restored.query_id(a).expect("open");
    let mut r1 = StdRng::seed_from_u64(29);
    let mut r2 = StdRng::seed_from_u64(29);
    for _ in 0..25 {
        assert_eq!(q1.sample(&mut r1), q2.sample(&mut r2));
    }
    assert_eq!(q1.reconstruct(), q2.reconstruct());
    let (batch1, _) = sharded.query_batch_ids(&[a], 3, 2);
    let (batch2, _) = restored.query_batch_ids(&[a], 3, 2);
    assert_eq!(batch1, batch2);
}

/// Batch scatter-gather serves a mixed bag of filters, deterministic
/// across thread counts, with typed per-slot failures.
#[test]
fn sharded_batches_fan_out_with_typed_errors() {
    let sharded = ShardedBstSystem::builder(20_000)
        .shards(4)
        .expected_set_size(200)
        .seed(13)
        .build();
    let mut filters: Vec<_> = (0..10)
        .map(|i| sharded.store((0..50u64).map(|j| (i * 911 + j * 23) % 20_000)))
        .collect();
    filters.insert(4, sharded.store(std::iter::empty()));
    let (results, stats) = sharded.query_batch(&filters, 21, 3);
    assert_eq!(results.len(), filters.len());
    assert_eq!(results[4], Err(BstError::EmptyFilter));
    for (i, (f, r)) in filters.iter().zip(&results).enumerate() {
        if i != 4 {
            assert!(f.contains(r.expect("sample")), "slot {i}");
        }
    }
    assert!(stats.total_ops() > 0);
    for threads in [1, 2, 8] {
        let (again, _) = sharded.query_batch(&filters, 21, threads);
        assert_eq!(results, again, "threads = {threads}");
    }
}
