//! End-to-end coverage of the sharded engine and the tree-generation
//! mechanism behind it:
//!
//! * scatter-gather sampling is statistically indistinguishable from
//!   single-tree sampling (the `bst-stats` conformance harness: chi²
//!   goodness-of-fit/homogeneity + Kolmogorov–Smirnov, fixed seeds) —
//!   for both configurations;
//! * a warm handle's post-mutation distribution is indistinguishable
//!   from a cold handle's (the journal-repaired memo does not bias the
//!   sampler) — for both configurations;
//! * warm handles equal cold handles across `insert_occupied` /
//!   `remove_occupied` mutations on the pruned backend — single system
//!   and sharded engine both;
//! * `ShardedBstSystem` round-trips through `to_bytes`/`from_bytes`
//!   deterministically.

use bloomsampletree::stats::chi2_uniform_test;
use bloomsampletree::stats::conformance::{
    chi2_homogeneity, ks_two_sample_ids, sample_counts, DEFAULT_ALPHA,
};
use bloomsampletree::{BstConfig, BstError, BstSystem, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's Table 5 protocol (130 draws per element), asserted at 1%
/// like the core uniformity tests: a correct sampler's p-values are
/// Uniform(0,1), so the paper's 0.08 level would flake by construction.
const ROUNDS_PER_ELEMENT: usize = 130;
const ALPHA: f64 = DEFAULT_ALPHA;

/// Both behaviour configurations, named for assertion messages.
fn both_configs() -> [(&'static str, BstConfig); 2] {
    [
        ("default", BstConfig::default()),
        ("corrected", BstConfig::corrected()),
    ]
}

/// Sharded scatter-gather sampling and single-tree sampling over the
/// same key set must both pass the chi² uniformity bar — the merged
/// shard distribution is statistically indistinguishable from one tree.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn sharded_sampling_matches_single_tree_chi2() {
    let namespace = 40_000u64;
    let n = 40usize;
    // Keys spread across all four shards' ranges.
    let keys: Vec<u64> = (0..n as u64)
        .map(|i| i * 997 % namespace)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let n = keys.len();
    let rounds = ROUNDS_PER_ELEMENT * n;

    // Sparse occupancy containing the keys: the pruned path on both
    // sides, so leaf candidate sets agree exactly.
    let mut occupied: Vec<u64> = (0..namespace).step_by(5).collect();
    occupied.extend(keys.iter().copied());
    occupied.sort_unstable();
    occupied.dedup();

    let sharded = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(42)
        .config(BstConfig::corrected())
        .occupied(occupied.iter().copied())
        .build();
    let single = BstSystem::builder(namespace)
        .expected_set_size(200)
        .seed(42)
        .config(BstConfig::corrected())
        .pruned(occupied.iter().copied())
        .build();

    let filter = sharded.store(keys.iter().copied());
    // Both engines must agree on the positive set before distributions
    // are compared (otherwise the counts index different supports).
    let positives = sharded.query(&filter).reconstruct().expect("sharded rec");
    assert_eq!(
        positives,
        single.query(&filter).reconstruct().expect("single rec")
    );
    assert_eq!(
        positives, keys,
        "no false positives at this m for the test seed"
    );

    let sharded_query = sharded.query(&filter);
    let sharded_counts = sample_counts(&keys, rounds, 7, |rng| {
        sharded_query.sample(rng).expect("sharded sample")
    });
    let single_query = single.query(&filter);
    let single_counts = sample_counts(&keys, rounds, 7, |rng| {
        single_query.sample(rng).expect("single sample")
    });

    let sharded_chi2 = chi2_uniform_test(&sharded_counts);
    let single_chi2 = chi2_uniform_test(&single_counts);
    assert!(
        sharded_chi2.is_uniform_at(ALPHA),
        "sharded sampling rejected uniformity: p = {}",
        sharded_chi2.p_value
    );
    assert!(
        single_chi2.is_uniform_at(ALPHA),
        "single-tree sampling rejected uniformity: p = {}",
        single_chi2.p_value
    );
    // Every shard with keys actually serves samples (the weighted pick
    // is not collapsing onto one shard).
    let boundaries = sharded.boundaries().to_vec();
    for s in 0..sharded.shard_count() {
        let in_shard: u64 = keys
            .iter()
            .zip(&sharded_counts)
            .filter(|(k, _)| (boundaries[s]..boundaries[s + 1]).contains(*k))
            .map(|(_, c)| *c)
            .sum();
        let keys_in_shard = keys
            .iter()
            .filter(|k| (boundaries[s]..boundaries[s + 1]).contains(*k))
            .count();
        if keys_in_shard > 0 {
            assert!(
                in_shard > 0,
                "shard {s} with {keys_in_shard} keys never sampled"
            );
        }
    }
}

/// The merged sharded distribution conforms to the single tree's, for
/// both configurations — each pinned at the strongest level that
/// actually holds:
///
/// * **corrected**: full distributional equivalence. Rejection
///   correction cancels the proposal distribution on both engines, so
///   independent draw streams must be chi²-homogeneous and
///   KS-indistinguishable.
/// * **default** (raw BSTSample): the per-element distribution is
///   tree-shape-dependent by design — the single tree routes its top
///   levels by noisy intersection estimates, while the sharded engine
///   replaces exactly those levels with an **exact live-weight** shard
///   pick — so full equivalence provably fails. What the scatter
///   algebra guarantees instead is the shard *marginal*:
///   `P(shard) = w_s / Σw` with exact weights, pinned here by a χ²
///   goodness-of-fit against the engine's own reported weights.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn merged_distribution_conforms_to_single_tree_both_configs() {
    let namespace = 16_384u64;
    let keys: Vec<u64> = (0..30u64)
        .map(|i| (i * 997 + 3) % namespace)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut occupied: Vec<u64> = (0..namespace).step_by(3).collect();
    occupied.extend(keys.iter().copied());
    occupied.sort_unstable();
    occupied.dedup();
    let rounds = ROUNDS_PER_ELEMENT * keys.len();

    for (name, cfg) in both_configs() {
        let sharded = ShardedBstSystem::builder(namespace)
            .shards(4)
            .expected_set_size(200)
            .seed(42)
            .config(cfg)
            .occupied(occupied.iter().copied())
            .build();
        let single = BstSystem::builder(namespace)
            .expected_set_size(200)
            .seed(42)
            .config(cfg)
            .pruned(occupied.iter().copied())
            .build();
        let filter = sharded.store(keys.iter().copied());
        let support = sharded.query(&filter).reconstruct().expect("sharded rec");
        assert_eq!(
            support,
            single.query(&filter).reconstruct().expect("single rec"),
            "{name}: engines must agree on the positive set"
        );

        // Independent seeds: the comparison is statistical, not stream-
        // equality. Raw draws feed the KS test; counts feed chi².
        let sharded_query = sharded.query(&filter);
        let mut sharded_raw = Vec::with_capacity(rounds);
        let sharded_counts = sample_counts(&support, rounds, 7, |rng| {
            let s = sharded_query.sample(rng).expect("sharded sample");
            sharded_raw.push(s);
            s
        });

        if name == "corrected" {
            let single_query = single.query(&filter);
            let mut single_raw = Vec::with_capacity(rounds);
            let single_counts = sample_counts(&support, rounds, 8, |rng| {
                let s = single_query.sample(rng).expect("single sample");
                single_raw.push(s);
                s
            });
            let h = chi2_homogeneity(&sharded_counts, &single_counts);
            assert!(
                h.is_uniform_at(ALPHA),
                "{name}: sharded vs single chi² homogeneity rejected: p = {}",
                h.p_value
            );
            let ks = ks_two_sample_ids(&sharded_raw, &single_raw);
            assert!(
                ks.is_same_distribution_at(ALPHA),
                "{name}: sharded vs single KS rejected: D = {}, p = {}",
                ks.statistic,
                ks.p_value
            );
        } else {
            // Shard marginal vs the engine's own exact weights. The
            // per-shard handles are warm after the draws, so live_weight
            // reads the maintained counts.
            let boundaries = sharded.boundaries().to_vec();
            let shard_of = |key: u64| boundaries.partition_point(|&b| b <= key) - 1;
            let mut observed = vec![0u64; sharded.shard_count()];
            for (key, count) in support.iter().zip(&sharded_counts) {
                observed[shard_of(*key)] += count;
            }
            let weights: Vec<u64> = sharded_query
                .shard_handles()
                .iter()
                .map(|h| h.live_weight().expect("shard weight"))
                .collect();
            let total: u64 = weights.iter().sum();
            assert_eq!(
                total,
                support.len() as u64,
                "{name}: weights sum to |support|"
            );
            // Keep only shards with mass (chi2_test needs positive
            // expectations; weightless shards can never be drawn).
            let (obs, exp): (Vec<u64>, Vec<f64>) = observed
                .iter()
                .zip(&weights)
                .filter(|(_, &w)| w > 0)
                .map(|(&o, &w)| (o, rounds as f64 * w as f64 / total as f64))
                .unzip();
            let gof = bloomsampletree::stats::chi2_test(&obs, &exp);
            assert!(
                gof.is_uniform_at(ALPHA),
                "{name}: shard marginal deviates from exact weights: p = {}",
                gof.p_value
            );
        }
    }
}

/// After occupancy churn, a warm handle's sampling distribution
/// conforms to a cold handle's, for both configurations: the journal-
/// repaired memo must not bias the sampler relative to a cold descent.
/// (Stream-level warm-equals-cold is pinned deterministically below;
/// this is the statistical version with independent seeds, on the
/// single system and the sharded engine both.)
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn post_mutation_warm_distribution_conforms_to_cold_both_configs() {
    let namespace = 8_192u64;
    let keys: Vec<u64> = (0..25u64).map(|i| (i * 311 + 1) % namespace).collect();
    let occupied: Vec<u64> = (0..namespace).step_by(2).collect();
    let rounds = ROUNDS_PER_ELEMENT * keys.len();

    for (name, cfg) in both_configs() {
        let single = BstSystem::builder(namespace)
            .expected_set_size(200)
            .seed(11)
            .config(cfg)
            .pruned(occupied.iter().copied())
            .build();
        let sharded = ShardedBstSystem::builder(namespace)
            .shards(4)
            .expected_set_size(200)
            .seed(11)
            .config(cfg)
            .occupied(occupied.iter().copied())
            .build();
        let filter = single.store(keys.iter().copied());

        // Open the handles first, then churn occupancy so their memos go
        // through the journal-repair path before any drawing starts.
        let warm_single = single.query(&filter);
        let warm_sharded = sharded.query(&filter);
        warm_single.reconstruct().expect("prime the memo");
        warm_sharded.reconstruct().expect("prime the memo");
        // Churn with odd *filter keys*: occupancy starts as the evens,
        // so each insert really mutates — and because the ids are true
        // positives, the odd-round survivors change the sampling
        // support, forcing the repaired memos to answer over genuinely
        // different trees than the ones they were primed on.
        let odd_keys: Vec<u64> = keys.iter().copied().filter(|k| k % 2 == 1).collect();
        assert!(odd_keys.len() >= 10, "need enough initially-free keys");
        for round in 0..10u64 {
            let id = odd_keys[round as usize];
            single.insert_occupied(id).expect("insert");
            sharded.insert_occupied(id).expect("insert");
            if round % 2 == 0 {
                single.remove_occupied(id).expect("remove");
                sharded.remove_occupied(id).expect("remove");
            }
        }

        let support = warm_single.reconstruct().expect("post-churn support");
        for (round, id) in odd_keys.iter().take(10).enumerate() {
            assert_eq!(
                support.binary_search(id).is_ok(),
                round % 2 == 1,
                "{name}: churn must have changed the support (key {id})"
            );
        }
        assert_eq!(
            support,
            warm_sharded.reconstruct().expect("sharded support"),
            "{name}: engines must agree post-churn"
        );

        let warm_counts = sample_counts(&support, rounds, 21, |rng| {
            warm_single.sample(rng).expect("warm sample")
        });
        let cold_counts = sample_counts(&support, rounds, 22, |rng| {
            single.query(&filter).sample(rng).expect("cold sample")
        });
        let h = chi2_homogeneity(&warm_counts, &cold_counts);
        assert!(
            h.is_uniform_at(ALPHA),
            "{name}: warm vs cold (single) homogeneity rejected: p = {}",
            h.p_value
        );

        let warm_sharded_counts = sample_counts(&support, rounds, 23, |rng| {
            warm_sharded.sample(rng).expect("warm sharded sample")
        });
        let cold_sharded_counts = sample_counts(&support, rounds, 24, |rng| {
            sharded.query(&filter).sample(rng).expect("cold sharded")
        });
        let h = chi2_homogeneity(&warm_sharded_counts, &cold_sharded_counts);
        assert!(
            h.is_uniform_at(ALPHA),
            "{name}: warm vs cold (sharded) homogeneity rejected: p = {}",
            h.p_value
        );
    }
}

/// Warm handles equal freshly opened handles across occupancy mutations
/// (`insert_occupied`/`remove_occupied`) on the pruned backend, for both
/// configurations — the tree-generation invalidation path end to end.
#[test]
fn warm_equals_cold_across_occupancy_mutations() {
    for cfg in [BstConfig::default(), BstConfig::corrected()] {
        let namespace = 30_000u64;
        let occupied: Vec<u64> = (0..namespace).step_by(2).collect();
        let sys = BstSystem::builder(namespace)
            .expected_set_size(300)
            .seed(91)
            .config(cfg)
            .pruned(occupied.iter().copied())
            .build();
        // The filter stores both occupied and (currently) unoccupied
        // ids, so occupancy churn changes the answer set.
        let keys: Vec<u64> = (0..300u64).map(|i| i * 97 % namespace).collect();
        let id = sys.create(keys.iter().copied()).expect("create");
        let reused = sys.query_id(id).expect("open");
        let detached = sys.query(&sys.get(id).expect("get"));
        let mut rng_warm = StdRng::seed_from_u64(17);
        let mut rng_cold = StdRng::seed_from_u64(17);
        let mut rng_det_warm = StdRng::seed_from_u64(18);
        let mut rng_det_cold = StdRng::seed_from_u64(18);
        for round in 0..8u64 {
            // Occupancy churn: ids enter and leave the namespace.
            let newcomer = (round * 2 + 1) * 97 % namespace;
            if round % 2 == 0 {
                sys.insert_occupied(newcomer).expect("insert_occupied");
            } else {
                sys.remove_occupied(newcomer | 1).ok();
                sys.remove_occupied((round * 194) % namespace).ok();
            }
            assert_eq!(reused.is_stale(), Ok(true), "round {round}");
            for draw in 0..6 {
                let warm = reused.sample(&mut rng_warm);
                let cold = sys.query_id(id).expect("open").sample(&mut rng_cold);
                assert_eq!(warm, cold, "stored handle, round {round} draw {draw}");
                let warm_det = detached.sample(&mut rng_det_warm);
                let cold_det = sys
                    .query(&sys.get(id).expect("get"))
                    .sample(&mut rng_det_cold);
                assert_eq!(
                    warm_det, cold_det,
                    "detached handle, round {round} draw {draw}"
                );
            }
            assert_eq!(
                reused.reconstruct(),
                sys.query_id(id).expect("open").reconstruct(),
                "round {round}"
            );
            assert_eq!(reused.tree_generation(), sys.tree_generation());
        }
    }
}

/// The same warm-equals-cold bar on the sharded engine, with both
/// mutation paths (set churn + occupancy churn) interleaved.
#[test]
fn sharded_warm_equals_cold_across_mutations() {
    let namespace = 16_384u64;
    let sharded = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(5)
        .occupied((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..200u64).map(|i| i * 81 % namespace).collect();
    let id = sharded.create(keys.iter().copied()).expect("create");
    let reused = sharded.query_id(id).expect("open");
    let mut rng_warm = StdRng::seed_from_u64(23);
    let mut rng_cold = StdRng::seed_from_u64(23);
    for round in 0..6u64 {
        match round % 3 {
            0 => sharded
                .insert_keys(id, [(round * 1_237 + 1) % namespace])
                .expect("insert_keys"),
            1 => {
                sharded
                    .insert_occupied((round * 2_467 + 1) % namespace)
                    .ok();
            }
            _ => sharded
                .remove_keys(id, [(round * 81) % namespace])
                .expect("remove_keys"),
        };
        for draw in 0..6 {
            let warm = reused.sample(&mut rng_warm);
            let cold = sharded.query_id(id).expect("open").sample(&mut rng_cold);
            assert_eq!(warm, cold, "round {round} draw {draw}");
        }
        assert_eq!(
            reused.reconstruct(),
            sharded.query_id(id).expect("open").reconstruct(),
            "round {round}"
        );
    }
}

/// The sharded engine snapshots and restores deterministically through
/// the facade, preserving scatter-gather behaviour exactly.
#[test]
fn sharded_snapshot_roundtrips_end_to_end() {
    let sharded = ShardedBstSystem::builder(20_000)
        .shards(4)
        .expected_set_size(300)
        .seed(77)
        .config(BstConfig::corrected())
        .occupied((0..20_000u64).step_by(3))
        .build();
    let a = sharded
        .create((0..250u64).map(|i| i * 333 % 20_000))
        .expect("create");
    let b = sharded.create((0..60u64).map(|i| i * 41)).expect("create");
    sharded.insert_keys(a, [19_999u64]).expect("insert");
    sharded.remove_keys(a, [0u64]).expect("remove");
    sharded.drop_set(b).expect("drop");
    sharded.insert_occupied(1).expect("insert_occupied");
    sharded.remove_occupied(3).expect("remove_occupied");

    let bytes = sharded.to_bytes();
    let restored = ShardedBstSystem::from_bytes(&bytes).expect("restore");
    assert_eq!(restored.boundaries(), sharded.boundaries());
    assert_eq!(restored.ids(), sharded.ids());
    assert_eq!(restored.occupied_count(), sharded.occupied_count());
    assert_eq!(bytes, restored.to_bytes(), "byte-deterministic");
    assert!(
        restored.weights_consistent(),
        "restored maintained weights must pass a recount"
    );
    assert_eq!(
        restored.get(b).unwrap_err(),
        BstError::UnknownFilterId(b),
        "dropped spans stay dropped"
    );

    let q1 = sharded.query_id(a).expect("open");
    let q2 = restored.query_id(a).expect("open");
    let mut r1 = StdRng::seed_from_u64(29);
    let mut r2 = StdRng::seed_from_u64(29);
    for _ in 0..25 {
        assert_eq!(q1.sample(&mut r1), q2.sample(&mut r2));
    }
    assert_eq!(q1.reconstruct(), q2.reconstruct());
    let (batch1, _) = sharded.query_batch_ids(&[a], 3, 2);
    let (batch2, _) = restored.query_batch_ids(&[a], 3, 2);
    assert_eq!(batch1, batch2);
}

/// Batch scatter-gather serves a mixed bag of filters, deterministic
/// across thread counts, with typed per-slot failures.
#[test]
fn sharded_batches_fan_out_with_typed_errors() {
    let sharded = ShardedBstSystem::builder(20_000)
        .shards(4)
        .expected_set_size(200)
        .seed(13)
        .build();
    let mut filters: Vec<_> = (0..10)
        .map(|i| sharded.store((0..50u64).map(|j| (i * 911 + j * 23) % 20_000)))
        .collect();
    filters.insert(4, sharded.store(std::iter::empty()));
    let (results, stats) = sharded.query_batch(&filters, 21, 3);
    assert_eq!(results.len(), filters.len());
    assert_eq!(results[4], Err(BstError::EmptyFilter));
    for (i, (f, r)) in filters.iter().zip(&results).enumerate() {
        if i != 4 {
            assert!(f.contains(r.expect("sample")), "slot {i}");
        }
    }
    assert!(stats.total_ops() > 0);
    for threads in [1, 2, 8] {
        let (again, _) = sharded.query_batch(&filters, 21, threads);
        assert_eq!(results, again, "threads = {threads}");
    }
}

/// The engine-level persistent weight cache is invisible in batch
/// output: across a schedule of store churn and occupancy churn, every
/// `query_batch` / `query_batch_ids` result on a cache-enabled engine is
/// byte-identical to the cache-bypass path — warm (repeated), repaired
/// (post-churn) and cold alike — while the cache measurably serves hits.
#[test]
fn batch_outputs_identical_with_weight_cache_on_and_off() {
    let namespace = 20_000u64;
    let build = || {
        ShardedBstSystem::builder(namespace)
            .shards(4)
            .expected_set_size(200)
            .seed(17)
            .occupied((0..namespace).step_by(2))
            .build()
    };
    let cached = build();
    let bypass = build();
    bypass.set_weight_cache(false);

    let filters: Vec<_> = (0..12)
        .map(|i| cached.store((0..80u64).map(|j| (i * 1_213 + j * 37) % namespace)))
        .collect();
    let keysets: Vec<Vec<u64>> = (0..4u64)
        .map(|i| (0..60u64).map(|j| (i * 773 + j * 41) % namespace).collect())
        .collect();
    let ids_cached: Vec<_> = keysets
        .iter()
        .map(|k| cached.create(k.iter().copied()).expect("create"))
        .collect();
    let ids_bypass: Vec<_> = keysets
        .iter()
        .map(|k| bypass.create(k.iter().copied()).expect("create"))
        .collect();

    // Mutation schedule: (occupancy toggle, set churn) between batches.
    type Round = (Option<u64>, Option<(usize, u64)>);
    let schedule: &[Round] = &[
        (None, None),                  // repeat: pure warm hits
        (Some(4_001), None),           // occupancy churn: journal repair
        (None, Some((1, 9_999))),      // set churn: targeted re-weigh
        (Some(4_001), Some((2, 123))), // both at once
        (None, None),                  // warm again
    ];
    for (round, (occ, churn)) in schedule.iter().enumerate() {
        if let Some(id) = occ {
            cached.insert_occupied(*id).expect("insert");
            cached.remove_occupied(*id).expect("remove");
            bypass.insert_occupied(*id).expect("insert");
            bypass.remove_occupied(*id).expect("remove");
        }
        if let Some((set, key)) = churn {
            cached.insert_keys(ids_cached[*set], [*key]).expect("keys");
            bypass.insert_keys(ids_bypass[*set], [*key]).expect("keys");
        }
        for threads in [1, 3] {
            let seed = 31 + round as u64;
            let (rc, _) = cached.query_batch(&filters, seed, threads);
            let (rb, _) = bypass.query_batch(&filters, seed, threads);
            assert_eq!(rc, rb, "detached batch, round {round}, threads {threads}");
            let (rc, _) = cached.query_batch_ids(&ids_cached, seed, threads);
            let (rb, _) = bypass.query_batch_ids(&ids_bypass, seed, threads);
            assert_eq!(rc, rb, "stored batch, round {round}, threads {threads}");
        }
    }
    let stats = cached.weight_cache_stats();
    assert!(stats.hits > 0, "the schedule must exercise warm serving");
    assert!(
        stats.repairs > 0,
        "the schedule must exercise journal repair"
    );
    assert_eq!(
        bypass.weight_cache_stats(),
        Default::default(),
        "the bypass engine never touches its cache"
    );
}
