//! End-to-end coverage of the query-handle facade: handle reuse agrees
//! with one-shot calls, every `BstError` variant is reachable, and the
//! `Arc`-shared system serves multiple threads.

use bloomsampletree::core::sampler::{BstSampler, Correction, SamplerConfig};
use bloomsampletree::{
    BloomFilter, BstConfig, BstError, BstSystem, OpStats, PrunedBloomSampleTree, SampleTree,
};
use bst_bloom::bitvec::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn system() -> BstSystem {
    BstSystem::builder(50_000)
        .expected_set_size(400)
        .seed(404)
        .build()
}

#[test]
fn handle_reuse_matches_one_shot_calls() {
    // A warm handle must return exactly what a chain of fresh handles
    // would for the same RNG stream: caching only skips filter work, it
    // never changes routing or leaf picks.
    for cfg in [BstConfig::default(), BstConfig::corrected()] {
        let sys = BstSystem::builder(50_000)
            .expected_set_size(400)
            .seed(404)
            .config(cfg)
            .build();
        let keys: Vec<u64> = (0..400u64).map(|i| (i * 113 + 5) % 50_000).collect();
        let f = sys.store(keys.iter().copied());
        let reused = sys.query(&f);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        for round in 0..60 {
            let warm = reused.sample(&mut rng_a);
            let cold = sys.query(&f).sample(&mut rng_b);
            assert_eq!(warm, cold, "round {round}");
        }
        // Reconstruction through the warm handle equals a fresh handle's.
        assert_eq!(reused.reconstruct(), sys.query(&f).reconstruct());
    }
}

#[test]
fn handle_amortizes_mixed_workload() {
    let sys = system();
    let keys: Vec<u64> = (0..300u64).map(|i| i * 61 % 50_000).collect();
    let f = sys.store(keys.iter().copied());
    let q = sys.query(&f);
    let mut rng = StdRng::seed_from_u64(2);

    // Cold phase: one of each operation.
    q.sample(&mut rng).expect("sample");
    q.sample_many(20, &mut rng).expect("sample_many");
    q.reconstruct().expect("reconstruct");
    let cold = q.take_stats();

    // Warm phase: the same workload again — the reconstruction walked the
    // full live frontier, so everything is cached.
    q.sample(&mut rng).expect("sample");
    q.sample_many(20, &mut rng).expect("sample_many");
    q.reconstruct().expect("reconstruct");
    let warm = q.take_stats();

    // Sampler evaluations and reconstruction liveness are separate cache
    // namespaces (their pruning rules can differ), so the warm pass may
    // still evaluate a handful of nodes — but never re-scan leaves.
    assert!(
        warm.total_ops() * 20 < cold.total_ops(),
        "warm workload ({} ops) should be a small fraction of cold ({} ops)",
        warm.total_ops(),
        cold.total_ops()
    );
    assert_eq!(
        warm.memberships, 0,
        "leaf scans are shared and fully cached"
    );
}

#[test]
fn error_empty_filter() {
    let sys = system();
    let empty = sys.store(std::iter::empty());
    let q = sys.query(&empty);
    let mut rng = StdRng::seed_from_u64(3);
    assert_eq!(q.sample(&mut rng), Err(BstError::EmptyFilter));
    assert_eq!(q.sample_many(5, &mut rng), Err(BstError::EmptyFilter));
    assert_eq!(q.reconstruct(), Err(BstError::EmptyFilter));
}

#[test]
fn error_incompatible_filter() {
    let sys = system();
    let foreign_sys = BstSystem::builder(50_000)
        .expected_set_size(400)
        .seed(777) // different hash family seed
        .build();
    let foreign = foreign_sys.store([1u64, 2, 3]);
    let q = sys.query(&foreign);
    let mut rng = StdRng::seed_from_u64(4);
    assert_eq!(q.sample(&mut rng), Err(BstError::IncompatibleFilter));
    assert_eq!(q.reconstruct(), Err(BstError::IncompatibleFilter));
}

/// A "ghost" filter: enough bits to pass liveness checks against dense
/// tree nodes, but no namespace element has *all* its bits — so every
/// leaf scan comes up empty.
fn ghost_filter(sys: &BstSystem) -> BloomFilter {
    let tree = sys.tree();
    let hasher = tree.hasher();
    let m = hasher.m();
    let mut bits = BitVec::new(m);
    for (x, skip) in [(42u64, 2usize), (999u64, 0usize)] {
        for i in 0..hasher.k() {
            if i != skip {
                bits.set(hasher.position(x, i));
            }
        }
    }
    let ghost = BloomFilter::from_parts(bits, Arc::clone(hasher));
    assert!(!ghost.is_empty());
    ghost
}

/// Tiny-m system: every node filter is saturated (m ≈ 740 bits holding
/// 1024-element leaves), so descents reach leaves instead of being pruned
/// early.
fn saturated_system(cfg: BstConfig) -> BstSystem {
    BstSystem::builder(4096)
        .accuracy(0.2)
        .expected_set_size(250)
        .depth(2)
        .seed(11)
        .config(cfg)
        .build()
}

#[test]
fn error_no_live_leaf() {
    let sys = saturated_system(BstConfig::default());
    let ghost = ghost_filter(&sys);
    // Sanity: no namespace element is a positive of the ghost filter.
    assert!((0..4096u64).all(|x| !ghost.contains(x)));
    let q = sys.query(&ghost);
    let mut rng = StdRng::seed_from_u64(5);
    assert_eq!(q.sample(&mut rng), Err(BstError::NoLiveLeaf));
}

#[test]
fn error_budget_exhausted() {
    // Corrected sampling on the same ghost filter: proposals keep
    // reaching (saturated, hence live-looking) leaves whose scans find
    // nothing, so the rejection budget runs dry.
    let sys = saturated_system(BstConfig::corrected());
    let ghost = ghost_filter(&sys);
    let q = sys.query(&ghost);
    let mut rng = StdRng::seed_from_u64(6);
    match q.sample(&mut rng) {
        Err(BstError::BudgetExhausted { attempts }) => assert!(attempts > 0),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn error_empty_tree() {
    // A pruned tree over an empty occupied set has no root; the sampler
    // layer reports it as such.
    let plan = bst_bloom::params::TreePlan {
        namespace: 4096,
        m: 1 << 14,
        k: 3,
        kind: bst_bloom::hash::HashKind::Murmur3,
        seed: 9,
        depth: 4,
        leaf_capacity: 256,
        target_accuracy: 0.9,
    };
    let tree = PrunedBloomSampleTree::empty(&plan);
    let q = tree.query_filter([1u64, 2, 3]);
    let sampler = BstSampler::new(&tree);
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = OpStats::new();
    assert_eq!(
        sampler.try_sample(&q, &mut rng, &mut stats),
        Err(BstError::EmptyTree)
    );
}

#[test]
fn error_invalid_config() {
    // The typed path: try_build reports the broken invariant by name.
    let bad = BstConfig::default().with_sampler(SamplerConfig {
        correction: Correction::Rejection { gamma: 0.5 },
        ..SamplerConfig::default()
    });
    match BstSystem::builder(50_000).config(bad).try_build() {
        Err(BstError::InvalidConfig(what)) => assert!(what.contains("gamma")),
        other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
    }
    // The panicking assertions at sampler construction are kept from the
    // old API for direct BstSampler users.
    let sys = system();
    let result = std::panic::catch_unwind(|| {
        let view = sys.tree().read();
        let _ = BstSampler::with_config(
            &view,
            SamplerConfig {
                correction: Correction::Rejection { gamma: 0.5 },
                ..SamplerConfig::default()
            },
        );
    });
    assert!(result.is_err(), "gamma < 1 must be rejected");
}

#[test]
fn system_clone_shares_tree_across_threads() {
    let sys = system();
    let keys: Vec<u64> = (0..200u64).map(|i| i * 17).collect();
    let f = sys.store(keys.iter().copied());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let sys = sys.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let q = sys.query(&f);
                let mut rng = StdRng::seed_from_u64(100 + t);
                let mut picks = Vec::new();
                for _ in 0..50 {
                    picks.push(q.sample(&mut rng).expect("sample"));
                }
                (picks, q.reconstruct().expect("reconstruct"))
            })
        })
        .collect();
    let mut reconstructions = Vec::new();
    for h in handles {
        let (picks, rec) = h.join().expect("thread");
        for p in picks {
            assert!(f.contains(p));
        }
        reconstructions.push(rec);
    }
    // Every thread reconstructed the same set from the same shared tree.
    for rec in &reconstructions[1..] {
        assert_eq!(rec, &reconstructions[0]);
    }
}

#[test]
fn one_query_handle_shared_across_threads() {
    let sys = system();
    let keys: Vec<u64> = (0..150u64).map(|i| i * 37).collect();
    let f = sys.store(keys.iter().copied());
    let q = sys.query(&f);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let q = &q;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + t);
                for _ in 0..30 {
                    let s = q.sample(&mut rng).expect("sample");
                    assert!(q.filter().contains(s));
                }
            });
        }
    });
    // All 120 samples accounted for in the shared stats.
    assert!(q.stats().total_ops() > 0);
    assert!(q.cached_evals() > 0);
}

#[test]
fn query_batch_end_to_end() {
    let sys = system();
    let mut filters: Vec<_> = (0..24)
        .map(|i| sys.store((0..60u64).map(|j| (i * 641 + j * 19) % 50_000)))
        .collect();
    filters.push(sys.store(std::iter::empty()));
    let (results, stats) = sys.query_batch(&filters, 77, 0);
    assert_eq!(results.len(), 25);
    for (i, (f, r)) in filters.iter().zip(&results).enumerate() {
        if i == 24 {
            assert_eq!(*r, Err(BstError::EmptyFilter));
        } else {
            assert!(f.contains(r.expect("sample")), "filter {i}");
        }
    }
    assert!(stats.total_ops() > 0);
}
