//! Thread-based stress: concurrent occupancy mutators against warm
//! `Query`/`ShardQuery` handles. The bar — a reader must **never
//! observe a superseded weight**: any weight returned after a mutation
//! was published carries a tree-generation stamp at least as new as
//! every generation the reader saw before asking (the stamps force the
//! repair/re-descent path; a stale cached weight slipping through would
//! surface here as a stamp regression). Runs in release in CI (the
//! `test` job runs `cargo test --release`); ignored under debug builds.

use bloomsampletree::{BstSystem, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MUTATIONS_PER_THREAD: u64 = 400;
const READS_PER_THREAD: u64 = 800;

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release (CI does)")]
fn concurrent_mutators_never_yield_superseded_weights_single() {
    let namespace = 16_384u64;
    let sys = BstSystem::builder(namespace)
        .expected_set_size(200)
        .seed(3)
        .pruned((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..400u64).map(|i| i * 41 % namespace).collect();
    let filter = sys.store(keys.iter().copied());
    let warm = sys.query(&filter);
    warm.live_weight().expect("prime");

    std::thread::scope(|scope| {
        for m in 0..2u64 {
            let sys = sys.clone();
            scope.spawn(move || {
                // Disjoint odd ids per mutator: every op really mutates.
                for i in 0..MUTATIONS_PER_THREAD {
                    let id = (((i * 4 + m * 2 + 1) * 7) % namespace) | 1;
                    sys.insert_occupied(id).expect("insert");
                    sys.remove_occupied(id).expect("remove");
                }
            });
        }
        for r in 0..2u64 {
            let sys = sys.clone();
            let warm = &warm;
            let filter = &filter;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + r);
                let mut last_stamp = 0u64;
                for i in 0..READS_PER_THREAD {
                    let gen_before = sys.tree_generation();
                    let (outcome, _set_gen, tree_gen) = warm.live_weight_stamped();
                    let weight = outcome.expect("weight");
                    assert!(
                        tree_gen >= gen_before,
                        "superseded weight: stamped {tree_gen} < observed {gen_before}"
                    );
                    assert!(tree_gen >= last_stamp, "stamps must be monotonic");
                    last_stamp = tree_gen;
                    assert!(weight >= 1, "the even ids never leave the tree");
                    if i % 8 == 0 {
                        let s = warm.sample(&mut rng).expect("sample");
                        assert!(filter.contains(s), "non-positive sample {s}");
                    }
                }
            });
        }
    });

    // Quiescent: the warm handle, a cold handle, and the maintained
    // weights must all agree exactly.
    let cold = sys.query(&filter);
    assert_eq!(warm.live_weight(), cold.live_weight());
    assert_eq!(warm.reconstruct(), cold.reconstruct());
    assert!(sys.weights_consistent());
    assert_eq!(sys.occupied_count(), namespace / 2, "all churn was toggles");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release (CI does)")]
fn concurrent_mutators_never_yield_superseded_weights_sharded() {
    let namespace = 16_384u64;
    let engine = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(5)
        .occupied((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..400u64).map(|i| i * 37 % namespace).collect();
    let filter = engine.store(keys.iter().copied());
    let warm = engine.query(&filter);
    warm.live_weight().expect("prime");

    std::thread::scope(|scope| {
        for m in 0..2u64 {
            let engine = engine.clone();
            scope.spawn(move || {
                for i in 0..MUTATIONS_PER_THREAD {
                    let id = (((i * 4 + m * 2 + 1) * 11) % namespace) | 1;
                    engine.insert_occupied(id).expect("insert");
                    engine.remove_occupied(id).expect("remove");
                }
            });
        }
        for r in 0..2u64 {
            let engine = engine.clone();
            let warm = &warm;
            let filter = &filter;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + r);
                for i in 0..READS_PER_THREAD {
                    let before: Vec<u64> = engine
                        .shard_systems()
                        .iter()
                        .map(|s| s.tree_generation())
                        .collect();
                    let weight = warm.live_weight().expect("weight");
                    assert!(weight >= 1, "the even ids never leave the engine");
                    // Every per-shard stamp the weight was served under
                    // must be at least as new as the generations observed
                    // before the call.
                    for (handle, b) in warm.shard_handles().iter().zip(&before) {
                        let stamp = handle.tree_generation();
                        assert!(
                            stamp >= *b,
                            "superseded shard weight: stamped {stamp} < observed {b}"
                        );
                    }
                    if i % 8 == 0 {
                        let s = warm.sample(&mut rng).expect("sample");
                        assert!(filter.contains(s), "non-positive sample {s}");
                    }
                }
            });
        }
    });

    let cold = engine.query(&filter);
    assert_eq!(warm.live_weight(), cold.live_weight());
    assert_eq!(warm.reconstruct(), cold.reconstruct());
    assert!(engine.weights_consistent());
    assert_eq!(engine.occupied_count(), namespace / 2);
}
