//! Thread-based stress: concurrent occupancy mutators against warm
//! `Query`/`ShardQuery` handles **and the engine-level persistent
//! weight cache**. The bar — a reader must **never observe a superseded
//! weight**: any weight returned after a mutation was published carries
//! a tree-generation stamp at least as new as every generation the
//! reader saw before asking (the stamps force the repair/re-descend
//! path; a stale cached weight slipping through would surface here as a
//! stamp regression), and the engine cache's cells only ever move
//! forward in stamp order. Every scenario runs under both filter
//! layouts (classic `Murmur3` and cache-line `DeltaBlocked`): the
//! repair/stamp machinery is layout-independent and must stay so. Runs
//! in release in CI (the `test` job runs `cargo test --release`);
//! ignored under debug builds.

use bloomsampletree::{BstSystem, HashKind, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MUTATIONS_PER_THREAD: u64 = 400;
const READS_PER_THREAD: u64 = 800;

fn concurrent_mutators_never_yield_superseded_weights_single_with(kind: HashKind) {
    let namespace = 16_384u64;
    let sys = BstSystem::builder(namespace)
        .expected_set_size(200)
        .seed(3)
        .hash_kind(kind)
        .pruned((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..400u64).map(|i| i * 41 % namespace).collect();
    let filter = sys.store(keys.iter().copied());
    let warm = sys.query(&filter);
    warm.live_weight().expect("prime");

    std::thread::scope(|scope| {
        for m in 0..2u64 {
            let sys = sys.clone();
            scope.spawn(move || {
                // Disjoint odd ids per mutator: every op really mutates.
                for i in 0..MUTATIONS_PER_THREAD {
                    let id = (((i * 4 + m * 2 + 1) * 7) % namespace) | 1;
                    sys.insert_occupied(id).expect("insert");
                    sys.remove_occupied(id).expect("remove");
                }
            });
        }
        for r in 0..2u64 {
            let sys = sys.clone();
            let warm = &warm;
            let filter = &filter;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + r);
                let mut last_stamp = 0u64;
                for i in 0..READS_PER_THREAD {
                    let gen_before = sys.tree_generation();
                    let (outcome, _set_gen, tree_gen) = warm.live_weight_stamped();
                    let weight = outcome.expect("weight");
                    assert!(
                        tree_gen >= gen_before,
                        "superseded weight: stamped {tree_gen} < observed {gen_before}"
                    );
                    assert!(tree_gen >= last_stamp, "stamps must be monotonic");
                    last_stamp = tree_gen;
                    assert!(weight >= 1, "the even ids never leave the tree");
                    if i % 8 == 0 {
                        let s = warm.sample(&mut rng).expect("sample");
                        assert!(filter.contains(s), "non-positive sample {s}");
                    }
                }
            });
        }
    });

    // Quiescent: the warm handle, a cold handle, and the maintained
    // weights must all agree exactly.
    let cold = sys.query(&filter);
    assert_eq!(warm.live_weight(), cold.live_weight());
    assert_eq!(warm.reconstruct(), cold.reconstruct());
    assert!(sys.weights_consistent());
    assert_eq!(sys.occupied_count(), namespace / 2, "all churn was toggles");
}

fn concurrent_mutators_never_yield_superseded_weights_sharded_with(kind: HashKind) {
    let namespace = 16_384u64;
    let engine = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(5)
        .hash_kind(kind)
        .occupied((0..namespace).step_by(2))
        .build();
    let keys: Vec<u64> = (0..400u64).map(|i| i * 37 % namespace).collect();
    let filter = engine.store(keys.iter().copied());
    let warm = engine.query(&filter);
    warm.live_weight().expect("prime");

    std::thread::scope(|scope| {
        for m in 0..2u64 {
            let engine = engine.clone();
            scope.spawn(move || {
                for i in 0..MUTATIONS_PER_THREAD {
                    let id = (((i * 4 + m * 2 + 1) * 11) % namespace) | 1;
                    engine.insert_occupied(id).expect("insert");
                    engine.remove_occupied(id).expect("remove");
                }
            });
        }
        for r in 0..2u64 {
            let engine = engine.clone();
            let warm = &warm;
            let filter = &filter;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + r);
                for i in 0..READS_PER_THREAD {
                    let before: Vec<u64> = engine
                        .shard_systems()
                        .iter()
                        .map(|s| s.tree_generation())
                        .collect();
                    let weight = warm.live_weight().expect("weight");
                    assert!(weight >= 1, "the even ids never leave the engine");
                    // Every per-shard stamp the weight was served under
                    // must be at least as new as the generations observed
                    // before the call.
                    for (handle, b) in warm.shard_handles().iter().zip(&before) {
                        let stamp = handle.tree_generation();
                        assert!(
                            stamp >= *b,
                            "superseded shard weight: stamped {stamp} < observed {b}"
                        );
                    }
                    if i % 8 == 0 {
                        let s = warm.sample(&mut rng).expect("sample");
                        assert!(filter.contains(s), "non-positive sample {s}");
                    }
                }
            });
        }
    });

    let cold = engine.query(&filter);
    assert_eq!(warm.live_weight(), cold.live_weight());
    assert_eq!(warm.reconstruct(), cold.reconstruct());
    assert!(engine.weights_consistent());
    assert_eq!(engine.occupied_count(), namespace / 2);
}

fn engine_weight_cache_never_serves_superseded_weights_with(kind: HashKind) {
    let namespace = 16_384u64;
    let engine = ShardedBstSystem::builder(namespace)
        .shards(4)
        .expected_set_size(200)
        .seed(7)
        .hash_kind(kind)
        .occupied((0..namespace).step_by(2))
        .build();
    let ids: Vec<_> = (0..3u64)
        .map(|i| {
            engine
                .create((0..300u64).map(|j| ((i * 1_009 + j * 53) % namespace) & !1))
                .expect("create")
        })
        .collect();
    let filters: Vec<_> = (0..3u64)
        .map(|i| engine.store((0..200u64).map(|j| ((i * 733 + j * 59) % namespace) & !1)))
        .collect();
    // Prime the cache so readers start from warm entries.
    engine.query_batch_ids(&ids, 1, 2);
    engine.query_batch(&filters, 1, 2);

    std::thread::scope(|scope| {
        for m in 0..2u64 {
            let engine = engine.clone();
            scope.spawn(move || {
                // Odd ids only: the stored keys and filter members (all
                // even) never leave the occupancy, so every batch slot
                // stays answerable throughout.
                for i in 0..MUTATIONS_PER_THREAD {
                    let id = (((i * 4 + m * 2 + 1) * 13) % namespace) | 1;
                    engine.insert_occupied(id).expect("insert");
                    engine.remove_occupied(id).expect("remove");
                }
            });
        }
        for r in 0..2u64 {
            let engine = engine.clone();
            let ids = &ids;
            let filters = &filters;
            scope.spawn(move || {
                // Per-(key, shard) stamps must be monotone across the
                // whole run: the cache's merge rule forbids any fill or
                // repair from regressing a cell.
                let mut last: Vec<Vec<(u64, u64)>> = vec![vec![(0, 0); 4]; ids.len()];
                for i in 0..READS_PER_THREAD / 4 {
                    let seed = r * 10_000 + i;
                    let (results, _) = engine.query_batch_ids(ids, seed, 2);
                    for (slot, res) in results.iter().enumerate() {
                        let s = res.expect("stored slots stay answerable");
                        assert!(
                            engine.get(ids[slot]).expect("get").contains(s),
                            "non-positive batch sample {s}"
                        );
                    }
                    let (results, _) = engine.query_batch(filters, seed, 2);
                    for (slot, res) in results.iter().enumerate() {
                        let s = res.expect("filter slots stay answerable");
                        assert!(filters[slot].contains(s), "non-positive {s}");
                    }
                    for (slot, id) in ids.iter().enumerate() {
                        let Some(cells) = engine.cached_weights(*id) else {
                            continue;
                        };
                        for (shard, cell) in cells.iter().enumerate() {
                            let Some(cell) = cell else { continue };
                            let seen = &mut last[slot][shard];
                            assert!(
                                cell.set_generation >= seen.0 && cell.tree_generation >= seen.1,
                                "cache stamp regression on set {slot} shard {shard}: \
                                 ({}, {}) after ({}, {})",
                                cell.set_generation,
                                cell.tree_generation,
                                seen.0,
                                seen.1
                            );
                            *seen = (cell.set_generation, cell.tree_generation);
                        }
                    }
                }
            });
        }
    });

    // Quiescent: every fresh cached cell agrees exactly with a cold
    // recount, and cached batches equal bypassed batches.
    let (with_cache_f, _) = engine.query_batch(&filters, 99, 2);
    let (with_cache_i, _) = engine.query_batch_ids(&ids, 99, 2);
    for id in &ids {
        let cells = engine.cached_weights(*id).expect("primed entry");
        let handle = engine.query_id(*id).expect("open");
        for (shard, cell) in cells.iter().enumerate() {
            let Some(cell) = cell else { continue };
            let sys = &engine.shard_systems()[shard];
            let fid = handle.shard_handles()[shard].filter_id().expect("stored");
            if cell.set_generation == sys.filters().generation(fid).expect("gen")
                && cell.tree_generation == sys.tree_generation()
            {
                assert_eq!(
                    cell.outcome,
                    sys.live_weight_stamped(&sys.get(fid).expect("project")).0,
                    "fresh cached cell disagrees with recount (shard {shard})"
                );
            }
        }
    }
    engine.set_weight_cache(false);
    let (bypass_f, _) = engine.query_batch(&filters, 99, 2);
    let (bypass_i, _) = engine.query_batch_ids(&ids, 99, 2);
    assert_eq!(with_cache_f, bypass_f);
    assert_eq!(with_cache_i, bypass_i);
}

macro_rules! both_layouts {
    ($classic:ident, $blocked:ident, $body:ident) => {
        #[test]
        #[cfg_attr(debug_assertions, ignore = "slow: run under --release (CI does)")]
        fn $classic() {
            $body(HashKind::Murmur3);
        }
        #[test]
        #[cfg_attr(debug_assertions, ignore = "slow: run under --release (CI does)")]
        fn $blocked() {
            $body(HashKind::DeltaBlocked);
        }
    };
}

both_layouts!(
    concurrent_mutators_never_yield_superseded_weights_single_classic,
    concurrent_mutators_never_yield_superseded_weights_single_blocked,
    concurrent_mutators_never_yield_superseded_weights_single_with
);
both_layouts!(
    concurrent_mutators_never_yield_superseded_weights_sharded_classic,
    concurrent_mutators_never_yield_superseded_weights_sharded_blocked,
    concurrent_mutators_never_yield_superseded_weights_sharded_with
);
both_layouts!(
    engine_weight_cache_never_serves_superseded_weights_classic,
    engine_weight_cache_never_serves_superseded_weights_blocked,
    engine_weight_cache_never_serves_superseded_weights_with
);
