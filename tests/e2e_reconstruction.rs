//! End-to-end reconstruction: the three methods must agree on the positive
//! set, and the accuracy model must predict the false-positive volume.

use bloomsampletree::core::baselines::{dictionary, hashinvert};
use bloomsampletree::core::reconstruct::ReconstructConfig;
use bloomsampletree::{BstReconstructor, BstSystem, HashKind, OpStats};
use bst_workloads::querysets::{clustered_set, uniform_set};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NAMESPACE: u64 = 100_000;

#[test]
fn three_methods_agree_exactly() {
    let system = BstSystem::builder(NAMESPACE)
        .hash_kind(HashKind::Simple)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(20)
        .build();
    let mut rng = StdRng::seed_from_u64(21);
    for keys in [
        uniform_set(&mut rng, NAMESPACE, 800),
        clustered_set(&mut rng, NAMESPACE, 800, 10.0),
    ] {
        let q = system.store(keys.iter().copied());
        let mut s = OpStats::new();
        let bst = BstReconstructor::new(&system.tree().read()).reconstruct(&q, &mut s);
        let hi = hashinvert::hi_reconstruct(&q, &mut s);
        let da = dictionary::da_reconstruct(&q, NAMESPACE, &mut s);
        assert_eq!(bst, da, "sound BST != DictionaryAttack");
        assert_eq!(hi, da, "HashInvert != DictionaryAttack");
    }
}

#[test]
fn false_positive_volume_matches_model() {
    let system = BstSystem::builder(NAMESPACE)
        .accuracy(0.8)
        .expected_set_size(1000)
        .seed(22)
        .build();
    let mut rng = StdRng::seed_from_u64(23);
    let keys = uniform_set(&mut rng, NAMESPACE, 1000);
    let q = system.store(keys.iter().copied());
    let rec = system.query(&q).reconstruct().expect("reconstruct");
    let fp = rec.len() - keys.len();
    // acc = n / (n + fp) should be near the 0.8 target:
    let measured_acc = keys.len() as f64 / rec.len() as f64;
    assert!(
        (measured_acc - 0.8).abs() < 0.08,
        "measured accuracy {measured_acc}, {fp} false positives"
    );
}

#[test]
fn paper_pruning_trades_recall_for_work() {
    let system = BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(24)
        .build();
    let mut rng = StdRng::seed_from_u64(25);
    let keys = uniform_set(&mut rng, NAMESPACE, 1000);
    let q = system.store(keys.iter().copied());

    let mut sound_stats = OpStats::new();
    let sound = BstReconstructor::new(&system.tree().read()).reconstruct(&q, &mut sound_stats);
    let mut paper_stats = OpStats::new();
    let paper = BstReconstructor::with_config(&system.tree().read(), ReconstructConfig::paper())
        .reconstruct(&q, &mut paper_stats);

    // Sound mode recovers everything.
    for k in &keys {
        assert!(sound.binary_search(k).is_ok());
    }
    // Paper mode does no more membership work, and what it returns is a
    // subset of the sound answer.
    assert!(paper_stats.memberships <= sound_stats.memberships);
    for x in &paper {
        assert!(sound.binary_search(x).is_ok());
    }
}

#[test]
fn reconstruction_of_dense_filters_uses_unset_mode() {
    // A deliberately small filter forces density > 1/2 so HashInvert's
    // complement trick engages; the result must still equal the scan.
    let system = BstSystem::builder(20_000)
        .hash_kind(HashKind::Simple)
        .accuracy(0.5)
        .expected_set_size(4000)
        .seed(26)
        .build();
    let mut rng = StdRng::seed_from_u64(27);
    let keys = uniform_set(&mut rng, 20_000, 4000);
    let q = system.store(keys.iter().copied());
    assert!(q.fill_ratio() > 0.5, "fill {:.2}", q.fill_ratio());
    let mut stats = OpStats::new();
    let hi = hashinvert::hi_reconstruct(&q, &mut stats);
    assert_eq!(stats.memberships, 0, "dense mode needs no memberships");
    let da = dictionary::da_reconstruct(&q, 20_000, &mut stats);
    assert_eq!(hi, da);
}

#[test]
fn empty_and_singleton_sets() {
    use bloomsampletree::BstError;
    let system = BstSystem::builder(10_000).seed(28).build();
    let empty = system.store(std::iter::empty());
    assert_eq!(
        system.query(&empty).reconstruct(),
        Err(BstError::EmptyFilter)
    );
    let single = system.store([4321u64]);
    let rec = system.query(&single).reconstruct().expect("reconstruct");
    assert!(rec.binary_search(&4321).is_ok());
}
