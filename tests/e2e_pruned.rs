//! End-to-end low-occupancy pipeline (§8): occupancy generation → synthetic
//! social stream → pruned tree → sampling/reconstruction, plus dynamic
//! growth.

use bloomsampletree::HashKind;
use bloomsampletree::{
    BstReconstructor, BstSampler, OpStats, PrunedBloomSampleTree, SampleTree, TreePlan,
};
use bst_bloom::params::leaf_size;
use bst_workloads::occupancy::{clustered_occupancy, uniform_occupancy};
use bst_workloads::social::{SocialConfig, SocialStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan(namespace: u64) -> TreePlan {
    TreePlan {
        namespace,
        m: 30_000,
        k: 3,
        kind: HashKind::Murmur3,
        seed: 30,
        depth: 8,
        leaf_capacity: leaf_size(namespace, 8),
        target_accuracy: 0.8,
    }
}

#[test]
fn social_pipeline_end_to_end() {
    let cfg = SocialConfig::tiny();
    let mut rng = StdRng::seed_from_u64(31);
    let occ = uniform_occupancy(&mut rng, cfg.namespace, 256, 0.4);
    let stream = SocialStream::generate(cfg.clone(), &occ);
    let tree = PrunedBloomSampleTree::build(&plan(cfg.namespace), stream.users());
    assert_eq!(tree.occupied_count() as usize, cfg.users);

    let sampler = BstSampler::new(&tree);
    let mut stats = OpStats::new();
    for tag in 0..5usize {
        let audience = stream.audience(tag);
        let q = tree.query_filter(audience.iter().copied());
        // Sample a member (typed-error path works on pruned trees too).
        let s = sampler
            .try_sample(&q, &mut rng, &mut stats)
            .expect("sample");
        assert!(q.contains(s));
        // Samples come from occupied ids only.
        assert!(stream.users().binary_search(&s).is_ok());
        // Reconstruct the audience.
        let mut rstats = OpStats::new();
        let rec = BstReconstructor::new(&tree).reconstruct(&q, &mut rstats);
        for member in &audience {
            assert!(rec.binary_search(member).is_ok(), "lost member {member}");
        }
    }
}

#[test]
fn lower_occupancy_means_less_memory_and_better_accuracy() {
    let cfg = SocialConfig::tiny();
    let mut results = Vec::new();
    for fraction in [0.2f64, 0.8] {
        let mut rng = StdRng::seed_from_u64(32);
        let occ = uniform_occupancy(&mut rng, cfg.namespace, 256, fraction);
        let stream = SocialStream::generate(cfg.clone(), &occ);
        let tree = PrunedBloomSampleTree::build(&plan(cfg.namespace), stream.users());
        let audience = stream.audience(0);
        let q = tree.query_filter(audience.iter().copied());
        let sampler = BstSampler::new(&tree);
        // Repeated draws of one audience share a memo (the production
        // serving shape); soundness and accuracy must be unchanged.
        let mut memo = bloomsampletree::QueryMemo::new();
        let (mut trues, mut total) = (0u64, 0u64);
        let mut stats = OpStats::new();
        for _ in 0..300 {
            if let Ok(s) = sampler.try_sample_memo(&q, &mut memo, &mut rng, &mut stats) {
                total += 1;
                if audience.binary_search(&s).is_ok() {
                    trues += 1;
                }
            }
        }
        results.push((tree.memory_bytes(), trues as f64 / total.max(1) as f64));
    }
    let (mem_low, _acc_low) = results[0];
    let (mem_high, _acc_high) = results[1];
    assert!(
        mem_low < mem_high,
        "memory at 0.2 ({mem_low}) must undercut 0.8 ({mem_high})"
    );
}

#[test]
fn clustered_occupancy_builds_fewer_nodes() {
    let cfg = SocialConfig::tiny();
    let mut rng = StdRng::seed_from_u64(33);
    let uni = uniform_occupancy(&mut rng, cfg.namespace, 256, 0.3);
    let clu = clustered_occupancy(&mut rng, cfg.namespace, 256, 0.3);
    let s_uni = SocialStream::generate(cfg.clone(), &uni);
    let s_clu = SocialStream::generate(cfg.clone(), &clu);
    let t_uni = PrunedBloomSampleTree::build(&plan(cfg.namespace), s_uni.users());
    let t_clu = PrunedBloomSampleTree::build(&plan(cfg.namespace), s_clu.users());
    // Clustered leaves share ancestors: fewer materialised nodes (Fig 14's
    // "memory requirement smaller for a clustered namespace").
    assert!(
        t_clu.node_count() <= t_uni.node_count(),
        "clustered {} > uniform {}",
        t_clu.node_count(),
        t_uni.node_count()
    );
}

#[test]
fn dynamic_growth_tracks_new_signups() {
    let cfg = SocialConfig::tiny();
    let mut rng = StdRng::seed_from_u64(34);
    let occ = uniform_occupancy(&mut rng, cfg.namespace, 256, 0.5);
    let stream = SocialStream::generate(cfg.clone(), &occ);
    let (first, rest) = stream.users().split_at(cfg.users / 2);
    let mut tree = PrunedBloomSampleTree::build(&plan(cfg.namespace), first);
    let nodes_before = tree.node_count();
    for &id in rest {
        assert!(tree.insert(id));
    }
    assert!(tree.node_count() >= nodes_before);
    assert_eq!(tree.occupied_count() as usize, cfg.users);
    // Queries over the grown tree behave like a batch-built one.
    let batch = PrunedBloomSampleTree::build(&plan(cfg.namespace), stream.users());
    let audience = stream.audience(1);
    let q = tree.query_filter(audience.iter().copied());
    let mut s1 = OpStats::new();
    let mut s2 = OpStats::new();
    assert_eq!(
        BstReconstructor::new(&tree).reconstruct(&q, &mut s1),
        BstReconstructor::new(&batch).reconstruct(&q, &mut s2),
    );
}
