//! End-to-end sampling: workload generators → filters → BloomSampleTree →
//! sample quality, spanning all four crates.

use bloomsampletree::core::multiquery::sample_each;
use bloomsampletree::core::sampler::SamplerConfig;
use bloomsampletree::{BstSampler, BstSystem, OpStats};
use bst_stats::chi2_uniform_test;
use bst_workloads::querysets::{clustered_set, uniform_set};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn corrected_sampling_is_uniform_on_uniform_sets() {
    let system = BstSystem::builder(100_000)
        .accuracy(0.9)
        .expected_set_size(500)
        .seed(1)
        .build();
    let mut rng = StdRng::seed_from_u64(2);
    let keys = uniform_set(&mut rng, 100_000, 200);
    let q = system.store(keys.iter().copied());
    let view = system.tree().read();
    let sampler = BstSampler::with_config(&view, SamplerConfig::corrected());
    let mut counts = vec![0u64; keys.len()];
    let mut stats = OpStats::new();
    for _ in 0..130 * keys.len() {
        if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
            if let Ok(i) = keys.binary_search(&s) {
                counts[i] += 1;
            }
        }
    }
    let res = chi2_uniform_test(&counts);
    // A correct uniform sampler yields p ~ Uniform(0,1), so asserting at
    // the paper's 0.08 level would flake 8% of the time by construction;
    // 0.01 still catches real non-uniformity (which lands at p < 1e-10).
    assert!(
        res.is_uniform_at(0.01),
        "chi2 rejected: p = {}",
        res.p_value
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn corrected_sampling_is_uniform_on_clustered_sets() {
    let system = BstSystem::builder(100_000)
        .accuracy(0.9)
        .expected_set_size(500)
        .seed(3)
        .build();
    let mut rng = StdRng::seed_from_u64(4);
    let keys = clustered_set(&mut rng, 100_000, 200, 10.0);
    let q = system.store(keys.iter().copied());
    let view = system.tree().read();
    let sampler = BstSampler::with_config(&view, SamplerConfig::corrected());
    let mut counts = vec![0u64; keys.len()];
    let mut stats = OpStats::new();
    for _ in 0..130 * keys.len() {
        if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
            if let Ok(i) = keys.binary_search(&s) {
                counts[i] += 1;
            }
        }
    }
    let res = chi2_uniform_test(&counts);
    assert!(
        res.is_uniform_at(0.01),
        "chi2 rejected on clustered set: p = {}",
        res.p_value
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn measured_accuracy_tracks_target() {
    // Build for several accuracy targets; the fraction of true elements
    // among samples must come out near each target (Table 6's check).
    for target in [0.6, 0.8, 0.95] {
        let system = BstSystem::builder(200_000)
            .accuracy(target)
            .expected_set_size(1000)
            .seed(5)
            .build();
        let mut rng = StdRng::seed_from_u64(6);
        let keys = uniform_set(&mut rng, 200_000, 1000);
        let query = system.query(&system.store(keys.iter().copied()));
        let (mut trues, mut total) = (0u64, 0u64);
        for _ in 0..2000 {
            if let Ok(s) = query.sample(&mut rng) {
                total += 1;
                if keys.binary_search(&s).is_ok() {
                    trues += 1;
                }
            }
        }
        let measured = trues as f64 / total as f64;
        assert!(
            (measured - target).abs() < 0.08,
            "target {target}: measured {measured}"
        );
    }
}

#[test]
fn batch_sampling_agrees_with_sequential() {
    let system = BstSystem::builder(50_000).seed(7).build();
    let mut rng = StdRng::seed_from_u64(8);
    let filters: Vec<_> = (0..16)
        .map(|i| {
            let keys = uniform_set(&mut rng, 50_000, 100 + i * 10);
            system.store(keys)
        })
        .collect();
    let (results, stats) = sample_each(
        &system.tree().read(),
        &filters,
        SamplerConfig::default(),
        11,
        4,
    );
    assert_eq!(results.len(), filters.len());
    for (filter, r) in filters.iter().zip(&results) {
        let s = r.expect("every filter yields a sample");
        assert!(filter.contains(s));
    }
    assert!(stats.memberships > 0);
    // The facade-level batch entry point serves the same filters.
    let (via_system, _) = system.query_batch(&filters, 11, 4);
    for (filter, r) in filters.iter().zip(&via_system) {
        assert!(filter.contains(r.expect("sample")));
    }
}

#[test]
fn multi_sample_distribution_covers_set() {
    let system = BstSystem::builder(65_536).seed(9).build();
    let mut rng = StdRng::seed_from_u64(10);
    let keys = uniform_set(&mut rng, 65_536, 64);
    let query = system.query(&system.store(keys.iter().copied()));
    let samples = query.sample_many(2000, &mut rng).expect("sample_many");
    assert_eq!(samples.len(), 2000);
    let distinct: std::collections::HashSet<u64> = samples.iter().copied().collect();
    // 2000 draws over 64 near-uniform keys: all keys seen (coupon
    // collector needs ~ 64 ln 64 ≈ 266).
    assert!(
        distinct.len() >= 60,
        "only {} of 64 keys covered",
        distinct.len()
    );
}

#[test]
fn hash_families_all_work_end_to_end() {
    use bloomsampletree::HashKind;
    for kind in HashKind::ALL {
        let system = BstSystem::builder(20_000)
            .hash_kind(kind)
            .expected_set_size(200)
            .seed(11)
            .build();
        let mut rng = StdRng::seed_from_u64(12);
        let keys = uniform_set(&mut rng, 20_000, 200);
        let q = system.store(keys.iter().copied());
        let query = system.query(&q);
        let s = query.sample(&mut rng).expect("sample");
        assert!(q.contains(s), "{kind}: non-positive sample");
        let rec = query.reconstruct().expect("reconstruct");
        for k in &keys {
            assert!(rec.binary_search(k).is_ok(), "{kind}: lost {k}");
        }
    }
}
