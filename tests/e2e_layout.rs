//! Layout-conformance suite for the blocked Bloom filter layout
//! (`HashKind::DeltaBlocked`) and the word-level weighing kernel:
//!
//! * classic-layout outputs are **bit-identical** to the pre-kernel
//!   implementation: fixed-seed draws, live weights, and reconstruction
//!   prefixes are pinned against values captured from the naive
//!   per-bit scan before the kernel rewrite landed — single tree and
//!   S = 16 sharded;
//! * blocked-layout sampling is **statistically indistinguishable**
//!   from classic-layout sampling over the same key set (χ² homogeneity
//!   via `assert_homogeneous`, which prints the observed table on
//!   failure, plus Kolmogorov–Smirnov over pooled raw draws) — single
//!   tree and S = 16 sharded. The conformance pair runs under
//!   `BstConfig::corrected()` (rejection-corrected sampling): raw
//!   BSTSample carries frozen estimate noise whose *shape* depends on
//!   the filter layout (blocked filters concentrate chance collisions
//!   inside blocks), so comparing raw samplers measures that noise, not
//!   the layout's correctness; the corrected sampler cancels the
//!   proposal distribution exactly and is the mode with a distributional
//!   guarantee to conform *to*;
//! * blocked reconstruction is exact on both engines, and sharded ≡
//!   single under the blocked layout (occupancy partitioning makes even
//!   false positives agree).

use bloomsampletree::stats::conformance::{
    assert_homogeneous, ks_two_sample_ids, sample_counts, DEFAULT_ALPHA,
};
use bloomsampletree::{BstConfig, BstSystem, HashKind, ShardedBstSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS_PER_ELEMENT: usize = 130;

/// The fixed scenario every test here builds: namespace 4096, two
/// thirds occupied, every seventh id stored. At this fill the filters
/// carry real false positives — exactly what the golden capture pins.
fn scenario() -> (u64, Vec<u64>, Vec<u64>) {
    let namespace = 4096u64;
    let occupied: Vec<u64> = (0..namespace).filter(|x| x % 3 != 0).collect();
    let members: Vec<u64> = (0..namespace).filter(|x| x % 7 == 0).collect();
    (namespace, occupied, members)
}

/// A sparse stored set (every 31st id) whose fill ratio is low enough
/// that both layouts reconstruct it exactly — the conformance tests
/// need the two engines to agree on the support before distributions
/// can be compared.
fn sparse_members() -> (Vec<u64>, Vec<u64>) {
    let members: Vec<u64> = (0..4096u64).filter(|x| x % 31 == 0).collect();
    let support: Vec<u64> = members.iter().copied().filter(|x| x % 3 != 0).collect();
    (members, support)
}

fn single_system(
    kind: HashKind,
    accuracy: f64,
    expected: u64,
    seed: u64,
    cfg: BstConfig,
) -> BstSystem {
    let (namespace, occupied, _) = scenario();
    BstSystem::builder(namespace)
        .expected_set_size(expected)
        .accuracy(accuracy)
        .seed(seed)
        .config(cfg)
        .hash_kind(kind)
        .pruned(occupied.iter().copied())
        .build()
}

fn sharded_system(
    kind: HashKind,
    shards: usize,
    accuracy: f64,
    expected: u64,
    seed: u64,
    cfg: BstConfig,
) -> ShardedBstSystem {
    let (namespace, occupied, _) = scenario();
    ShardedBstSystem::builder(namespace)
        .shards(shards)
        .expected_set_size(expected)
        .accuracy(accuracy)
        .seed(seed)
        .config(cfg)
        .hash_kind(kind)
        .occupied(occupied.iter().copied())
        .build()
}

/// Sizing for the conformance tests: accuracy 0.99 + set size 1500
/// drive `m` up ~5x over the golden scenario, and the tree seed is
/// chosen so that *neither* layout's reconstruction carries a false
/// positive — both engines must sample over the identical support
/// before their distributions can be compared. The golden test keeps
/// the builder defaults (accuracy 0.9), where false positives are real
/// and deliberately pinned.
const CONFORMANCE_ACCURACY: f64 = 0.99;
const CONFORMANCE_SET_SIZE: u64 = 1500;
const CONFORMANCE_SEED: u64 = 2;
const GOLDEN_ACCURACY: f64 = 0.9;
const GOLDEN_SET_SIZE: u64 = 600;
const GOLDEN_SEED: u64 = 99;

/// Golden values captured from the pre-kernel implementation (naive
/// per-bit `contains` loop over leaf candidates) at this exact
/// scenario and seeds. The kernel rewrite must not perturb any of
/// them: same weights, same draw sequence, same reconstruction.
#[test]
fn classic_outputs_bit_identical_to_pre_kernel_capture() {
    let (_, _, members) = scenario();
    let single = single_system(
        HashKind::Murmur3,
        GOLDEN_ACCURACY,
        GOLDEN_SET_SIZE,
        GOLDEN_SEED,
        BstConfig::default(),
    );
    let f = single.store(members.iter().copied());
    let q = single.query(&f);
    assert_eq!(q.live_weight().unwrap(), 440);
    let mut rng = StdRng::seed_from_u64(4242);
    let draws: Vec<u64> = (0..32).map(|_| q.sample(&mut rng).unwrap()).collect();
    assert_eq!(
        draws,
        [
            707, 301, 3416, 1582, 2156, 3997, 2254, 812, 1967, 448, 476, 245, 1337, 2387, 2569,
            3724, 3115, 1477, 308, 3119, 1949, 1078, 280, 1435, 1897, 2611, 2884, 1148, 4060, 3178,
            2114, 889
        ],
        "classic fixed-seed draw sequence changed"
    );
    let recon = q.reconstruct().unwrap();
    assert_eq!(recon.len(), 440);
    assert_eq!(&recon[..8], &[7, 14, 28, 35, 49, 56, 70, 77]);

    let sharded = sharded_system(
        HashKind::Murmur3,
        16,
        GOLDEN_ACCURACY,
        GOLDEN_SET_SIZE,
        GOLDEN_SEED,
        BstConfig::default(),
    );
    let sf = sharded.store(members.iter().copied());
    let sq = sharded.query(&sf);
    assert_eq!(sq.live_weight().unwrap(), 440);
    let mut rng = StdRng::seed_from_u64(4242);
    let sdraws: Vec<u64> = (0..32).map(|_| sq.sample(&mut rng).unwrap()).collect();
    assert_eq!(
        sdraws,
        [
            1316, 2870, 77, 2744, 1391, 3976, 3101, 392, 3052, 3136, 602, 1480, 2002, 3605, 623,
            1561, 1804, 1078, 1414, 1246, 343, 3430, 1960, 2471, 2471, 49, 2926, 1547, 1253, 2828,
            1463, 3623
        ],
        "sharded classic fixed-seed draw sequence changed"
    );
}

/// Blocked reconstruction is exact (no stray elements at this `m`),
/// equals classic reconstruction, and sharded blocked equals single
/// blocked bit-for-bit.
#[test]
fn blocked_reconstruction_is_exact_and_shard_invariant() {
    let (members, expected) = sparse_members();
    let classic = single_system(
        HashKind::Murmur3,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let blocked = single_system(
        HashKind::DeltaBlocked,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let sharded_blocked = sharded_system(
        HashKind::DeltaBlocked,
        16,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );

    let fc = classic.store(members.iter().copied());
    let fb = blocked.store(members.iter().copied());
    let fs = sharded_blocked.store(members.iter().copied());

    let via_classic = classic.query(&fc).reconstruct().unwrap();
    let via_blocked = blocked.query(&fb).reconstruct().unwrap();
    let via_sharded = sharded_blocked.query(&fs).reconstruct().unwrap();
    assert_eq!(via_classic, expected, "classic picked up false positives");
    assert_eq!(via_blocked, expected, "blocked picked up false positives");
    assert_eq!(via_sharded, via_blocked, "sharded blocked diverged");
}

/// χ² homogeneity + KS: single-tree blocked-layout sampling draws from
/// the same distribution as classic-layout sampling.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn blocked_single_tree_sampling_conforms_to_classic() {
    let (members, support) = sparse_members();
    let rounds = ROUNDS_PER_ELEMENT * support.len();

    let classic = single_system(
        HashKind::Murmur3,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let blocked = single_system(
        HashKind::DeltaBlocked,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let fc = classic.store(members.iter().copied());
    let fb = blocked.store(members.iter().copied());
    assert_eq!(classic.query(&fc).reconstruct().unwrap(), support);
    assert_eq!(blocked.query(&fb).reconstruct().unwrap(), support);

    let qc = classic.query(&fc);
    let qb = blocked.query(&fb);
    let classic_counts = sample_counts(&support, rounds, 7, |rng| qc.sample(rng).unwrap());
    let blocked_counts = sample_counts(&support, rounds, 8, |rng| qb.sample(rng).unwrap());
    assert_homogeneous(
        "single-tree blocked vs classic",
        &support,
        &blocked_counts,
        &classic_counts,
        DEFAULT_ALPHA,
    );

    let mut rng = StdRng::seed_from_u64(9);
    let classic_raw: Vec<u64> = (0..rounds).map(|_| qc.sample(&mut rng).unwrap()).collect();
    let mut rng = StdRng::seed_from_u64(10);
    let blocked_raw: Vec<u64> = (0..rounds).map(|_| qb.sample(&mut rng).unwrap()).collect();
    let ks = ks_two_sample_ids(&blocked_raw, &classic_raw);
    assert!(
        ks.is_same_distribution_at(DEFAULT_ALPHA),
        "KS rejected blocked vs classic: D = {}, p = {}",
        ks.statistic,
        ks.p_value
    );
}

/// Same bar at S = 16: scatter-gather over blocked shards draws from
/// the same distribution as scatter-gather over classic shards.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn blocked_sharded_s16_sampling_conforms_to_classic() {
    let (members, support) = sparse_members();
    let rounds = ROUNDS_PER_ELEMENT * support.len();

    let classic = sharded_system(
        HashKind::Murmur3,
        16,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let blocked = sharded_system(
        HashKind::DeltaBlocked,
        16,
        CONFORMANCE_ACCURACY,
        CONFORMANCE_SET_SIZE,
        CONFORMANCE_SEED,
        BstConfig::corrected(),
    );
    let fc = classic.store(members.iter().copied());
    let fb = blocked.store(members.iter().copied());
    assert_eq!(classic.query(&fc).reconstruct().unwrap(), support);
    assert_eq!(blocked.query(&fb).reconstruct().unwrap(), support);

    let qc = classic.query(&fc);
    let qb = blocked.query(&fb);
    let classic_counts = sample_counts(&support, rounds, 11, |rng| qc.sample(rng).unwrap());
    let blocked_counts = sample_counts(&support, rounds, 12, |rng| qb.sample(rng).unwrap());
    assert_homogeneous(
        "S=16 blocked vs classic",
        &support,
        &blocked_counts,
        &classic_counts,
        DEFAULT_ALPHA,
    );

    let mut rng = StdRng::seed_from_u64(13);
    let classic_raw: Vec<u64> = (0..rounds).map(|_| qc.sample(&mut rng).unwrap()).collect();
    let mut rng = StdRng::seed_from_u64(14);
    let blocked_raw: Vec<u64> = (0..rounds).map(|_| qb.sample(&mut rng).unwrap()).collect();
    let ks = ks_two_sample_ids(&blocked_raw, &classic_raw);
    assert!(
        ks.is_same_distribution_at(DEFAULT_ALPHA),
        "KS rejected sharded blocked vs classic: D = {}, p = {}",
        ks.statistic,
        ks.p_value
    );
}
