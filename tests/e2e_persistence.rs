//! Persistence and determinism: filters survive the binary codec, hash
//! families rebuild identically from their parameters, and whole systems
//! are reproducible from a plan.

use bloomsampletree::{BloomFilter, BloomHasher, BstSystem, HashKind, SampleTree, TreePlan};
use bst_bloom::codec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn filter_binary_roundtrip_preserves_queries() {
    for kind in HashKind::ALL {
        let mut f = BloomFilter::with_params(kind, 3, 8192, 100_000, 55);
        for x in (0..2000u64).step_by(3) {
            f.insert(x);
        }
        let bytes = codec::encode(&f);
        let back = codec::decode(&bytes).expect("decode");
        for x in 0..2000u64 {
            assert_eq!(f.contains(x), back.contains(x), "{kind}: {x}");
        }
    }
}

#[test]
fn filter_codec_roundtrip_over_simple_family() {
    let mut f = BloomFilter::with_params(HashKind::Simple, 3, 4096, 50_000, 56);
    f.insert(123);
    f.insert(49_999);
    let bytes = codec::encode(&f);
    let back = codec::decode(&bytes).expect("decode");
    assert!(back.contains(123));
    assert!(back.contains(49_999));
    assert!(back.compatible_with(&f));
}

#[test]
fn hashers_rebuild_identically_from_parameters() {
    for kind in HashKind::ALL {
        let a = BloomHasher::new(kind, 4, 10_000, 1 << 20, 999);
        let b = BloomHasher::new(kind, 4, 10_000, 1 << 20, 999);
        assert_eq!(a, b);
        for x in (0..10_000u64).step_by(997) {
            for i in 0..4 {
                assert_eq!(a.position(x, i), b.position(x, i));
            }
        }
    }
}

#[test]
fn plan_roundtrip_through_tree_bytes_rebuilds_equivalent_tree() {
    let plan = TreePlan::for_accuracy(50_000, 500, 0.9, 3, HashKind::Murmur3, 77, 128.0);
    let t1 = bloomsampletree::BloomSampleTree::build(&plan);
    let t2 = bloomsampletree::BloomSampleTree::from_bytes(&t1.to_bytes()).expect("decode tree");
    assert_eq!(&plan, t2.plan());
    for i in (0..t1.node_count() as u32).step_by(7) {
        assert_eq!(t1.filter(i).bits(), t2.filter(i).bits(), "node {i}");
    }
}

#[test]
fn remote_filter_scenario() {
    // The §3.2 framework: filters are produced elsewhere (same parameters)
    // and shipped as bytes; the local tree must answer queries on them.
    let system = BstSystem::builder(30_000)
        .expected_set_size(300)
        .seed(88)
        .build();
    let plan = system.tree().plan().clone();

    // "Remote" producer: rebuilds the hash family from the plan alone.
    let remote_hasher = Arc::new(plan.build_hasher());
    let keys: Vec<u64> = (0..300u64).map(|i| i * 99 + 1).collect();
    let remote_filter = BloomFilter::from_keys(remote_hasher, keys.iter().copied());
    let wire = codec::encode(&remote_filter);

    // Local consumer: decode and sample/reconstruct through a handle.
    let received = codec::decode(&wire).expect("decode");
    assert!(received.compatible_with(system.tree().filter(0)));
    let query = system.query(&received);
    let mut rng = StdRng::seed_from_u64(89);
    let s = query.sample(&mut rng).expect("sample");
    assert!(received.contains(s));
    let rec = query.reconstruct().expect("reconstruct");
    for k in &keys {
        assert!(rec.binary_search(k).is_ok());
    }
}
