//! Persistence and determinism: filters (plain and counting) survive the
//! binary codec, hash families rebuild identically from their parameters,
//! both tree backends round-trip through their snapshot formats, and
//! whole systems are reproducible from a plan.

use bloomsampletree::{
    BloomFilter, BloomHasher, BstSystem, CountingBloomFilter, HashKind, OpStats,
    PrunedBloomSampleTree, SampleTree, TreePlan,
};
use bst_bloom::codec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn filter_binary_roundtrip_preserves_queries() {
    for kind in HashKind::ALL {
        let mut f = BloomFilter::with_params(kind, 3, 8192, 100_000, 55);
        for x in (0..2000u64).step_by(3) {
            f.insert(x);
        }
        let bytes = codec::encode(&f);
        let back = codec::decode(&bytes).expect("decode");
        for x in 0..2000u64 {
            assert_eq!(f.contains(x), back.contains(x), "{kind}: {x}");
        }
    }
}

#[test]
fn filter_codec_roundtrip_over_simple_family() {
    let mut f = BloomFilter::with_params(HashKind::Simple, 3, 4096, 50_000, 56);
    f.insert(123);
    f.insert(49_999);
    let bytes = codec::encode(&f);
    let back = codec::decode(&bytes).expect("decode");
    assert!(back.contains(123));
    assert!(back.contains(49_999));
    assert!(back.compatible_with(&f));
}

#[test]
fn hashers_rebuild_identically_from_parameters() {
    for kind in HashKind::ALL {
        let a = BloomHasher::new(kind, 4, 10_000, 1 << 20, 999);
        let b = BloomHasher::new(kind, 4, 10_000, 1 << 20, 999);
        assert_eq!(a, b);
        for x in (0..10_000u64).step_by(997) {
            for i in 0..4 {
                assert_eq!(a.position(x, i), b.position(x, i));
            }
        }
    }
}

#[test]
fn plan_roundtrip_through_tree_bytes_rebuilds_equivalent_tree() {
    let plan = TreePlan::for_accuracy(50_000, 500, 0.9, 3, HashKind::Murmur3, 77, 128.0);
    let t1 = bloomsampletree::BloomSampleTree::build(&plan);
    let t2 = bloomsampletree::BloomSampleTree::from_bytes(&t1.to_bytes()).expect("decode tree");
    assert_eq!(&plan, t2.plan());
    for i in (0..t1.node_count() as u32).step_by(7) {
        assert_eq!(t1.filter(i).bits(), t2.filter(i).bits(), "node {i}");
    }
}

#[test]
fn counting_filter_codec_roundtrip_preserves_removability() {
    // The store's substrate: counting filters must survive the codec with
    // their *counters* (not just the bit projection), or restored sets
    // would forget how many inserts each position carries.
    let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 8192, 100_000, 91));
    let mut f = CountingBloomFilter::from_keys(Arc::clone(&hasher), (0..400u64).map(|i| i * 11));
    f.insert(55); // 55 = 5*11 now counted twice
    f.remove(110);
    let bytes = codec::encode_counting(&f);
    let mut back = codec::decode_counting(&bytes).expect("decode");
    assert_eq!(back.counter_bytes(), f.counter_bytes());
    for x in 0..4400u64 {
        assert_eq!(back.contains(x), f.contains(x), "key {x}");
    }
    // Counter semantics survive: one remove does not clear a double insert.
    back.remove(55);
    assert!(back.contains(55));
    back.remove(55);
    assert!(!back.contains(55));
}

#[test]
fn pruned_tree_snapshot_restores_structure_and_answers() {
    let plan = TreePlan {
        namespace: 1 << 16,
        m: 1 << 14,
        k: 3,
        kind: HashKind::Murmur3,
        seed: 33,
        depth: 6,
        leaf_capacity: 1 << 10,
        target_accuracy: 0.9,
    };
    // Clustered occupancy, then churn, so the snapshot covers grown and
    // shrunk regions (materialised nodes + unlinked tombstones).
    let occupied: Vec<u64> = (2_000..2_600u64)
        .chain((40_000..40_300).step_by(3))
        .collect();
    let mut tree = PrunedBloomSampleTree::build(&plan, &occupied);
    for id in 50_000..50_040u64 {
        assert!(tree.insert(id));
    }
    for id in (2_000..2_100u64).step_by(2) {
        assert!(tree.remove(id));
    }

    let bytes = tree.to_bytes();
    let restored = PrunedBloomSampleTree::from_bytes(&bytes).expect("decode");
    assert_eq!(restored.plan(), tree.plan());
    assert_eq!(restored.node_count(), tree.node_count());
    assert_eq!(restored.occupied_count(), tree.occupied_count());
    assert_eq!(restored.occupied_ids(), tree.occupied_ids());
    // Maintained weights survive the round-trip: the decoder rebuilds
    // them and a from-scratch recount agrees on every node, while the
    // snapshot itself stays byte-deterministic.
    assert!(tree.verify_weights());
    assert!(restored.verify_weights());
    assert_eq!(restored.to_bytes(), bytes);

    // Same answers through the sampling/reconstruction layers.
    let members: Vec<u64> = tree.occupied_ids().into_iter().step_by(5).collect();
    let q = tree.query_filter(members.iter().copied());
    let mut s1 = OpStats::new();
    let mut s2 = OpStats::new();
    let rec_orig = bloomsampletree::BstReconstructor::new(&tree).reconstruct(&q, &mut s1);
    let rec_back = bloomsampletree::BstReconstructor::new(&restored).reconstruct(&q, &mut s2);
    assert_eq!(rec_orig, rec_back);
    assert_eq!(s1.intersections, s2.intersections, "identical pruning work");
    let mut rng_a = StdRng::seed_from_u64(3);
    let mut rng_b = StdRng::seed_from_u64(3);
    for _ in 0..40 {
        assert_eq!(
            bloomsampletree::BstSampler::new(&tree).sample(&q, &mut rng_a, &mut s1),
            bloomsampletree::BstSampler::new(&restored).sample(&q, &mut rng_b, &mut s2),
        );
    }

    // The restored tree stays dynamic: inserts and removals keep working.
    let mut restored = restored;
    assert!(restored.insert(60_000));
    assert!(restored.contains_occupied(60_000));
    assert!(restored.remove(60_000));

    // Corruption is rejected, not mis-decoded.
    assert!(PrunedBloomSampleTree::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(PrunedBloomSampleTree::from_bytes(&wrong).is_err());
}

#[test]
fn remote_filter_scenario() {
    // The §3.2 framework: filters are produced elsewhere (same parameters)
    // and shipped as bytes; the local tree must answer queries on them.
    let system = BstSystem::builder(30_000)
        .expected_set_size(300)
        .seed(88)
        .build();
    let plan = system.tree().plan().clone();

    // "Remote" producer: rebuilds the hash family from the plan alone.
    let remote_hasher = Arc::new(plan.build_hasher());
    let keys: Vec<u64> = (0..300u64).map(|i| i * 99 + 1).collect();
    let remote_filter = BloomFilter::from_keys(remote_hasher, keys.iter().copied());
    let wire = codec::encode(&remote_filter);

    // Local consumer: decode and sample/reconstruct through a handle.
    let received = codec::decode(&wire).expect("decode");
    assert!(received.compatible_with(system.tree().read().filter(0)));
    let query = system.query(&received);
    let mut rng = StdRng::seed_from_u64(89);
    let s = query.sample(&mut rng).expect("sample");
    assert!(received.contains(s));
    let rec = query.reconstruct().expect("reconstruct");
    for k in &keys {
        assert!(rec.binary_search(k).is_ok());
    }
}
