//! The per-file lints: L001 panic-freedom, L002 codec discipline,
//! L003 lock discipline, L005 unsafe hygiene.
//!
//! All of them run over [`crate::scan::SourceFile`]s, so comments,
//! string literals and `#[cfg(test)]` items are already out of the
//! picture; each lint is a token/shape check with a precise `file:line`
//! anchor.

use crate::diag::{Code, Diagnostic};
use crate::scan::{fn_spans, SourceFile};

// ---------------------------------------------------------------------
// L001 — panic-freedom on the serving path
// ---------------------------------------------------------------------

/// Method-call tokens that panic. Matched exactly so `unwrap_or_else` /
/// `expect_err` never trip the lint.
const PANIC_METHODS: &[&str] = &[".unwrap()", ".expect("];
/// Panicking macros; matched with an identifier-boundary check so a
/// local `my_panic!` is not a finding.
const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// L001: serving-path crates must not contain panic paths outside test
/// code. Every hit is either rewritten infallibly, routed into a typed
/// `BstError`, or carries a justified waiver.
pub fn l001_panic_freedom(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for tok in PANIC_METHODS {
            if line.code.contains(tok) {
                out.push(finding(
                    Code::L001,
                    file,
                    line.number,
                    format!("panic path `{}` in serving-path crate (rewrite infallibly, return a typed BstError, or waive with justification)", tok.trim_end_matches('(')),
                ));
            }
        }
        for mac in PANIC_MACROS {
            if contains_macro(&line.code, mac) {
                out.push(finding(
                    Code::L001,
                    file,
                    line.number,
                    format!("panicking macro `{mac}` in serving-path crate"),
                ));
            }
        }
    }
    out
}

/// Is `mac` present as a standalone macro invocation (not a suffix of a
/// longer identifier)?
fn contains_macro(code: &str, mac: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(mac) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = bytes[at - 1];
            !(p.is_ascii_alphanumeric() || p == b'_')
        };
        if prev_ok {
            return true;
        }
        from = at + mac.len();
    }
    false
}

// ---------------------------------------------------------------------
// L002 — codec discipline
// ---------------------------------------------------------------------

/// Byte-order tokens that break LE determinism of snapshots and frames.
const BYTE_ORDER_BANNED: &[&str] = &[
    "to_be_bytes",
    "from_be_bytes",
    "to_ne_bytes",
    "from_ne_bytes",
];

/// Function-name prefixes that mark a *decode* path in a codec file
/// (the direction where a length field is attacker/corruption
/// controlled, so allocations must be bounded).
const DECODE_PREFIXES: &[&str] = &["get_", "read_", "decode", "from_"];

/// Guard shapes that bound an allocation: a `remaining()` comparison, a
/// declared-length cap, or an explicit length check earlier in the same
/// function; or an inline `.min(` right in the capacity expression.
fn is_guard_line(code: &str) -> bool {
    (code.contains("remaining()") && (code.contains('<') || code.contains('>')))
        || code.contains("> max")
        || code.contains(">= max")
        || (code.contains(".len()") && (code.contains('<') || code.contains('>')))
}

/// L002: in codec files, (a) big/native-endian conversions are banned
/// outright — every on-disk and on-wire integer is little-endian; and
/// (b) `Vec::with_capacity` / `vec![` in a decode-path function must be
/// bounded: either the capacity expression carries an inline `.min(`
/// cap, or an earlier line of the same function checked the available
/// input (`remaining() < …`-style) before the allocation.
pub fn l002_codec_discipline(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for tok in BYTE_ORDER_BANNED {
            if line.code.contains(tok) {
                out.push(finding(
                    Code::L002,
                    file,
                    line.number,
                    format!("`{tok}` in a codec file: snapshots and frames are little-endian by contract (use the `_le` form)"),
                ));
            }
        }
    }

    let spans = fn_spans(file);
    for span in &spans {
        if !DECODE_PREFIXES.iter().any(|p| span.name.starts_with(p)) {
            continue;
        }
        let body = || {
            file.lines[span.start - 1..span.end]
                .iter()
                .filter(|l| !l.in_test)
        };
        for line in body() {
            let alloc = line.code.contains("with_capacity(") || line.code.contains("vec![");
            if !alloc {
                continue;
            }
            if line.code.contains(".min(") {
                continue; // inline bound
            }
            let guarded = body()
                .take_while(|l| l.number < line.number)
                .any(|l| is_guard_line(&l.code));
            if !guarded {
                out.push(finding(
                    Code::L002,
                    file,
                    line.number,
                    format!(
                        "unguarded allocation on decode path `{}`: bound the capacity (inline `.min(..)` or a prior `remaining()` length check) before allocating from decoded input",
                        span.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// L003 — lock discipline
// ---------------------------------------------------------------------

/// One class in the lock-order manifest: a name and the textual
/// acquisition patterns that identify it.
#[derive(Debug)]
pub struct LockClass {
    pub name: &'static str,
    pub patterns: &'static [&'static str],
}

/// The workspace lock-order manifest, outermost first:
/// store set-lock → tree RwLock → query/session state.
///
/// A function body may acquire locks of ascending class only; seeing a
/// lower class after a higher one is a potential deadlock with any
/// other thread following the declared order, and is flagged. The
/// check is per-function and textual — acquisitions hidden behind
/// callees are out of scope (the manifest governs what a single
/// function visibly nests).
pub const LOCK_ORDER: &[LockClass] = &[
    LockClass {
        name: "store set-lock",
        patterns: &[
            "inner.read(",
            "inner.write(",
            "registry.read(",
            "registry.write(",
        ],
    },
    LockClass {
        name: "tree lock",
        patterns: &["tree.read(", "tree.write(", "tree().read(", "tree().write("],
    },
    LockClass {
        name: "query/session state",
        patterns: &["state.lock(", "stats.lock(", "cache.lock("],
    },
];

/// `std::sync` primitives that block without parking_lot's fairness and
/// poisoning-free guarantees; library crates use parking_lot only.
const STD_SYNC_BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// L003: (a) `std::sync::{Mutex, RwLock, Condvar}` are banned in
/// library crates — parking_lot is the workspace's one lock vocabulary
/// (no poisoning to unwrap, fair unlocks on contended paths); (b)
/// within one function body, recognizable lock acquisitions must follow
/// the [`LOCK_ORDER`] manifest.
pub fn l003_lock_discipline(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        if line.code.contains("std::sync::") {
            for prim in STD_SYNC_BANNED {
                // The primitive must be part of the `std::sync` path
                // itself — directly (`std::sync::Mutex`) or via a
                // brace import (`use std::sync::{mpsc, Mutex}`). A
                // line that pairs `parking_lot::Mutex` with a benign
                // `std::sync::mpsc` path is clean.
                let direct = line.code.contains(&format!("std::sync::{prim}"));
                let braced = line.code.contains("use std::sync::{")
                    && line.code.contains(prim)
                    && !line.code.contains(&format!("mpsc::{prim}"));
                if direct || braced {
                    out.push(finding(
                        Code::L003,
                        file,
                        line.number,
                        format!("`std::sync::{prim}` in a library crate: use `parking_lot::{prim}` (workspace lock vocabulary)"),
                    ));
                }
            }
        }
    }

    for span in fn_spans(file) {
        let mut deepest: Option<(usize, usize)> = None; // (class idx, line)
        for line in file.lines[span.start - 1..span.end]
            .iter()
            .filter(|l| !l.in_test)
        {
            let Some(class) = LOCK_ORDER
                .iter()
                .position(|c| c.patterns.iter().any(|p| line.code.contains(p)))
            else {
                continue;
            };
            match deepest {
                Some((held, held_line)) if class < held => {
                    out.push(finding(
                        Code::L003,
                        file,
                        line.number,
                        format!(
                            "lock-order violation in `{}`: acquires {} after {} (line {held_line}); manifest order is {}",
                            span.name,
                            LOCK_ORDER[class].name,
                            LOCK_ORDER[held].name,
                            manifest_order(),
                        ),
                    ));
                }
                Some((held, _)) if class > held => deepest = Some((class, line.number)),
                None => deepest = Some((class, line.number)),
                _ => {}
            }
        }
    }
    out
}

fn manifest_order() -> String {
    LOCK_ORDER
        .iter()
        .map(|c| c.name)
        .collect::<Vec<_>>()
        .join(" → ")
}

// ---------------------------------------------------------------------
// L005 — unsafe hygiene
// ---------------------------------------------------------------------

/// L005 (token half): the workspace is `unsafe`-free; any `unsafe`
/// keyword in first-party code is a finding (the compiler backs this up
/// via `#![forbid(unsafe_code)]`, which [`l005_crate_root`] enforces).
pub fn l005_no_unsafe(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        if contains_word(&line.code, "unsafe") {
            out.push(finding(
                Code::L005,
                file,
                line.number,
                "`unsafe` in first-party code: the workspace is unsafe-free by contract"
                    .to_string(),
            ));
        }
    }
    out
}

/// L005 (attribute half): a crate root must carry
/// `#![forbid(unsafe_code)]` so the compiler enforces what
/// [`l005_no_unsafe`] scans for.
pub fn l005_crate_root(file: &SourceFile) -> Vec<Diagnostic> {
    let has = file.lines.iter().any(|l| {
        let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        compact.contains("#![forbid(unsafe_code)]")
    });
    if has {
        Vec::new()
    } else {
        vec![Diagnostic {
            code: Code::L005,
            file: file.path.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Whole-word search (identifier boundaries on both sides).
fn contains_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = bytes[at - 1];
            !(p.is_ascii_alphanumeric() || p == b'_')
        };
        let next = at + word.len();
        let next_ok = next >= bytes.len() || {
            let n = bytes[next];
            !(n.is_ascii_alphanumeric() || n == b'_')
        };
        if prev_ok && next_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn finding(code: Code, file: &SourceFile, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        code,
        file: file.path.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;
    use std::path::PathBuf;

    fn scan(text: &str) -> SourceFile {
        scan_source(PathBuf::from("t.rs"), text)
    }

    #[test]
    fn l001_flags_panic_tokens_and_lines() {
        let f = scan("fn a(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn b() {\n    panic!(\"boom\");\n}\n");
        let d = l001_panic_freedom(&f);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 5);
    }

    #[test]
    fn l001_ignores_tests_comments_strings_and_lookalikes() {
        let text = "fn ok() {\n    let s = \"panic!\"; // .unwrap() here is fine\n    let v = x.unwrap_or_else(|| 3);\n    let e = r.expect_err(\"no\");\n    my_panic!();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        let d = l001_panic_freedom(&scan(text));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l002_flags_byte_order() {
        let f = scan("fn encode(x: u32) {\n    buf.extend(x.to_be_bytes());\n}\n");
        let d = l002_codec_discipline(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn l002_flags_unguarded_decode_alloc() {
        let f = scan("fn get_list(input: &mut &[u8]) -> Vec<u64> {\n    let n = input.get_u32_le() as usize;\n    let mut v = Vec::with_capacity(n);\n    v\n}\n");
        let d = l002_codec_discipline(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn l002_accepts_guarded_and_inline_min() {
        let guarded = "fn get_list(input: &mut &[u8]) -> Vec<u64> {\n    let n = input.get_u32_le() as usize;\n    if input.remaining() < n * 8 { return Vec::new(); }\n    let mut v = Vec::with_capacity(n);\n    v\n}\n";
        assert!(l002_codec_discipline(&scan(guarded)).is_empty());
        let inline = "fn get_list(input: &mut &[u8]) -> Vec<u64> {\n    let n = input.get_u32_le() as usize;\n    let mut v = Vec::with_capacity(n.min(input.remaining() / 8));\n    v\n}\n";
        assert!(l002_codec_discipline(&scan(inline)).is_empty());
    }

    #[test]
    fn l002_ignores_encode_side_alloc() {
        let f = scan("fn encode(xs: &[u64]) -> Vec<u8> {\n    let mut buf = Vec::with_capacity(xs.len() * 8);\n    buf\n}\n");
        assert!(l002_codec_discipline(&f).is_empty());
    }

    #[test]
    fn l003_flags_std_sync() {
        let f = scan("use std::sync::Mutex;\n");
        let d = l003_lock_discipline(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l003_allows_std_sync_atomics_and_arc() {
        let f = scan("use std::sync::Arc;\nuse std::sync::atomic::AtomicBool;\n");
        assert!(l003_lock_discipline(&f).is_empty());
    }

    #[test]
    fn l003_flags_braced_std_sync_import() {
        let f = scan("use std::sync::{mpsc, Mutex};\n");
        let d = l003_lock_discipline(&f);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l003_allows_parking_lot_lock_beside_std_mpsc() {
        // A parking_lot Mutex whose payload names a std::sync::mpsc
        // type is not a std::sync lock.
        let f = scan("signal: Mutex<Option<std::sync::mpsc::Sender<Signal>>>,\n");
        assert!(l003_lock_discipline(&f).is_empty());
    }

    #[test]
    fn l003_flags_out_of_order_acquisition() {
        let text = "fn bad(&self) {\n    let guard = self.state.lock();\n    let view = self.tree.read();\n}\n";
        let d = l003_lock_discipline(&scan(text));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("tree lock"));
    }

    #[test]
    fn l003_accepts_manifest_order() {
        let text = "fn good(&self) {\n    let inner = self.inner.read();\n    let view = self.tree.read();\n    let st = self.state.lock();\n}\n";
        assert!(l003_lock_discipline(&scan(text)).is_empty());
    }

    #[test]
    fn l005_flags_unsafe_and_missing_forbid() {
        let f = scan("fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n");
        let d = l005_no_unsafe(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(l005_crate_root(&f).len(), 1);
        let ok = scan("#![forbid(unsafe_code)]\nfn f() {}\n");
        assert!(l005_crate_root(&ok).is_empty());
    }
}
