//! What to analyze: scopes per lint, resolved against an analysis root.
//!
//! The scopes are data, not code, so the integration tests point the
//! same engine at fixture trees and the CLI points it at the real
//! workspace ([`Config::workspace`]).

use std::path::PathBuf;

use crate::drift::ProtocolConfig;

/// Scopes for one analysis run. All paths are relative to `root`; dirs
/// are walked recursively for `.rs` files.
#[derive(Debug, Clone)]
pub struct Config {
    /// The directory all relative paths resolve against.
    pub root: PathBuf,
    /// Directories whose non-test code must be panic-free (L001): the
    /// serving-path crates.
    pub panic_free_dirs: Vec<PathBuf>,
    /// Directories scanned for lock discipline (L003), unsafe tokens
    /// (L005), and waiver well-formedness (W001): all first-party code.
    pub lint_dirs: Vec<PathBuf>,
    /// Codec files under L002: LE-only, bounded decode allocations.
    pub codec_files: Vec<PathBuf>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub crate_roots: Vec<PathBuf>,
    /// The protocol-drift surface (L004), if this tree has one.
    pub protocol: Option<ProtocolConfig>,
}

impl Config {
    /// The real workspace layout. `root` is the repository root (the
    /// directory holding the workspace `Cargo.toml`).
    pub fn workspace(root: PathBuf) -> Config {
        let p = PathBuf::from;
        Config {
            root,
            // Serving path: a panic here kills a worker thread or a
            // whole request; bloom/core/shard/server are the crates a
            // live sample travels through.
            panic_free_dirs: vec![
                p("crates/bloom/src"),
                p("crates/core/src"),
                p("crates/obs/src"),
                p("crates/shard/src"),
                p("crates/server/src"),
            ],
            lint_dirs: vec![
                p("crates/bloom/src"),
                p("crates/core/src"),
                p("crates/obs/src"),
                p("crates/shard/src"),
                p("crates/server/src"),
                p("crates/stats/src"),
                p("crates/workloads/src"),
                p("crates/bench/src"),
                p("crates/analysis/src"),
                p("src"),
            ],
            codec_files: vec![
                p("crates/core/src/persistence.rs"),
                p("crates/core/src/wal.rs"),
                p("crates/bloom/src/codec.rs"),
                p("crates/server/src/frame.rs"),
                p("crates/server/src/protocol.rs"),
            ],
            crate_roots: vec![
                p("crates/bloom/src/lib.rs"),
                p("crates/core/src/lib.rs"),
                p("crates/obs/src/lib.rs"),
                p("crates/shard/src/lib.rs"),
                p("crates/server/src/lib.rs"),
                p("crates/server/src/main.rs"),
                p("crates/stats/src/lib.rs"),
                p("crates/workloads/src/lib.rs"),
                p("crates/bench/src/lib.rs"),
                p("crates/bench/src/bin/repro.rs"),
                p("crates/analysis/src/lib.rs"),
                p("crates/analysis/src/main.rs"),
                p("src/lib.rs"),
            ],
            protocol: Some(ProtocolConfig {
                protocol_rs: p("crates/server/src/protocol.rs"),
                handler_rs: p("crates/server/src/handler.rs"),
                error_rs: p("crates/core/src/error.rs"),
                design_md: p("DESIGN.md"),
            }),
        }
    }
}
