//! L004 — protocol drift detection.
//!
//! The wire protocol's single-source-of-truth is spread across three
//! artifacts that nothing ties together at compile time: the opcode
//! constants and error codec in `server/src/protocol.rs`, the dispatch
//! in `server/src/handler.rs`, and the human-facing frame table in
//! `DESIGN.md`. This lint cross-parses all three (plus the `BstError`
//! enum in `core/src/error.rs`) and flags every disagreement:
//!
//! * an `OP_*` constant with no decode arm in `protocol.rs`;
//! * a `Request` variant with no `handler.rs` match arm;
//! * an opcode missing from (or numbered differently in) the DESIGN.md
//!   opcode table — and table rows naming opcodes that no longer exist;
//! * a `BstError` variant without a `WireError` mapping arm;
//! * `PROTO_VERSION` values that disagree between `protocol.rs` and
//!   DESIGN.md.

use std::path::{Path, PathBuf};

use crate::diag::{Code, Diagnostic};
use crate::scan::SourceFile;

/// Where the protocol's artifacts live, relative to the analysis root.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    pub protocol_rs: PathBuf,
    pub handler_rs: PathBuf,
    pub error_rs: PathBuf,
    pub design_md: PathBuf,
}

/// Runs the full drift check. `design_text` is the raw DESIGN.md (it is
/// markdown, not Rust, so it skips the scanner).
pub fn l004_protocol_drift(
    protocol: &SourceFile,
    handler: &SourceFile,
    error: &SourceFile,
    design_text: &str,
    design_path: &Path,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // --- opcodes ------------------------------------------------------
    let opcodes = parse_opcode_consts(protocol);
    for op in &opcodes {
        let arm = format!("{} =>", op.name);
        let has_decode_arm = protocol
            .lines
            .iter()
            .any(|l| l.number != op.line && l.code.contains(&arm));
        if !has_decode_arm {
            out.push(Diagnostic {
                code: Code::L004,
                file: protocol.path.clone(),
                line: op.line,
                message: format!("opcode `{}` has no decode arm in protocol.rs", op.name),
            });
        }
    }

    // --- Request variants vs handler arms -----------------------------
    for v in parse_enum_variants(protocol, "Request") {
        let pat = format!("Request::{}", v.name);
        let handled = handler.lines.iter().any(|l| l.code.contains(&pat));
        if !handled {
            out.push(Diagnostic {
                code: Code::L004,
                file: handler.path.clone(),
                line: 1,
                message: format!(
                    "`Request::{}` (protocol.rs:{}) has no match arm in handler.rs",
                    v.name, v.line
                ),
            });
        }
    }

    // --- DESIGN.md opcode table ---------------------------------------
    let table = parse_design_opcode_rows(design_text);
    for op in &opcodes {
        let short = op.name.trim_start_matches("OP_");
        match table.iter().find(|r| r.name == short) {
            None => out.push(Diagnostic {
                code: Code::L004,
                file: design_path.to_path_buf(),
                line: 1,
                message: format!(
                    "opcode `{short}` ({} = {}) has no row in the DESIGN.md opcode table",
                    op.name, op.value
                ),
            }),
            Some(row) if row.value != op.value => out.push(Diagnostic {
                code: Code::L004,
                file: design_path.to_path_buf(),
                line: row.line,
                message: format!(
                    "DESIGN.md lists `{short}` as {}, but protocol.rs says {} = {}",
                    row.value, op.name, op.value
                ),
            }),
            Some(_) => {}
        }
    }
    for row in &table {
        if !opcodes
            .iter()
            .any(|op| op.name.trim_start_matches("OP_") == row.name)
        {
            out.push(Diagnostic {
                code: Code::L004,
                file: design_path.to_path_buf(),
                line: row.line,
                message: format!(
                    "DESIGN.md opcode table lists `{}` ({}), which protocol.rs does not define",
                    row.name, row.value
                ),
            });
        }
    }

    // --- BstError → WireError mapping ---------------------------------
    for v in parse_enum_variants(error, "BstError") {
        let pat = format!("BstError::{}", v.name);
        let mapped = protocol.lines.iter().any(|l| l.code.contains(&pat));
        if !mapped {
            out.push(Diagnostic {
                code: Code::L004,
                file: error.path.clone(),
                line: v.line,
                message: format!(
                    "`BstError::{}` has no explicit `WireError` mapping arm in protocol.rs (the catch-all would hide it)",
                    v.name
                ),
            });
        }
    }

    // --- PROTO_VERSION ------------------------------------------------
    match parse_proto_version(protocol) {
        None => out.push(Diagnostic {
            code: Code::L004,
            file: protocol.path.clone(),
            line: 1,
            message: "no `PROTO_VERSION` constant found in protocol.rs".to_string(),
        }),
        Some((version, _)) => {
            let mentioned = design_text
                .lines()
                .enumerate()
                .find(|(_, l)| l.contains("PROTO_VERSION"));
            match mentioned {
                None => out.push(Diagnostic {
                    code: Code::L004,
                    file: design_path.to_path_buf(),
                    line: 1,
                    message:
                        "DESIGN.md never states PROTO_VERSION; the frame-format section must pin it"
                            .to_string(),
                }),
                Some((idx, l)) => {
                    let agrees = l
                        .split(|c: char| !c.is_ascii_digit())
                        .any(|tok| tok == version.to_string());
                    if !agrees {
                        out.push(Diagnostic {
                            code: Code::L004,
                            file: design_path.to_path_buf(),
                            line: idx + 1,
                            message: format!(
                                "DESIGN.md's PROTO_VERSION line does not carry the protocol.rs value {version}"
                            ),
                        });
                    }
                }
            }
        }
    }

    out
}

/// An `OP_*` constant parsed from protocol.rs.
#[derive(Debug)]
struct OpConst {
    name: String,
    value: u64,
    line: usize,
}

/// Parses `const OP_NAME: u8 = N;` lines.
fn parse_opcode_consts(file: &SourceFile) -> Vec<OpConst> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let t = line.code.trim();
        let t = t.strip_prefix("pub ").unwrap_or(t);
        let Some(rest) = t.strip_prefix("const OP_") else {
            continue;
        };
        let Some((name_tail, rhs)) = rest.split_once(':') else {
            continue;
        };
        let Some((_, value)) = rhs.split_once('=') else {
            continue;
        };
        let value = value.trim().trim_end_matches(';').trim();
        if let Ok(v) = value.parse::<u64>() {
            out.push(OpConst {
                name: format!("OP_{}", name_tail.trim()),
                value: v,
                line: line.number,
            });
        }
    }
    out
}

/// A variant of a parsed enum.
#[derive(Debug)]
struct Variant {
    name: String,
    line: usize,
}

/// Parses the variants of `enum <name>` from a scanned file: lines one
/// brace level inside the enum whose first token is a capitalized
/// identifier.
fn parse_enum_variants(file: &SourceFile, name: &str) -> Vec<Variant> {
    let decl_a = format!("enum {name} {{");
    let decl_b = format!("enum {name}{{");
    let mut out = Vec::new();
    let mut inside: Option<usize> = None; // enum's body depth
    for line in &file.lines {
        match inside {
            None => {
                let compact = line.code.trim();
                if compact.contains(&decl_a) || compact.contains(&decl_b) {
                    inside = Some(line.depth_start + 1);
                }
            }
            Some(d) => {
                if line.depth_end < d {
                    break; // enum closed
                }
                if line.depth_start != d {
                    continue; // field lines of a struct variant
                }
                let t = line.code.trim();
                let ident: String = t
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    out.push(Variant {
                        name: ident,
                        line: line.number,
                    });
                }
            }
        }
    }
    out
}

/// A row of the DESIGN.md opcode table.
#[derive(Debug)]
struct DesignRow {
    name: String,
    value: u64,
    line: usize,
}

/// Parses markdown table rows whose first cell is a backticked
/// `UPPER_SNAKE` opcode name and whose second cell is an integer.
fn parse_design_opcode_rows(text: &str) -> Vec<DesignRow> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let t = raw.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim_matches('`');
        let is_opcode_name = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit());
        let Ok(value) = cells[1].parse::<u64>() else {
            continue;
        };
        if is_opcode_name && cells[0].starts_with('`') {
            out.push(DesignRow {
                name: name.to_string(),
                value,
                line: idx + 1,
            });
        }
    }
    out
}

/// Parses `pub const PROTO_VERSION: u8 = N;`, returning `(N, line)`.
fn parse_proto_version(file: &SourceFile) -> Option<(u64, usize)> {
    for line in &file.lines {
        let t = line.code.trim();
        let t = t.strip_prefix("pub ").unwrap_or(t);
        if let Some(rest) = t.strip_prefix("const PROTO_VERSION") {
            let value = rest.split('=').nth(1)?.trim().trim_end_matches(';').trim();
            if let Ok(v) = value.parse::<u64>() {
                return Some((v, line.number));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn scan(name: &str, text: &str) -> SourceFile {
        scan_source(PathBuf::from(name), text)
    }

    const PROTO: &str = "pub const PROTO_VERSION: u8 = 1;\nconst OP_PING: u8 = 1;\nconst OP_CREATE: u8 = 2;\npub enum Request {\n    Ping,\n    Create {\n        keys: Vec<u64>,\n    },\n}\nfn get_request() {\n    match opcode {\n        OP_PING => Request::Ping,\n        OP_CREATE => Request::Create { keys: k },\n    }\n}\nfn map() {\n    match e {\n        BstError::EmptyFilter => WireError::EmptyFilter,\n    }\n}\n";
    const HANDLER: &str = "fn handle(req: Request) {\n    match req {\n        Request::Ping => {}\n        Request::Create { keys } => {}\n    }\n}\n";
    const ERRORS: &str = "pub enum BstError {\n    EmptyFilter,\n}\n";
    const DESIGN: &str =
        "PROTO_VERSION = 1\n\n| opcode | byte |\n|---|---|\n| `PING` | 1 |\n| `CREATE` | 2 |\n";

    fn run(proto: &str, handler: &str, errors: &str, design: &str) -> Vec<Diagnostic> {
        l004_protocol_drift(
            &scan("protocol.rs", proto),
            &scan("handler.rs", handler),
            &scan("error.rs", errors),
            design,
            Path::new("DESIGN.md"),
        )
    }

    #[test]
    fn consistent_surface_is_clean() {
        let d = run(PROTO, HANDLER, ERRORS, DESIGN);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_handler_arm_is_flagged() {
        let handler =
            "fn handle(req: Request) {\n    match req {\n        Request::Ping => {}\n    }\n}\n";
        let d = run(PROTO, handler, ERRORS, DESIGN);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Request::Create"));
    }

    #[test]
    fn missing_design_row_and_value_drift_are_flagged() {
        let design = "PROTO_VERSION = 1\n\n| `PING` | 1 |\n";
        let d = run(PROTO, HANDLER, ERRORS, design);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("CREATE"));

        let drifted = "PROTO_VERSION = 1\n\n| `PING` | 1 |\n| `CREATE` | 9 |\n";
        let d = run(PROTO, HANDLER, ERRORS, drifted);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("protocol.rs says OP_CREATE = 2"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn stale_design_row_is_flagged() {
        let design = "PROTO_VERSION = 1\n\n| `PING` | 1 |\n| `CREATE` | 2 |\n| `GONE` | 7 |\n";
        let d = run(PROTO, HANDLER, ERRORS, design);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("GONE"));
    }

    #[test]
    fn unmapped_bst_error_variant_is_flagged() {
        let errors = "pub enum BstError {\n    EmptyFilter,\n    NewThing,\n}\n";
        let d = run(PROTO, HANDLER, errors, DESIGN);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("NewThing"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn proto_version_drift_is_flagged() {
        let design = "PROTO_VERSION = 2\n\n| `PING` | 1 |\n| `CREATE` | 2 |\n";
        let d = run(PROTO, HANDLER, ERRORS, design);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("PROTO_VERSION"));
    }

    #[test]
    fn opcode_without_decode_arm_is_flagged() {
        let proto = "pub const PROTO_VERSION: u8 = 1;\nconst OP_PING: u8 = 1;\nfn get_request() {}\nfn map() { let _ = BstError::EmptyFilter; }\n";
        let design = "PROTO_VERSION = 1\n\n| `PING` | 1 |\n";
        let d = run(proto, HANDLER, ERRORS, design);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no decode arm"));
    }
}
