//! Diagnostics, stable lint codes, and the inline waiver syntax.
//!
//! Waiver syntax (in any comment):
//!
//! ```text
//! // bst-lint: allow(L001) — <justification>
//! ```
//!
//! A waiver suppresses the named code(s) on its own line and on the
//! immediately following line (so both trailing and preceding placement
//! work). The justification is mandatory: a waiver without one is
//! itself a finding (`W001`), because an unexplained suppression is
//! exactly the kind of convention drift this tool exists to catch.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

use crate::scan::SourceFile;

/// Stable lint codes. New lints append; codes are never renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Panic-freedom: no `unwrap()`/`expect()`/`panic!`/`unreachable!`/
    /// `todo!`/`unimplemented!` in non-test code of serving-path crates.
    L001,
    /// Codec discipline: little-endian only, bounded allocation on
    /// decode paths.
    L002,
    /// Lock discipline: parking_lot only in library crates, acquisitions
    /// follow the declared lock-order manifest.
    L003,
    /// Protocol drift: opcodes, handler arms, DESIGN.md rows, error
    /// mappings and `PROTO_VERSION` must agree.
    L004,
    /// Unsafe hygiene: `#![forbid(unsafe_code)]` on every first-party
    /// crate root, no `unsafe` tokens anywhere first-party.
    L005,
    /// A malformed waiver (missing justification or unknown code).
    W001,
}

impl Code {
    /// Parses `"L001"`-style names (used by waiver parsing).
    pub fn parse(s: &str) -> Option<Code> {
        match s.trim() {
            "L001" => Some(Code::L001),
            "L002" => Some(Code::L002),
            "L003" => Some(Code::L003),
            "L004" => Some(Code::L004),
            "L005" => Some(Code::L005),
            _ => None,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Code::L001 => "L001",
            Code::L002 => "L002",
            Code::L003 => "L003",
            Code::L004 => "L004",
            Code::L005 => "L005",
            Code::W001 => "W001",
        };
        f.write_str(s)
    }
}

/// One finding: a stable code, a `file:line` anchor, and the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    /// Path relative to the analysis root.
    pub file: PathBuf,
    /// 1-based; 0 for whole-file findings with no better anchor.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.code,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Waivers extracted from one file: line → codes suppressed on that
/// line, plus the malformed-waiver findings.
#[derive(Debug, Default)]
pub struct Waivers {
    /// Suppressions: `(line, code)` pairs that findings are checked
    /// against.
    allowed: HashMap<usize, Vec<Code>>,
}

impl Waivers {
    /// True when `code` at `line` is covered by a waiver on this line or
    /// the line above.
    pub fn covers(&self, line: usize, code: Code) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allowed.get(l).is_some_and(|cs| cs.contains(&code)))
    }
}

/// Parses every waiver comment in `file`. Returns the suppression table
/// and W001 findings for malformed waivers.
pub fn parse_waivers(file: &SourceFile) -> (Waivers, Vec<Diagnostic>) {
    let mut waivers = Waivers::default();
    let mut bad = Vec::new();
    for line in &file.lines {
        let Some(at) = line.comment.find("bst-lint:") else {
            continue;
        };
        let rest = line.comment[at + "bst-lint:".len()..].trim_start();
        let mut fail = |why: &str| {
            bad.push(Diagnostic {
                code: Code::W001,
                file: file.path.clone(),
                line: line.number,
                message: format!("malformed waiver: {why}"),
            });
        };
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail("expected `allow(<code>)` after `bst-lint:`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("unclosed `allow(`");
            continue;
        };
        let mut codes = Vec::new();
        let mut unknown = false;
        for part in rest[..close].split(',') {
            match Code::parse(part) {
                Some(c) => codes.push(c),
                None => {
                    fail(&format!("unknown lint code `{}`", part.trim()));
                    unknown = true;
                }
            }
        }
        if unknown || codes.is_empty() {
            if codes.is_empty() && !unknown {
                fail("empty code list");
            }
            continue;
        }
        // Justification: a dash separator followed by non-empty prose.
        let after = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ' '])
            .trim();
        if after.is_empty() {
            fail("missing justification (write `— <why this is sound>`)");
            continue;
        }
        waivers
            .allowed
            .entry(line.number)
            .or_default()
            .extend(codes);
    }
    (waivers, bad)
}

/// Applies waivers: returns the findings not covered, in place.
pub fn suppress(findings: Vec<Diagnostic>, waivers: &Waivers) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| !waivers.covers(d.line, d.code))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn scan(text: &str) -> SourceFile {
        scan_source(PathBuf::from("t.rs"), text)
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let f = scan("x.unwrap(); // bst-lint: allow(L001) — caller checked is_some\n");
        let (w, bad) = parse_waivers(&f);
        assert!(bad.is_empty());
        assert!(w.covers(1, Code::L001));
        assert!(!w.covers(1, Code::L002));
    }

    #[test]
    fn preceding_waiver_covers_next_line() {
        let f = scan("// bst-lint: allow(L003) — init order, no other lock held\nfoo();\n");
        let (w, bad) = parse_waivers(&f);
        assert!(bad.is_empty());
        assert!(w.covers(2, Code::L003));
        assert!(!w.covers(3, Code::L003));
    }

    #[test]
    fn waiver_without_justification_is_w001() {
        let f = scan("// bst-lint: allow(L001)\nx.unwrap();\n");
        let (w, bad) = parse_waivers(&f);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].code, Code::W001);
        assert_eq!(bad[0].line, 1);
        assert!(!w.covers(2, Code::L001));
    }

    #[test]
    fn waiver_with_unknown_code_is_w001() {
        let f = scan("// bst-lint: allow(L999) — whatever\n");
        let (_, bad) = parse_waivers(&f);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn multi_code_waiver() {
        let f = scan("thing(); // bst-lint: allow(L001, L003) — both justified here\n");
        let (w, bad) = parse_waivers(&f);
        assert!(bad.is_empty());
        assert!(w.covers(1, Code::L001) && w.covers(1, Code::L003));
    }

    #[test]
    fn hyphen_dash_accepted() {
        let f = scan("x(); // bst-lint: allow(L001) - plain hyphen works too\n");
        let (w, bad) = parse_waivers(&f);
        assert!(bad.is_empty());
        assert!(w.covers(1, Code::L001));
    }
}
