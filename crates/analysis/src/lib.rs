#![forbid(unsafe_code)]
//! `bst-analysis` — the workspace invariant analyzer.
//!
//! The system's headline guarantees are invariants that live in
//! conventions: every snapshot and frame is little-endian
//! byte-deterministic, the serving path never panics, locking is
//! parking_lot-only and ordered, and the wire protocol's three
//! artifacts (opcode constants, dispatch, DESIGN.md) agree. This crate
//! machine-checks those conventions as a CI gate:
//!
//! ```text
//! cargo run --release -p bst-analysis -- check
//! ```
//!
//! Lints (stable codes; see [`diag::Code`]):
//!
//! | code | invariant |
//! |---|---|
//! | L001 | panic-freedom of the serving-path crates |
//! | L002 | codec discipline: LE-only, bounded decode allocations |
//! | L003 | lock discipline: parking_lot-only, manifest-ordered |
//! | L004 | protocol drift: opcodes/handlers/DESIGN.md/error mapping |
//! | L005 | unsafe hygiene: `#![forbid(unsafe_code)]`, no `unsafe` |
//! | W001 | malformed waiver |
//!
//! A finding is suppressed by an inline waiver **with justification**:
//!
//! ```text
//! handles.join().expect("worker"); // bst-lint: allow(L001) — worker panics must propagate
//! ```
//!
//! Everything is built on a comment/string/`#[cfg(test)]`-aware line
//! scanner ([`scan`]), so doc examples, string literals and test
//! modules never false-positive.

pub mod config;
pub mod diag;
pub mod drift;
pub mod lints;
pub mod scan;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use diag::{Code, Diagnostic};

/// Runs every configured lint over the tree and returns the surviving
/// findings (waived findings are dropped; malformed waivers are W001
/// findings), sorted by file then line then code.
pub fn analyze(cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut findings = Vec::new();

    // Collect the union of files each lint wants, scanning each once.
    let mut files: BTreeSet<PathBuf> = BTreeSet::new();
    for dir in cfg.panic_free_dirs.iter().chain(&cfg.lint_dirs) {
        collect_rs(&cfg.root.join(dir), dir, &mut files)?;
    }
    for f in cfg.codec_files.iter().chain(&cfg.crate_roots) {
        if cfg.root.join(f).is_file() {
            files.insert(f.clone());
        }
    }
    if let Some(p) = &cfg.protocol {
        for f in [&p.protocol_rs, &p.handler_rs, &p.error_rs] {
            if cfg.root.join(f).is_file() {
                files.insert(f.clone());
            }
        }
    }

    let mut scanned = Vec::new();
    for rel in &files {
        let text = fs::read_to_string(cfg.root.join(rel))?;
        scanned.push(scan::scan_source(rel.clone(), &text));
    }

    let in_scope = |rel: &Path, dirs: &[PathBuf]| dirs.iter().any(|d| rel.starts_with(d));

    for file in &scanned {
        let (waivers, mut malformed) = diag::parse_waivers(file);
        let mut local = Vec::new();
        if in_scope(&file.path, &cfg.panic_free_dirs) {
            local.extend(lints::l001_panic_freedom(file));
        }
        if cfg.codec_files.iter().any(|f| f == &file.path) {
            local.extend(lints::l002_codec_discipline(file));
        }
        if in_scope(&file.path, &cfg.lint_dirs) {
            local.extend(lints::l003_lock_discipline(file));
            local.extend(lints::l005_no_unsafe(file));
        }
        if cfg.crate_roots.iter().any(|f| f == &file.path) {
            local.extend(lints::l005_crate_root(file));
        }
        findings.extend(diag::suppress(local, &waivers));
        findings.append(&mut malformed);
    }

    if let Some(p) = &cfg.protocol {
        let find = |rel: &PathBuf| scanned.iter().find(|s| &s.path == rel);
        match (
            find(&p.protocol_rs),
            find(&p.handler_rs),
            find(&p.error_rs),
        ) {
            (Some(proto), Some(handler), Some(error)) => {
                let design = fs::read_to_string(cfg.root.join(&p.design_md)).unwrap_or_default();
                if design.is_empty() {
                    findings.push(Diagnostic {
                        code: Code::L004,
                        file: p.design_md.clone(),
                        line: 1,
                        message: "DESIGN.md missing or empty: the protocol surface must be documented".to_string(),
                    });
                } else {
                    findings.extend(drift::l004_protocol_drift(
                        proto,
                        handler,
                        error,
                        &design,
                        &p.design_md,
                    ));
                }
            }
            _ => findings.push(Diagnostic {
                code: Code::L004,
                file: p.protocol_rs.clone(),
                line: 1,
                message: "protocol drift surface incomplete: protocol.rs / handler.rs / error.rs not all present".to_string(),
            }),
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.code)
            .cmp(&(&b.file, b.line, b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(findings)
}

/// Recursively collects `.rs` files under `abs`, recording them as
/// `rel`-prefixed relative paths.
fn collect_rs(abs: &Path, rel: &Path, out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    if !abs.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(abs)? {
        let entry = entry?;
        let ty = entry.file_type()?;
        let name = entry.file_name();
        let rel_child = rel.join(&name);
        if ty.is_dir() {
            collect_rs(&entry.path(), &rel_child, out)?;
        } else if ty.is_file() && name.to_string_lossy().ends_with(".rs") {
            out.insert(rel_child);
        }
    }
    Ok(())
}
