#![forbid(unsafe_code)]
//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run --release -p bst-analysis -- check [--root <dir>]
//! cargo run --release -p bst-analysis -- list
//! ```
//!
//! `check` exits 0 on a clean tree and 1 with one `CODE file:line
//! message` diagnostic per finding otherwise; `list` prints the lint
//! table. Without `--root`, the workspace root is found by walking up
//! from the current directory to the first `Cargo.toml` declaring
//! `[workspace]`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use bst_analysis::{analyze, Config};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("list") => {
            print!("{}", lint_table());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: bst-analysis check [--root <dir>] | bst-analysis list");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(Some(root)) => root,
        Ok(None) => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("bst-analysis: no workspace root found above the current directory (pass --root)");
                return ExitCode::from(2);
            }
        },
        Err(msg) => {
            eprintln!("bst-analysis: {msg}");
            return ExitCode::from(2);
        }
    };

    let cfg = Config::workspace(root.clone());
    match analyze(&cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("bst-analysis: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for d in &findings {
                println!("{d}");
            }
            println!("bst-analysis: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bst-analysis: analysis failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_root(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => Ok(None),
        [flag, root] if flag == "--root" => Ok(Some(PathBuf::from(root))),
        _ => Err(format!("unrecognized arguments: {args:?}")),
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_table() -> String {
    [
        "L001  panic-freedom: no unwrap/expect/panic!/unreachable!/todo!/unimplemented!",
        "      in non-test code of the serving-path crates (bloom/core/shard/server)",
        "L002  codec discipline: little-endian only; decode-path allocations bounded",
        "      (crates/core/src/persistence.rs, crates/bloom/src/codec.rs,",
        "       crates/server/src/{frame,protocol}.rs)",
        "L003  lock discipline: parking_lot only in library crates; acquisitions follow",
        "      the manifest: store set-lock -> tree lock -> query/session state",
        "L004  protocol drift: every opcode decoded + handled + documented in DESIGN.md,",
        "      every BstError variant mapped to WireError, PROTO_VERSION agrees",
        "L005  unsafe hygiene: #![forbid(unsafe_code)] on every first-party crate root,",
        "      no `unsafe` tokens in first-party code",
        "W001  malformed waiver (missing justification or unknown code)",
        "",
        "waiver syntax:  // bst-lint: allow(L001) — <justification>",
        "  (covers its own line and the next; the justification is mandatory)",
    ]
    .join("\n")
        + "\n"
}
