//! The comment/string/`#[cfg(test)]`-aware line scanner every lint runs
//! on.
//!
//! Lints in this crate are *textual* — they look for tokens like
//! `.unwrap()` or `to_be_bytes` — so the scanner's whole job is making
//! textual matching sound: a `panic!` inside a doc example, a string
//! literal, or a `#[cfg(test)]` module is not a finding. Each source
//! line is split into a *code* channel (literal bodies and comments
//! masked to spaces, quotes and structure preserved) and a *comment*
//! channel (where waivers live), plus brace-depth and test-region
//! bookkeeping that the function-span and `cfg(test)` logic build on.

use std::path::PathBuf;

/// One scanned source line: the masked code text, the comment text, and
/// where it sits structurally.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Source text with comment bodies and string/char literal contents
    /// replaced by spaces. Quotes and all structural characters survive,
    /// so token searches and brace counting behave as if literals were
    /// empty.
    pub code: String,
    /// Concatenated comment text on this line (line and block comments,
    /// doc comments included) — the channel waivers are parsed from.
    pub comment: String,
    /// Brace depth at the start of the line (code channel only).
    pub depth_start: usize,
    /// Brace depth after the line.
    pub depth_end: usize,
    /// True inside a `#[cfg(test)]` item (the attribute line itself
    /// included): lints that exempt test code skip these lines.
    pub in_test: bool,
}

/// A whole scanned file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (relative to the analysis root).
    pub path: PathBuf,
    pub lines: Vec<Line>,
}

/// A function body span over scanned lines, for per-function lints
/// (decode-path allocation guards, lock-acquisition order).
#[derive(Debug)]
pub struct FnSpan {
    /// Identifier following the `fn` keyword.
    pub name: String,
    /// 1-based first line (the `fn` line).
    pub start: usize,
    /// 1-based last line (where the body's brace closes).
    pub end: usize,
}

/// What the character-level pass is currently inside of.
enum Mode {
    Code,
    /// Block comment, with nesting depth (Rust block comments nest).
    Block(usize),
    /// String literal; the flag notes a pending backslash escape.
    Str {
        escape: bool,
    },
    /// Raw string literal terminated by `"` + this many `#`s.
    RawStr {
        hashes: usize,
    },
}

/// Scans `text` into masked lines. The path is carried through for
/// diagnostics only; no I/O happens here.
pub fn scan_source(path: PathBuf, text: &str) -> SourceFile {
    let mut mode = Mode::Code;
    let mut raw_lines: Vec<(String, String)> = Vec::new();

    for line in text.lines() {
        let bytes: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            match &mut mode {
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment (doc comments included): the rest
                        // of the line is comment text.
                        comment.push_str(&line[line.len() - count_len(&bytes[i..])..]);
                        code.extend(std::iter::repeat_n(' ', bytes.len() - i));
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str { escape: false };
                        code.push('"');
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&bytes, i)
                        && raw_str_hashes(&bytes[i + 1..]).is_some()
                    {
                        let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                        mode = Mode::RawStr { hashes };
                        // Mask `r##"` as spaces + quote so brace counts hold.
                        code.extend(std::iter::repeat_n(' ', 1 + hashes));
                        code.push('"');
                        i += 2 + hashes;
                    } else if c == 'b'
                        && bytes.get(i + 1) == Some(&'"')
                        && !prev_is_ident(&bytes, i)
                    {
                        mode = Mode::Str { escape: false };
                        code.push(' ');
                        code.push('"');
                        i += 2;
                    } else if c == '\'' {
                        // Char literal vs. lifetime. `'\x'`-style escapes
                        // and `'c'` are literals; `'a` followed by
                        // anything but a closing quote is a lifetime.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: consume through the
                            // closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push('\'');
                            code.extend(std::iter::repeat_n(' ', j.saturating_sub(i + 1)));
                            if j < bytes.len() {
                                code.push('\'');
                                j += 1;
                            }
                            i = j;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            // Lifetime or label: plain code.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                Mode::Block(depth) => {
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        if *depth == 0 {
                            mode = Mode::Code;
                        }
                        code.push_str("  ");
                        i += 2;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str { escape } => {
                    if *escape {
                        *escape = false;
                        code.push(' ');
                        i += 1;
                    } else if c == '\\' {
                        *escape = true;
                        code.push(' ');
                        i += 1;
                    } else if c == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw(&bytes[i + 1..], *hashes) {
                        let h = *hashes;
                        mode = Mode::Code;
                        code.push('"');
                        code.extend(std::iter::repeat_n(' ', h));
                        i += 1 + h;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A string/raw-string continues across lines; escapes don't span
        // the newline.
        if let Mode::Str { escape } = &mut mode {
            *escape = false;
        }
        raw_lines.push((code, comment));
    }

    SourceFile {
        path,
        lines: structure_pass(raw_lines),
    }
}

/// Second pass: brace depth per line plus `#[cfg(test)]` region marking.
fn structure_pass(raw: Vec<(String, String)>) -> Vec<Line> {
    let mut lines = Vec::with_capacity(raw.len());
    let mut depth = 0usize;
    // `Some(d)`: a `#[cfg(test)]` attribute was seen at depth `d` and we
    // are waiting for the item it gates to open (`{`) or end (`;`).
    let mut pending_test: Option<usize> = None;
    // `Some(d)`: inside a test item whose body opened at depth `d`; the
    // region ends when depth returns to `d`.
    let mut test_region: Option<usize> = None;

    for (idx, (code, comment)) in raw.into_iter().enumerate() {
        let depth_start = depth;
        let mut opened = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        let mut in_test = test_region.is_some();

        if let Some(d) = pending_test {
            in_test = true;
            if opened {
                pending_test = None;
                if depth > d {
                    // Item body still open at end of line.
                    test_region = Some(d);
                } // else: one-line `#[cfg(test)] mod t { .. }` item.
            } else if code.contains(';') && depth <= d {
                // Braceless gated item (`#[cfg(test)] use ..;`).
                pending_test = None;
            }
        }
        if is_cfg_test_attr(&code) {
            in_test = true;
            if test_region.is_none() && pending_test.is_none() {
                pending_test = Some(depth_start);
            }
        }
        if let Some(d) = test_region {
            in_test = true;
            if depth <= d {
                test_region = None;
            }
        }

        lines.push(Line {
            number: idx + 1,
            code,
            comment,
            depth_start,
            depth_end: depth,
            in_test,
        });
    }
    lines
}

/// Does the masked code carry a `#[cfg(test)]`-style attribute?
/// (`cfg(all(test, ..))` / `cfg(any(test, ..))` count too.)
fn is_cfg_test_attr(code: &str) -> bool {
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    compact.contains("#[cfg(test)]")
        || compact.contains("#[cfg(all(test")
        || compact.contains("#[cfg(any(test")
}

/// Extracts function body spans from a scanned file. Bodyless trait
/// signatures are skipped; nested functions yield nested spans and each
/// is checked independently by per-function lints.
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut open: Vec<(String, usize, usize)> = Vec::new(); // (name, start, decl depth)

    for line in &file.lines {
        if let Some(name) = fn_name(&line.code) {
            if line.code.contains(';') && !line.code.contains('{') {
                // Trait/extern signature without a body.
            } else {
                open.push((name, line.number, line.depth_start));
            }
        }
        while let Some(&(_, start, d)) = open.last() {
            let same_line_body = line.number == start && line.code.contains('{');
            if line.depth_end <= d && (line.number > start || same_line_body) {
                if let Some((name, start, _)) = open.pop() {
                    spans.push(FnSpan {
                        name,
                        start,
                        end: line.number,
                    });
                }
            } else {
                break;
            }
        }
    }
    // Close any span left open at EOF (unbalanced input).
    let last = file.lines.len();
    for (name, start, _) in open {
        spans.push(FnSpan {
            name,
            start,
            end: last,
        });
    }
    spans.sort_by_key(|s| s.start);
    spans
}

/// The identifier after a `fn ` keyword on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while let Some(pos) = code[i..].find("fn ") {
        let at = i + pos;
        let prev_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if prev_ok {
            let rest = code[at + 3..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        i = at + 3;
    }
    None
}

/// Length in bytes of the suffix of the original line represented by
/// this char tail (chars may be multi-byte).
fn count_len(tail: &[char]) -> usize {
    tail.iter().map(|c| c.len_utf8()).sum()
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == '_')
}

/// `r` has been seen; does a raw string opener (`#*"`）follow?
fn raw_str_hashes(rest: &[char]) -> Option<usize> {
    let mut h = 0;
    while rest.get(h) == Some(&'#') {
        h += 1;
    }
    (rest.get(h) == Some(&'"')).then_some(h)
}

/// Inside a raw string after a `"`: do `hashes` `#`s follow?
fn closes_raw(rest: &[char], hashes: usize) -> bool {
    (0..hashes).all(|j| rest.get(j) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        scan_source(PathBuf::from("t.rs"), text)
    }

    #[test]
    fn masks_line_comments_and_keeps_text() {
        let f = scan("let x = 1; // panic!(\"no\")\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].comment.contains("panic!"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn masks_string_literals() {
        let f = scan("let s = \"call .unwrap() now\";\n");
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[0].code.contains("let s = \""));
    }

    #[test]
    fn masks_raw_strings_across_lines() {
        let f = scan("let s = r#\"one .unwrap()\ntwo panic!\"#;\nlet y = 2;\n");
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(!f.lines[1].code.contains("panic!"));
        assert!(f.lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn masks_block_comments_nested() {
        let f = scan("a /* x /* y */ panic! */ b\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains('a'));
        assert!(f.lines[0].code.contains('b'));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = scan("let q = '\"'; let p = .unwrap();\n");
        assert!(f.lines[0].code.contains(".unwrap()"));
        let f = scan("let q = '\\''; let p = .unwrap();\n");
        assert!(f.lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn lifetimes_are_code() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = scan(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_single_fn() {
        let text = "#[cfg(test)]\nfn helper() {\n    boom();\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[0].in_test && f.lines[1].in_test && f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let text = "fn a() {\n    one();\n}\n\nfn b() { two() }\n";
        let f = scan(text);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 2);
        assert_eq!(
            (spans[0].name.as_str(), spans[0].start, spans[0].end),
            ("a", 1, 3)
        );
        assert_eq!(
            (spans[1].name.as_str(), spans[1].start, spans[1].end),
            ("b", 5, 5)
        );
    }

    #[test]
    fn trait_signatures_have_no_span() {
        let f = scan("trait T {\n    fn sig(&self) -> u32;\n}\n");
        let spans = fn_spans(&f);
        assert!(spans.is_empty(), "{spans:?}");
    }
}
