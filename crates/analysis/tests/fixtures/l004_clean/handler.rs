pub fn handle(req: Request) {
    match req {
        Request::Ping => {}
        Request::Create { keys } => drop(keys),
    }
}
