pub const PROTO_VERSION: u8 = 1;
const OP_PING: u8 = 1;
const OP_CREATE: u8 = 2;

pub enum Request {
    Ping,
    Create { keys: Vec<u64> },
}

pub fn get_request(opcode: u8) -> Request {
    match opcode {
        OP_PING => Request::Ping,
        OP_CREATE => Request::Create { keys: Vec::new() },
        _ => Request::Ping,
    }
}

pub fn encode_error(e: &BstError) -> u8 {
    match e {
        BstError::EmptyFilter => 1,
        BstError::NoLiveLeaf => 2,
    }
}
