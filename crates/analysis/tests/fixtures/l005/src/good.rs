#![forbid(unsafe_code)]
//! The negative half of the L005 fixture: carries the attribute and no
//! `unsafe` tokens in code.

pub fn fine() -> usize {
    "unsafe only in a string".len()
}
