//! L005 fixture: a crate root missing `#![forbid(unsafe_code)]` with a
//! real `unsafe` block; `good.rs` is the negative half.

pub fn tricky(len: usize, cap: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(cap);
    unsafe { v.set_len(len) }
    v
}

pub fn negatives() -> &'static str {
    // mentioning unsafe in a comment is fine
    "the word unsafe in a string is fine"
}
