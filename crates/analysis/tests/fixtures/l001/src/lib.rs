//! L001 fixture: panic sites in non-test code, with negatives for
//! comments, strings, lookalikes, doc examples, tests and waivers.
//!
//! ```
//! let x: Option<u32> = None;
//! x.unwrap(); // doc-comment example: not a finding
//! ```

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

pub fn bad_macros(n: u32) -> u32 {
    match n {
        0 => panic!("fixture"),
        _ => unreachable!(),
    }
}

pub fn lookalikes(x: Option<u32>, r: Result<u32, u32>) -> u32 {
    let a = x.unwrap_or_else(|| 7);
    let b = r.expect_err("fixture-negative");
    let s = "calling .unwrap() in a string is fine";
    a + b + s.len() as u32 // .unwrap() in a comment is fine
}

pub fn waived(x: Option<u32>) -> u32 {
    // bst-lint: allow(L001) — fixture: a justified waiver suppresses the finding
    x.unwrap()
}

pub fn badly_waived(x: Option<u32>) -> u32 {
    // bst-lint: allow(L001)
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::bad_unwrap(Some(3)), 3);
        Some(1).unwrap();
        panic!("fine in test code");
    }
}
