pub enum BstError {
    EmptyFilter,
    NoLiveLeaf,
}
