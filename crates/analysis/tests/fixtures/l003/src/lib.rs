//! L003 fixture: std::sync primitives and lock-order violations, with
//! ordered-acquisition, atomics and waived-inversion negatives.

use std::sync::Arc; // fine: Arc is not a lock
use std::sync::atomic::AtomicU64; // fine: atomics are not locks
use std::sync::Mutex; // violation: parking_lot only
use std::sync::RwLock; // violation: parking_lot only

pub fn ordered(inner: &Locked, tree: &Locked, state: &Locked) {
    let _i = inner.read();
    let _t = tree.read();
    let _s = state.lock();
}

pub fn inverted(tree: &Locked, state: &Locked) {
    let _s = state.lock();
    let _t = tree.read();
}

pub fn waived_inversion(inner: &Locked, state: &Locked) {
    let _s = state.lock();
    // bst-lint: allow(L003) — fixture: the guard above is dropped before this acquisition
    let _i = inner.read();
}
