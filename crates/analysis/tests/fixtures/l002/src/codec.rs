//! L002 fixture: byte-order discipline and decode-path allocation
//! bounds, with guarded / inline-min / encode-side negatives.

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes()); // LE: fine
}

pub fn bad_endian(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

pub fn get_keys(input: &[u8]) -> Vec<u64> {
    let count = input.len(); // stand-in for a decoded length field
    let out = Vec::with_capacity(count * 2);
    out
}

pub fn get_guarded(input: &[u8], count: usize) -> Vec<u64> {
    if input.len() < count * 8 {
        return Vec::new();
    }
    Vec::with_capacity(count)
}

pub fn decode_inline(count: usize, remaining: usize) -> Vec<u64> {
    Vec::with_capacity(count.min(remaining / 8))
}

pub fn encode_keys(keys: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(keys.len() * 8); // encode side: exempt
    for k in keys {
        buf.extend_from_slice(&k.to_le_bytes());
    }
    buf
}

pub fn read_header(bytes: [u8; 4]) -> u32 {
    u32::from_ne_bytes(bytes)
}

pub fn get_blocked_words(input: &[u8]) -> Vec<u64> {
    let n_words = input.len(); // stand-in for the decoded word-count field
    Vec::with_capacity(n_words * 8) // sized from the unvalidated claim: flagged
}

pub fn decode_blocked(input: &[u8], m: usize) -> Vec<u64> {
    // blocked-codec shape: the claimed word count is pinned to the
    // declared geometry and the byte budget before any allocation
    let n_words = m.div_ceil(64);
    if input.remaining() < n_words * 8 {
        return Vec::new();
    }
    Vec::with_capacity(n_words)
}
