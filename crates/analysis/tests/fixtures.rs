//! End-to-end lint coverage over the fixture trees in
//! `tests/fixtures/`: every lint is exercised positively (each planted
//! violation is reported with the exact `(code, file, line)` anchor)
//! and negatively (the adjacent clean constructions stay silent), and
//! the real workspace itself must analyze clean.

use std::path::{Path, PathBuf};

use bst_analysis::drift::ProtocolConfig;
use bst_analysis::{analyze, Code, Config};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A config with every scope empty, rooted at the named fixture.
fn empty_config(name: &str) -> Config {
    Config {
        root: fixture_root(name),
        panic_free_dirs: Vec::new(),
        lint_dirs: Vec::new(),
        codec_files: Vec::new(),
        crate_roots: Vec::new(),
        protocol: None,
    }
}

/// Runs the analyzer and projects findings to comparable
/// `(code, file, line)` triples (already sorted by `analyze`).
fn run(cfg: &Config) -> Vec<(Code, String, usize)> {
    analyze(cfg)
        .expect("fixture analysis must not fail")
        .into_iter()
        .map(|d| (d.code, d.file.to_string_lossy().into_owned(), d.line))
        .collect()
}

fn triples(expected: &[(Code, &str, usize)]) -> Vec<(Code, String, usize)> {
    expected
        .iter()
        .map(|(c, f, l)| (*c, (*f).to_string(), *l))
        .collect()
}

#[test]
fn l001_fixture_exact_findings() {
    let cfg = Config {
        panic_free_dirs: vec![PathBuf::from("src")],
        ..empty_config("l001")
    };
    assert_eq!(
        run(&cfg),
        triples(&[
            (Code::L001, "src/lib.rs", 10), // bad_unwrap: .unwrap()
            (Code::L001, "src/lib.rs", 14), // bad_expect: .expect(
            (Code::L001, "src/lib.rs", 19), // bad_macros: panic!
            (Code::L001, "src/lib.rs", 20), // bad_macros: unreachable!
            (Code::W001, "src/lib.rs", 37), // waiver without justification
            (Code::L001, "src/lib.rs", 38), // ...which therefore suppresses nothing
        ])
    );
}

#[test]
fn l002_fixture_exact_findings() {
    let cfg = Config {
        codec_files: vec![PathBuf::from("src/codec.rs")],
        ..empty_config("l002")
    };
    assert_eq!(
        run(&cfg),
        triples(&[
            (Code::L002, "src/codec.rs", 9),  // to_be_bytes
            (Code::L002, "src/codec.rs", 14), // unguarded decode alloc
            (Code::L002, "src/codec.rs", 38), // from_ne_bytes
            (Code::L002, "src/codec.rs", 43), // alloc sized from unvalidated claimed count
        ])
    );
}

#[test]
fn l003_fixture_exact_findings() {
    let cfg = Config {
        lint_dirs: vec![PathBuf::from("src")],
        ..empty_config("l003")
    };
    assert_eq!(
        run(&cfg),
        triples(&[
            (Code::L003, "src/lib.rs", 6),  // std::sync::Mutex
            (Code::L003, "src/lib.rs", 7),  // std::sync::RwLock
            (Code::L003, "src/lib.rs", 17), // tree lock after session state
        ])
    );
}

#[test]
fn l005_fixture_exact_findings() {
    let cfg = Config {
        lint_dirs: vec![PathBuf::from("src")],
        crate_roots: vec![PathBuf::from("src/lib.rs"), PathBuf::from("src/good.rs")],
        ..empty_config("l005")
    };
    assert_eq!(
        run(&cfg),
        triples(&[
            (Code::L005, "src/lib.rs", 1), // missing #![forbid(unsafe_code)]
            (Code::L005, "src/lib.rs", 6), // unsafe block
        ])
    );
}

fn protocol_config(name: &str) -> Config {
    Config {
        protocol: Some(ProtocolConfig {
            protocol_rs: PathBuf::from("protocol.rs"),
            handler_rs: PathBuf::from("handler.rs"),
            error_rs: PathBuf::from("error.rs"),
            design_md: PathBuf::from("DESIGN.md"),
        }),
        ..empty_config(name)
    }
}

#[test]
fn l004_drifted_fixture_exact_findings() {
    assert_eq!(
        run(&protocol_config("l004_drifted")),
        triples(&[
            (Code::L004, "DESIGN.md", 1),   // GHOST has no table row
            (Code::L004, "DESIGN.md", 3),   // PROTO_VERSION 1 vs protocol.rs 2
            (Code::L004, "DESIGN.md", 8),   // CREATE listed as 3, protocol says 2
            (Code::L004, "DESIGN.md", 9),   // GONE: stale row, no such opcode
            (Code::L004, "error.rs", 3),    // NoLiveLeaf has no WireError mapping
            (Code::L004, "handler.rs", 1),  // Request::Ghost has no handler arm
            (Code::L004, "protocol.rs", 4), // OP_GHOST has no decode arm
        ])
    );
}

#[test]
fn l004_clean_fixture_is_silent() {
    let got = run(&protocol_config("l004_clean"));
    assert!(got.is_empty(), "clean protocol fixture flagged: {got:?}");
}

/// The self-check the CI gate enforces: the real workspace, analyzed
/// with the production configuration, reports nothing.
#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let findings = analyze(&Config::workspace(root)).expect("workspace analysis must not fail");
    assert!(
        findings.is_empty(),
        "the workspace must analyze clean; found:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
