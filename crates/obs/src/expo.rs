//! Prometheus-style text exposition: a renderer over
//! [`MetricsRegistry`] and the matching well-formedness checker.
//!
//! The output follows the text format conventions: one `# HELP` and
//! `# TYPE` line per metric family, then one sample line per series.
//! Histograms render as **summaries** — `{quantile="…"}` rows plus
//! `_sum` and `_count` — rather than exploding their (deliberately
//! fine) bin grid into per-bucket rows.
//!
//! [`validate`] re-parses an exposition page and reports the first
//! malformation. The `bst-server metrics` CLI runs it before printing
//! and the CI smoke job relies on that exit code, so a renderer
//! regression can never ship a page a scraper would reject.

use crate::metrics::{MetricsRegistry, Observation, Sample};

/// Escapes a label value per the text format (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes help text (`\` and newline; quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `name{k1="v1",…}` — or just `name` without labels — with an
/// optional extra label appended (the summary `quantile`).
fn series(name: &str, labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if pairs.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", pairs.join(","))
    }
}

fn type_of(value: &Observation) -> &'static str {
    match value {
        Observation::Counter(_) => "counter",
        Observation::Gauge(_) => "gauge",
        Observation::Summary { .. } => "summary",
    }
}

fn render_sample(out: &mut String, s: &Sample) {
    match &s.value {
        Observation::Counter(v) => {
            out.push_str(&format!("{} {v}\n", series(&s.family, &s.labels, None)));
        }
        Observation::Gauge(v) => {
            out.push_str(&format!(
                "{} {}\n",
                series(&s.family, &s.labels, None),
                fmt_value(*v)
            ));
        }
        Observation::Summary {
            quantiles,
            sum,
            count,
        } => {
            for (q, v) in quantiles {
                out.push_str(&format!(
                    "{} {}\n",
                    series(&s.family, &s.labels, Some(("quantile", format!("{q}")))),
                    fmt_value(*v)
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                series(&format!("{}_sum", s.family), &s.labels, None),
                fmt_value(*sum)
            ));
            out.push_str(&format!(
                "{} {count}\n",
                series(&format!("{}_count", s.family), &s.labels, None)
            ));
        }
    }
}

/// Serialises the registry's current values as a Prometheus text page.
/// Series are grouped by family in first-registration order; each
/// family gets one `# HELP`/`# TYPE` header (the first registration's
/// help and kind win).
pub fn render(registry: &MetricsRegistry) -> String {
    let samples = registry.collect();
    let mut families: Vec<String> = Vec::new();
    for s in &samples {
        if !families.contains(&s.family) {
            families.push(s.family.clone());
        }
    }
    let mut out = String::new();
    for family in &families {
        let mut first = true;
        for s in samples.iter().filter(|s| &s.family == family) {
            if first {
                out.push_str(&format!("# HELP {family} {}\n", escape_help(&s.help)));
                out.push_str(&format!("# TYPE {family} {}\n", type_of(&s.value)));
                first = false;
            }
            render_sample(&mut out, s);
        }
    }
    out
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a label body `k1="v1",k2="v2"` respecting quotes/escapes;
/// returns `Err` on malformation.
fn check_labels(body: &str, line_no: usize) -> Result<(), String> {
    let mut rest = body;
    loop {
        let Some(eq) = rest.find('=') else {
            return Err(format!("line {line_no}: label pair without `=`"));
        };
        let key = &rest[..eq];
        if !is_name(key) {
            return Err(format!("line {line_no}: bad label name `{key}`"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        // Walk the quoted value, honouring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after.char_indices().skip(1) {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let Some(end) = end else {
            return Err(format!("line {line_no}: unterminated label value"));
        };
        rest = &after[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        let Some(stripped) = rest.strip_prefix(',') else {
            return Err(format!("line {line_no}: expected `,` between labels"));
        };
        rest = stripped;
    }
}

/// Checks that `text` is a well-formed exposition page: every sample
/// line parses (`name{labels} value` with a numeric value), every
/// sample belongs to a family announced by a preceding `# TYPE` line,
/// and at least one sample is present. Returns the number of sample
/// lines on success, the first malformation on failure.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let mut parts = meta.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {line_no}: malformed TYPE line"));
            };
            if !is_name(name) {
                return Err(format!("line {line_no}: bad family name `{name}`"));
            }
            if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                return Err(format!("line {line_no}: unknown metric type `{kind}`"));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP lines and free comments
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !is_name(name) {
            return Err(format!("line {line_no}: bad series name `{name}`"));
        }
        let mut rest = &line[name_end..];
        if let Some(body_start) = rest.strip_prefix('{') {
            let Some(close) = body_start.find('}') else {
                return Err(format!("line {line_no}: unterminated label set"));
            };
            // A `}` inside a quoted value would split early; values we
            // emit never contain one, and a scraper rejects that page
            // too, so the simple scan errs on the strict side.
            let body = &body_start[..close];
            if !body.is_empty() {
                check_labels(body, line_no)?;
            }
            rest = &body_start[close + 1..];
        }
        let value = rest.trim();
        if value.is_empty() || value.split_whitespace().count() > 1 {
            return Err(format!("line {line_no}: expected exactly one value"));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {line_no}: non-numeric value `{value}`"));
        }
        let known = declared
            .iter()
            .any(|f| name == f || name == format!("{f}_sum") || name == format!("{f}_count"));
        if !known {
            return Err(format!(
                "line {line_no}: series `{name}` has no preceding # TYPE"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let c = reg.counter("bst_demo_ops_total", "ops served", &[]);
        c.add(7);
        let g = reg.gauge("bst_demo_live", "live things", &[("kind", "conn")]);
        g.set(3);
        let h = reg.histogram(
            "bst_demo_lat_us",
            "latency",
            &[("op", "sample")],
            0.0,
            1000.0,
            100,
        );
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn renders_and_validates_roundtrip() {
        let reg = demo_registry();
        let text = render(&reg);
        assert!(text.contains("# HELP bst_demo_ops_total ops served\n"));
        assert!(text.contains("# TYPE bst_demo_ops_total counter\n"));
        assert!(text.contains("bst_demo_ops_total 7\n"));
        assert!(text.contains("bst_demo_live{kind=\"conn\"} 3\n"));
        assert!(text.contains("# TYPE bst_demo_lat_us summary\n"));
        assert!(text.contains("bst_demo_lat_us{op=\"sample\",quantile=\"0.5\"}"));
        assert!(text.contains("bst_demo_lat_us_sum{op=\"sample\"} 60\n"));
        assert!(text.contains("bst_demo_lat_us_count{op=\"sample\"} 3\n"));
        let samples = validate(&text).expect("page validates");
        // 1 counter + 1 gauge + (3 quantiles + sum + count)
        assert_eq!(samples, 7);
    }

    #[test]
    fn labeled_variants_share_one_header() {
        let reg = MetricsRegistry::new();
        reg.counter("bst_demo_x_total", "x", &[("op", "a")]).inc();
        reg.counter("bst_demo_x_total", "x", &[("op", "b")]).inc();
        let text = render(&reg);
        assert_eq!(text.matches("# TYPE bst_demo_x_total").count(), 1);
        assert_eq!(text.matches("# HELP bst_demo_x_total").count(), 1);
        assert!(text.contains("bst_demo_x_total{op=\"a\"} 1\n"));
        assert!(text.contains("bst_demo_x_total{op=\"b\"} 1\n"));
        assert_eq!(validate(&text), Ok(2));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge("bst_demo_g", "g", &[("path", "a\\b\"c\nd")])
            .set(1);
        let text = render(&reg);
        assert!(text.contains("path=\"a\\\\b\\\"c\\nd\""));
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn nan_quantiles_still_validate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("bst_demo_h", "h", &[], 0.0, 1.0, 2);
        h.record(9.0); // outlier-only: quantiles are NaN
        let text = render(&reg);
        assert!(text.contains("NaN"));
        assert!(validate(&text).is_ok());
    }

    #[test]
    fn validate_rejects_malformations() {
        assert!(validate("").is_err(), "empty page has no samples");
        assert!(validate("# TYPE a counter\n").is_err(), "no samples");
        assert!(validate("a 1\n").is_err(), "sample without TYPE");
        assert!(validate("# TYPE a counter\na one\n").is_err(), "bad value");
        assert!(validate("# TYPE a counter\na 1 2\n").is_err(), "two values");
        assert!(
            validate("# TYPE a wat\na 1\n").is_err(),
            "unknown metric type"
        );
        assert!(
            validate("# TYPE a counter\na{k=1} 1\n").is_err(),
            "unquoted label value"
        );
        assert!(
            validate("# TYPE a counter\na{k=\"v\" 1\n").is_err(),
            "unterminated labels"
        );
        assert!(
            validate("# TYPE a counter\n9bad 1\n").is_err(),
            "bad series name"
        );
    }

    #[test]
    fn validate_accepts_sum_count_of_declared_summary() {
        let page = "# TYPE s summary\ns{quantile=\"0.5\"} 1.5\ns_sum 3\ns_count 2\n";
        assert_eq!(validate(page), Ok(3));
    }
}
