//! The metrics half: lock-free recording handles and the registry that
//! names them.
//!
//! Handles are `Arc`-of-atomics: cloning one is a refcount bump, and
//! recording touches no lock — a [`Counter`] increment is one relaxed
//! `fetch_add`, an [`AtomicHistogram`] observation is two. The
//! [`MetricsRegistry`] holds one entry per series; its lock is taken
//! only at registration and at collection/render time, never on the
//! serving path.
//!
//! Series names follow Prometheus conventions
//! (`bst_<layer>_<noun>_<unit>[_total]`); [`MetricsRegistry`]
//! sanitises names at registration (invalid characters become `_`) so
//! a typo can never produce an unscrapable page.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use bst_stats::histogram::Histogram;
use parking_lot::RwLock;

/// A monotonically increasing counter (resettable only explicitly, for
/// cache-clear style lifecycle events).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero — for owners whose semantics include wholesale
    /// invalidation (e.g. the weight cache's `clear`).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous signed value (live connections, cached handles).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh zeroed gauge, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The concurrent histogram core: the same equal-width binning as
/// [`bst_stats::histogram::Histogram`], held in atomics.
#[derive(Debug)]
struct HistCore {
    lo: f64,
    hi: f64,
    bins: Vec<AtomicU64>,
    /// Observations outside `[lo, hi)`.
    outliers: AtomicU64,
    /// Sum of all observations (in-range and outliers), fixed-point
    /// milli-units (`value × 1000` rounded) so it can live in a `u64`
    /// atomic. Negative observations contribute zero.
    sum_milli: AtomicU64,
    /// All observations, in-range and outliers.
    count: AtomicU64,
}

/// A thread-safe histogram recording with two relaxed atomic ops and
/// snapshotting into a [`bst_stats::histogram::Histogram`] for
/// quantiles. Bin `i` means exactly what the sequential histogram's bin
/// `i` means, so a snapshot is bit-identical to having recorded the
/// same observations sequentially.
#[derive(Clone, Debug)]
pub struct AtomicHistogram {
    core: Arc<HistCore>,
}

impl AtomicHistogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` (same contract as
    /// [`bst_stats::histogram::Histogram::new`]).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let mut v = Vec::with_capacity(bins);
        v.resize_with(bins, AtomicU64::default);
        AtomicHistogram {
            core: Arc::new(HistCore {
                lo,
                hi,
                bins: v,
                outliers: AtomicU64::new(0),
                sum_milli: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, x: f64) {
        let core = &*self.core;
        core.count.fetch_add(1, Ordering::Relaxed);
        if x > 0.0 && x.is_finite() {
            core.sum_milli
                .fetch_add((x * 1000.0).round() as u64, Ordering::Relaxed);
        }
        if x < core.lo || x >= core.hi || x.is_nan() {
            core.outliers.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Mirrors Histogram::record's binning exactly.
        let frac = (x - core.lo) / (core.hi - core.lo);
        let idx = ((frac * core.bins.len() as f64) as usize).min(core.bins.len() - 1);
        core.bins[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Materialises the current counts as a queryable sequential
    /// histogram (`O(bins)`).
    pub fn snapshot(&self) -> Histogram {
        let core = &*self.core;
        let counts: Vec<u64> = core
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Histogram::from_counts(
            core.lo,
            core.hi,
            counts,
            core.outliers.load(Ordering::Relaxed),
        )
    }

    /// Sum of every observation (in-range and outliers; negative
    /// observations contribute zero).
    pub fn sum(&self) -> f64 {
        self.core.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Number of observations, in-range and outliers.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// The `[lo, hi)` range the bins cover.
    pub fn range(&self) -> (f64, f64) {
        (self.core.lo, self.core.hi)
    }
}

/// What one series reports at collection time.
#[derive(Clone, Debug)]
pub enum Observation {
    /// A monotone count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A latency/size distribution, pre-digested into summary rows.
    Summary {
        /// `(q, value)` pairs; `NaN` value when no in-range observation.
        quantiles: Vec<(f64, f64)>,
        /// Sum of all observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// One collected series: family name, help text, label pairs, value.
#[derive(Clone, Debug)]
pub struct Sample {
    /// The metric family name (shared by labeled variants).
    pub family: String,
    /// One-line help text (first registration of the family wins).
    pub help: String,
    /// Label `(key, value)` pairs, possibly empty.
    pub labels: Vec<(String, String)>,
    /// The value read at collection time.
    pub value: Observation,
}

/// Where an entry's value comes from at collection time.
enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(AtomicHistogram),
    /// Reads a live counter value at scrape time — for series whose
    /// backing object can be replaced wholesale (e.g. engine swap on a
    /// wire `LOAD`): the closure chases the current owner instead of
    /// pinning a dead handle.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Gauge analogue of `CounterFn`.
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
}

struct Entry {
    family: String,
    help: String,
    labels: Vec<(String, String)>,
    source: Source,
}

/// The process-wide name → series table. Registration hands back (or
/// accepts) lock-free recording handles; the internal lock is touched
/// only when registering and when collecting.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: RwLock<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} series)", self.entries.read().len())
    }
}

/// Maps a proposed name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and an
/// invalid (or missing) first character gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (sanitize(k), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, family: &str, help: &str, labels: &[(&str, &str)], source: Source) {
        self.entries.write().push(Entry {
            family: sanitize(family),
            help: help.to_string(),
            labels: own_labels(labels),
            source,
        });
    }

    /// Creates, registers, and returns a fresh counter.
    pub fn counter(&self, family: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let handle = Counter::new();
        self.register_counter(family, help, labels, handle.clone());
        handle
    }

    /// Registers an existing counter handle (one the owning subsystem
    /// already holds, e.g. the weight cache's hit counter).
    pub fn register_counter(
        &self,
        family: &str,
        help: &str,
        labels: &[(&str, &str)],
        handle: Counter,
    ) {
        self.push(family, help, labels, Source::Counter(handle));
    }

    /// Creates, registers, and returns a fresh gauge.
    pub fn gauge(&self, family: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let handle = Gauge::new();
        self.register_gauge(family, help, labels, handle.clone());
        handle
    }

    /// Registers an existing gauge handle.
    pub fn register_gauge(&self, family: &str, help: &str, labels: &[(&str, &str)], handle: Gauge) {
        self.push(family, help, labels, Source::Gauge(handle));
    }

    /// Creates, registers, and returns a fresh atomic histogram with
    /// `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn histogram(
        &self,
        family: &str,
        help: &str,
        labels: &[(&str, &str)],
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> AtomicHistogram {
        let handle = AtomicHistogram::new(lo, hi, bins);
        self.register_histogram(family, help, labels, handle.clone());
        handle
    }

    /// Registers an existing histogram handle.
    pub fn register_histogram(
        &self,
        family: &str,
        help: &str,
        labels: &[(&str, &str)],
        handle: AtomicHistogram,
    ) {
        self.push(family, help, labels, Source::Histogram(handle));
    }

    /// Registers a counter whose value is read by `f` at scrape time —
    /// the engine-swap-safe registration form.
    pub fn counter_fn(
        &self,
        family: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(family, help, labels, Source::CounterFn(Box::new(f)));
    }

    /// Registers a gauge whose value is read by `f` at scrape time.
    pub fn gauge_fn(
        &self,
        family: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push(family, help, labels, Source::GaugeFn(Box::new(f)));
    }

    /// Quantiles every histogram series digests into at collection.
    pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

    /// Reads every series once, in registration order.
    pub fn collect(&self) -> Vec<Sample> {
        let entries = self.entries.read();
        entries
            .iter()
            .map(|e| Sample {
                family: e.family.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.source {
                    Source::Counter(c) => Observation::Counter(c.get()),
                    Source::Gauge(g) => Observation::Gauge(g.get() as f64),
                    Source::Histogram(h) => {
                        let snap = h.snapshot();
                        Observation::Summary {
                            quantiles: Self::SUMMARY_QUANTILES
                                .iter()
                                .map(|&q| (q, snap.quantile(q).unwrap_or(f64::NAN)))
                                .collect(),
                            sum: h.sum(),
                            count: h.count(),
                        }
                    }
                    Source::CounterFn(f) => Observation::Counter(f()),
                    Source::GaugeFn(f) => Observation::Gauge(f()),
                },
            })
            .collect()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no series is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
        c.reset();
        assert_eq!(c2.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.add(2);
        assert_eq!(g.clone().get(), 6);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_sequential() {
        let a = AtomicHistogram::new(0.0, 10.0, 5);
        let mut s = bst_stats::histogram::Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, -1.0, 12.0, 5.5, 5.5] {
            a.record(v);
            s.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.counts(), s.counts());
        assert_eq!(snap.outliers(), s.outliers());
        assert_eq!(snap.p50(), s.p50());
        assert_eq!(a.count(), 8);
        // 0 + 1.9 + 2 + 9.99 + 12 + 5.5 + 5.5 (negatives contribute 0)
        assert!((a.sum() - 36.89).abs() < 1e-9, "sum = {}", a.sum());
        assert_eq!(a.range(), (0.0, 10.0));
    }

    #[test]
    fn atomic_histogram_is_shared_across_clones_and_threads() {
        let h = AtomicHistogram::new(0.0, 100.0, 10);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record((i % 100) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().total(), 4000);
    }

    #[test]
    fn registry_collects_in_registration_order() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("bst_test_ops_total", "ops", &[]);
        let g = reg.gauge("bst_test_live", "live", &[("kind", "a")]);
        let h = reg.histogram("bst_test_lat_us", "latency", &[], 0.0, 100.0, 10);
        c.add(3);
        g.set(-2);
        h.record(50.0);
        h.record(250.0); // outlier: counted, not binned
        let samples = reg.collect();
        assert_eq!(samples.len(), 3);
        assert!(matches!(samples[0].value, Observation::Counter(3)));
        assert_eq!(samples[1].labels, vec![("kind".into(), "a".into())]);
        assert!(matches!(samples[1].value, Observation::Gauge(v) if v == -2.0));
        match &samples[2].value {
            Observation::Summary {
                quantiles,
                sum,
                count,
            } => {
                assert_eq!(*count, 2);
                assert!((sum - 300.0).abs() < 1e-9);
                assert_eq!(quantiles.len(), 3);
                assert!(quantiles.iter().all(|(_, v)| v.is_finite()));
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn callback_series_read_live_values() {
        let reg = MetricsRegistry::new();
        let shared = Arc::new(AtomicU64::new(0));
        let reader = Arc::clone(&shared);
        reg.counter_fn("bst_test_cb_total", "cb", &[], move || {
            reader.load(Ordering::Relaxed)
        });
        reg.gauge_fn("bst_test_cb_gauge", "cbg", &[], || 1.5);
        shared.store(42, Ordering::Relaxed);
        let samples = reg.collect();
        assert!(matches!(samples[0].value, Observation::Counter(42)));
        assert!(matches!(samples[1].value, Observation::Gauge(v) if v == 1.5));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("bst_ok_total"), "bst_ok_total");
        assert_eq!(sanitize("bad name-1"), "bad_name_1");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
        let reg = MetricsRegistry::new();
        reg.counter("weird name!", "x", &[("bad key", "kept value")]);
        let s = &reg.collect()[0];
        assert_eq!(s.family, "weird_name_");
        assert_eq!(s.labels[0].0, "bad_key");
        assert_eq!(s.labels[0].1, "kept value");
    }

    #[test]
    fn summary_quantiles_are_nan_when_outlier_only() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("bst_test_h", "h", &[], 0.0, 1.0, 2);
        h.record(5.0);
        match &reg.collect()[0].value {
            Observation::Summary {
                quantiles, count, ..
            } => {
                assert_eq!(*count, 1);
                assert!(quantiles.iter().all(|(_, v)| v.is_nan()));
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }
}
