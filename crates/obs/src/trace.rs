//! The tracing half: a facade costing one relaxed atomic load while
//! disabled, and a bounded in-memory ring recorder for capture.
//!
//! Instrumented operations call [`Tracer::start`] before the work and
//! [`Tracer::record`] after it. With no recorder installed, `start`
//! returns `None` without reading the clock and `record` returns on its
//! first branch — the entire disabled-path cost is one atomic load plus
//! two branches, pinned ≤ 5% of the warm sample path by the
//! `obs_overhead` bench. With a recorder installed, the operation's
//! name, wall duration, and `u64` attributes (the `OpStats` deltas, in
//! the paper's §7.1 units) are pushed as one [`SpanEvent`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// One completed operation: name, sequence number (assigned by the
/// recorder), wall duration, and a small attribute list.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Dotted operation name (`bst.core.sample`, `bst.shard.batch`, …).
    pub name: &'static str,
    /// Recorder-assigned sequence number (monotone per recorder).
    pub seq: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// `(key, value)` attributes — operation counts, slot counts, etc.
    pub attrs: Vec<(&'static str, u64)>,
}

/// Where completed spans go. Implementations must be cheap: recorders
/// run inline on the serving path while tracing is enabled.
pub trait Recorder: Send + Sync {
    /// Accepts one completed span (the recorder assigns `seq`).
    fn record(&self, span: SpanEvent);
}

/// Discards every span — measures the enabled-path overhead (clock
/// reads, attribute building) without retaining anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _span: SpanEvent) {}
}

/// Keeps the most recent `capacity` spans in a bounded ring — the
/// `TRACE_DUMP`-style capture surface for debugging slow operations.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl RingRecorder {
    /// A ring holding at most `capacity` spans (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of spans currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Total spans ever recorded (monotone, survives ring eviction).
    pub fn recorded_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Drops every retained span (the total keeps counting).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

impl Recorder for RingRecorder {
    fn record(&self, mut span: SpanEvent) {
        span.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.ring.lock();
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(span);
    }
}

struct TracerCore {
    on: AtomicBool,
    sink: RwLock<Option<Arc<dyn Recorder>>>,
}

/// The per-system tracing facade. Cloning shares the switch and sink,
/// so a facade embedded at construction time can be enabled later by
/// anyone holding a clone.
#[derive(Clone)]
pub struct Tracer {
    core: Arc<TracerCore>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={})", self.enabled())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            core: Arc::new(TracerCore {
                on: AtomicBool::new(false),
                sink: RwLock::new(None),
            }),
        }
    }
}

impl Tracer {
    /// A disabled tracer (the construction-time default everywhere).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether a recorder is installed — one relaxed load.
    pub fn enabled(&self) -> bool {
        self.core.on.load(Ordering::Relaxed)
    }

    /// Installs (or with `None`, removes) the recorder.
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        let mut sink = self.core.sink.write();
        self.core.on.store(recorder.is_some(), Ordering::Relaxed);
        *sink = recorder;
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.core.sink.read().clone()
    }

    /// Starts timing an operation: `None` (no clock read) while
    /// disabled, the start instant while enabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a span begun by [`Self::start`]. A `None` start (the
    /// disabled path) returns on the first branch; attribute slices are
    /// only copied to the heap past it.
    pub fn record(
        &self,
        name: &'static str,
        started: Option<Instant>,
        attrs: &[(&'static str, u64)],
    ) {
        let Some(t0) = started else { return };
        let sink = self.core.sink.read().clone();
        if let Some(recorder) = sink {
            recorder.record(SpanEvent {
                name,
                seq: 0,
                duration_ns: t0.elapsed().as_nanos() as u64,
                attrs: attrs.to_vec(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_reads_no_clock_and_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.start(), None);
        t.record("bst.test.op", None, &[("k", 1)]);
        assert!(t.recorder().is_none());
    }

    #[test]
    fn ring_recorder_captures_and_bounds() {
        let t = Tracer::default();
        let ring = Arc::new(RingRecorder::new(3));
        t.set_recorder(Some(ring.clone()));
        assert!(t.enabled());
        for i in 0..5u64 {
            let span = t.start();
            assert!(span.is_some());
            t.record("bst.test.op", span, &[("i", i)]);
        }
        assert_eq!(ring.len(), 3, "ring evicts oldest");
        assert_eq!(ring.recorded_total(), 5);
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        // Oldest-first, with recorder-assigned monotone seq.
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[2].seq, 4);
        assert_eq!(recent[2].attrs, vec![("i", 4)]);
        assert_eq!(recent[0].name, "bst.test.op");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.recorded_total(), 5);
    }

    #[test]
    fn set_recorder_none_disables() {
        let t = Tracer::default();
        t.set_recorder(Some(Arc::new(NoopRecorder)));
        assert!(t.enabled());
        t.set_recorder(None);
        assert!(!t.enabled());
        assert!(t.start().is_none());
    }

    #[test]
    fn clones_share_the_switch() {
        let t = Tracer::default();
        let embedded = t.clone();
        t.set_recorder(Some(Arc::new(NoopRecorder)));
        assert!(embedded.enabled());
    }

    #[test]
    fn facade_is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<Tracer>();
        assert_traits::<RingRecorder>();
        assert_traits::<SpanEvent>();
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let ring = RingRecorder::new(0);
        ring.record(SpanEvent {
            name: "a",
            seq: 0,
            duration_ns: 1,
            attrs: vec![],
        });
        ring.record(SpanEvent {
            name: "b",
            seq: 0,
            duration_ns: 2,
            attrs: vec![],
        });
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.recent()[0].name, "b");
    }
}
