//! Durability (write-ahead log) instrumentation: one pre-wired bundle
//! of handles for the WAL hot path.
//!
//! The durable engine appends a record per acked mutation, so the
//! recording side must stay as cheap as the rest of the stack: every
//! handle here is an `Arc`-of-atomic clone from [`crate::metrics`].
//! The server registers the bundle's series on its METRICS page via
//! [`WalObs::register`]; embedders without a registry can still read
//! the handles directly.

use crate::metrics::{Counter, Gauge, MetricsRegistry};

/// Instrumentation handles for one write-ahead log: appended records,
/// fsyncs, replay length, checkpoint activity, and current log size.
///
/// Cloning shares the underlying atomics, so the durable engine and the
/// metrics page observe the same counters.
#[derive(Clone, Default)]
pub struct WalObs {
    /// Records appended (and acked) to the log since open.
    pub appended: Counter,
    /// `fsync` calls issued by the append path (policy-dependent).
    pub fsyncs: Counter,
    /// Records replayed from the log tail during the last recovery.
    pub replayed: Gauge,
    /// Bytes of torn tail dropped during the last recovery.
    pub torn_bytes: Gauge,
    /// Checkpoints written since open.
    pub checkpoints: Counter,
    /// Wall-clock duration of the last checkpoint, in microseconds.
    pub last_checkpoint_us: Gauge,
    /// Current byte length of the log file.
    pub log_bytes: Gauge,
}

impl WalObs {
    /// A fresh bundle with every series at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the bundle's series under the conventional
    /// `bst_wal_*` names. Call once per registry; the handles keep
    /// working unregistered (they just render nowhere).
    pub fn register(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "bst_wal_records_total",
            "WAL records appended (acked mutations)",
            &[],
            self.appended.clone(),
        );
        registry.register_counter(
            "bst_wal_fsyncs_total",
            "fsync calls issued by the WAL append path",
            &[],
            self.fsyncs.clone(),
        );
        registry.register_gauge(
            "bst_wal_replayed_records",
            "records replayed from the WAL tail at last recovery",
            &[],
            self.replayed.clone(),
        );
        registry.register_gauge(
            "bst_wal_torn_tail_bytes",
            "torn-tail bytes truncated at last recovery",
            &[],
            self.torn_bytes.clone(),
        );
        registry.register_counter(
            "bst_wal_checkpoints_total",
            "checkpoints written since the log was opened",
            &[],
            self.checkpoints.clone(),
        );
        registry.register_gauge(
            "bst_wal_last_checkpoint_us",
            "wall-clock duration of the last checkpoint (µs)",
            &[],
            self.last_checkpoint_us.clone(),
        );
        registry.register_gauge(
            "bst_wal_log_bytes",
            "current byte length of the WAL file",
            &[],
            self.log_bytes.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_every_series() {
        let registry = MetricsRegistry::new();
        let obs = WalObs::new();
        obs.register(&registry);
        obs.appended.add(3);
        obs.fsyncs.inc();
        obs.replayed.set(7);
        obs.log_bytes.set(4096);
        let page = crate::expo::render(&registry);
        crate::expo::validate(&page).expect("well-formed page");
        for series in [
            "bst_wal_records_total 3",
            "bst_wal_fsyncs_total 1",
            "bst_wal_replayed_records 7",
            "bst_wal_torn_tail_bytes 0",
            "bst_wal_checkpoints_total 0",
            "bst_wal_last_checkpoint_us 0",
            "bst_wal_log_bytes 4096",
        ] {
            assert!(page.contains(series), "missing `{series}` in:\n{page}");
        }
    }
}
