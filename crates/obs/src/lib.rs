#![forbid(unsafe_code)]
//! # bst-obs — the unified observability substrate
//!
//! Every layer of the BloomSampleTree stack produces numbers worth
//! watching: the paper's own evaluation units (§7.1 — intersections and
//! memberships, threaded through `bst_core::metrics::OpStats`), the
//! sharded engine's weight-cache hit/repair/miss outcomes and two-phase
//! batch timings, and the server's per-op latency histograms and
//! connection gauges. Before this crate each of those was its own silo;
//! `bst-obs` gives them one registry and one tracing facade.
//!
//! ## Two surfaces
//!
//! * **Metrics** ([`metrics`]): a [`MetricsRegistry`] of named series.
//!   Handles ([`Counter`], [`Gauge`], [`AtomicHistogram`]) are cheap
//!   `Arc`-of-atomics clones — recording is lock-free; the registry
//!   lock is touched only at registration and render time. Series that
//!   must survive engine swaps (a wire `LOAD` replaces the whole
//!   engine) register as *callbacks* that read the live value at scrape
//!   time instead of pinning a dead handle.
//! * **Tracing** ([`trace`]): a [`Tracer`] facade costing one relaxed
//!   atomic load (plus a branch) per operation while disabled. When a
//!   [`Recorder`] is installed, operations emit [`SpanEvent`]s — name,
//!   wall duration, and a small set of `u64` attributes (the `OpStats`
//!   deltas, batch slot counts, …). [`RingRecorder`] keeps a bounded
//!   in-memory ring of the most recent spans for post-hoc debugging of
//!   slow operations; [`NoopRecorder`] measures the enabled-path
//!   overhead without retaining anything.
//!
//! ## Exposition
//!
//! [`expo::render`] serialises a registry in the Prometheus text
//! format (counters, gauges, and summary-style quantile/`_sum`/`_count`
//! rows for histograms); [`expo::validate`] is the matching
//! well-formedness checker the CLI and CI smoke test reuse, so a
//! malformed scrape fails loudly instead of rotting silently.
//!
//! "Zero-dependency" here means: nothing beyond the workspace's own
//! `bst-stats` (histogram snapshots) and the sanctioned vendored
//! `parking_lot` locks — no new third-party surface.

#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
pub mod trace;
pub mod wal;

pub use metrics::{AtomicHistogram, Counter, Gauge, MetricsRegistry, Observation, Sample};
pub use trace::{NoopRecorder, Recorder, RingRecorder, SpanEvent, Tracer};
pub use wal::WalObs;
