//! End-to-end observability tests: every number the server exposes —
//! StatsReply engine totals, weight-cache counters, latency-row counts,
//! and the METRICS text page — must equal ground truth computed by
//! replaying the same wire workload on an independent in-process
//! replica of the engine.
//!
//! The replica is rebuilt from a snapshot taken before any wire query,
//! so both sides start from bit-identical state with cold caches; every
//! wire request is then mirrored in the same order, and equality is
//! exact, not statistical.

use rand::rngs::StdRng;
use rand::SeedableRng;

use bst_core::store::FilterId;
use bst_core::OpStats;
use bst_server::client::Client;
use bst_server::protocol::Target;
use bst_server::server::{serve, ServerConfig, ServerHandle};
use bst_server::stats::OpClass;
use bst_shard::ShardedBstSystem;

/// A served engine plus a clone of it for in-process reference access.
fn spawn(namespace: u64, shards: usize, cfg: ServerConfig) -> (ServerHandle, ShardedBstSystem) {
    let engine = ShardedBstSystem::builder(namespace)
        .shards(shards)
        .expected_set_size((namespace / 8).max(8))
        .seed(7)
        .build();
    let reference = engine.clone();
    let handle = serve(engine, "127.0.0.1:0", cfg).expect("bind ephemeral port");
    (handle, reference)
}

fn member_keys(n: u64, namespace: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 97 + 13) % namespace).collect()
}

fn add(total: &mut OpStats, delta: OpStats) {
    total.intersections += delta.intersections;
    total.memberships += delta.memberships;
    total.nodes_visited += delta.nodes_visited;
    total.backtracks += delta.backtracks;
}

#[test]
fn every_exposed_metric_equals_ground_truth_replay() {
    const SAMPLES: u64 = 57;
    const BATCH_SLOTS: usize = 8;
    let (mut handle, reference) = spawn(4_096, 4, ServerConfig::default());
    let set_keys = member_keys(250, 4_096);
    let set = reference.create(set_keys.iter().copied()).unwrap().raw();

    // Snapshot *before* any query: the replica starts from the same
    // state the server's first query sees, with an equally cold weight
    // cache — so replayed OpStats and cache outcomes match exactly.
    let replica = ShardedBstSystem::from_bytes(&reference.to_bytes()).unwrap();

    let mut client = Client::connect(handle.addr()).expect("connect");
    let wire_samples: Vec<u64> = (0..SAMPLES)
        .map(|seed| client.sample(Target::Stored(set), seed).expect("sample"))
        .collect();
    let wire_batch = client
        .batch(vec![Target::Stored(set); BATCH_SLOTS], 99)
        .expect("batch");

    // Ground truth: mirror the workload on the replica. One handle for
    // all draws, exactly like the server's per-connection session cache
    // (fresh on the first request, warm after).
    let mut expect = OpStats::new();
    let local = replica.query_id(FilterId::from_raw(set)).unwrap();
    for (seed, &wire_key) in wire_samples.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        assert_eq!(local.sample(&mut rng).unwrap(), wire_key, "draw {seed}");
        add(&mut expect, local.take_stats());
    }
    let ids = vec![FilterId::from_raw(set); BATCH_SLOTS];
    let (local_batch, batch_stats) = replica.query_batch_ids(&ids, 99, 0);
    add(&mut expect, batch_stats);
    for (slot, (wire, local)) in wire_batch.iter().zip(&local_batch).enumerate() {
        assert_eq!(
            wire.as_ref().ok(),
            local.as_ref().ok(),
            "batch slot {slot} diverged"
        );
    }
    let cache = replica.weight_cache_stats();

    // STATS surface: cumulative engine OpStats and weight-cache
    // outcomes must equal the replayed ground truth exactly.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.engine_intersections, expect.intersections);
    assert_eq!(stats.engine_memberships, expect.memberships);
    assert_eq!(stats.engine_nodes_visited, expect.nodes_visited);
    assert_eq!(stats.engine_backtracks, expect.backtracks);
    assert_eq!(stats.weight_cache_hits, cache.hits);
    assert_eq!(stats.weight_cache_misses, cache.misses);
    assert_eq!(stats.weight_cache_repairs, cache.repairs);
    let sample_row = stats
        .ops
        .iter()
        .find(|row| row.op == OpClass::Sample.tag())
        .expect("sample latency row");
    assert_eq!(sample_row.count, SAMPLES, "one histogram entry per draw");

    // METRICS page: well-formed, and the same numbers again as text.
    let text = client.metrics().expect("metrics");
    let series = bst_obs::expo::validate(&text).expect("page must validate");
    assert!(series > 0);
    for line in [
        format!("bst_server_request_latency_us_count{{op=\"sample\"}} {SAMPLES}"),
        "bst_server_request_latency_us_count{op=\"batch\"} 1".to_string(),
        format!(
            "bst_engine_ops_total{{kind=\"intersections\"}} {}",
            expect.intersections
        ),
        format!(
            "bst_engine_ops_total{{kind=\"memberships\"}} {}",
            expect.memberships
        ),
        format!(
            "bst_engine_ops_total{{kind=\"nodes_visited\"}} {}",
            expect.nodes_visited
        ),
        format!(
            "bst_engine_ops_total{{kind=\"backtracks\"}} {}",
            expect.backtracks
        ),
        format!(
            "bst_engine_weight_cache_total{{kind=\"hits\"}} {}",
            cache.hits
        ),
        format!(
            "bst_engine_weight_cache_total{{kind=\"misses\"}} {}",
            cache.misses
        ),
        format!(
            "bst_engine_weight_cache_total{{kind=\"repairs\"}} {}",
            cache.repairs
        ),
        "bst_engine_batches_total 1".to_string(),
        "bst_engine_namespace 4096".to_string(),
        "bst_engine_sets 1".to_string(),
        "bst_server_active_connections 1".to_string(),
        "bst_server_frame_errors_total 0".to_string(),
    ] {
        assert!(
            text.lines().any(|l| l == line),
            "metrics page missing `{line}`\n--- page ---\n{text}"
        );
    }

    // Trace ring: core sample spans and the shard batch span landed.
    let spans = handle.state().trace_dump();
    assert!(spans.iter().any(|s| s.name == "bst.core.sample"));
    let batch_span = spans
        .iter()
        .rev()
        .find(|s| s.name == "bst.shard.batch")
        .expect("batch span recorded");
    let attr = |k: &str| {
        batch_span
            .attrs
            .iter()
            .find(|(name, _)| *name == k)
            .map(|(_, v)| *v)
    };
    assert_eq!(attr("slots"), Some(BATCH_SLOTS as u64));

    handle.shutdown();
}

#[test]
fn observability_follows_engine_across_wire_load() {
    let (mut handle, reference) = spawn(1_024, 2, ServerConfig::default());
    let set = reference
        .create(member_keys(64, 1_024).iter().copied())
        .unwrap()
        .raw();

    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .batch(vec![Target::Stored(set); 4], 5)
        .expect("batch");
    let before = client.stats().expect("stats");
    assert!(before.engine_nodes_visited > 0);

    // Swap the engine through the wire. The replacement must be
    // re-instrumented: batch spans keep landing in the same ring and
    // the batch counter keeps counting.
    let snapshot = client.save().expect("save");
    client.load(snapshot).expect("load");
    client
        .batch(vec![Target::Stored(set); 4], 6)
        .expect("batch");
    client.sample(Target::Stored(set), 7).expect("sample");

    let after = client.stats().expect("stats");
    assert!(
        after.engine_nodes_visited > before.engine_nodes_visited,
        "engine totals must accumulate across LOAD"
    );
    // Weight-cache counters read through the *current* engine, which is
    // freshly loaded: the post-load batch re-weighs every cell.
    assert!(after.weight_cache_misses > 0);

    let text = client.metrics().expect("metrics");
    bst_obs::expo::validate(&text).expect("page must validate");
    assert!(
        text.lines().any(|l| l == "bst_engine_batches_total 2"),
        "batch counter must survive the engine swap\n{text}"
    );

    let spans = handle.state().trace_dump();
    assert!(
        spans.iter().filter(|s| s.name == "bst.shard.batch").count() >= 2,
        "post-load batch must still trace into the server's ring"
    );

    handle.shutdown();
}
