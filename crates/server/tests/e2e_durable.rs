//! End-to-end durability over a real socket: SAVE is a checkpoint,
//! LOAD with an empty body is recovery from disk, acked mutations
//! survive a server restart from the WAL directory, the METRICS page
//! carries the WAL series, and shutdown latency stays bounded.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bst_core::wal::FsyncPolicy;
use bst_server::client::{Client, ClientError};
use bst_server::protocol::{Target, WireError};
use bst_server::server::{serve, serve_durable, ServerConfig, ServerHandle};
use bst_shard::{DurableBstSystem, DurableConfig, ShardedBstSystem};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bst-e2e-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const NAMESPACE: u64 = 4_096;

fn build_engine() -> ShardedBstSystem {
    ShardedBstSystem::builder(NAMESPACE)
        .shards(3)
        .expected_set_size(64)
        .seed(11)
        .build()
}

fn open_durable(dir: &Path) -> DurableBstSystem {
    DurableBstSystem::open(
        dir,
        DurableConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: 0,
        },
        build_engine,
    )
    .expect("open durable dir")
}

fn spawn_durable(dir: &Path) -> ServerHandle {
    serve_durable(open_durable(dir), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port")
}

/// SAVE-as-checkpoint and LOAD-as-recovery while other clients keep
/// mutating: recovery preserves every acked mutation (the log replays
/// them), sessions survive the epoch bump, and after a clean shutdown
/// the WAL directory alone reproduces the served state.
#[test]
fn save_checkpoints_and_empty_load_recovers_under_concurrent_traffic() {
    const WORKERS: usize = 3;
    const ROUNDS: usize = 40;
    let dir = scratch_dir("traffic");
    let mut handle = spawn_durable(&dir);
    let addr = handle.addr();

    std::thread::scope(|scope| {
        // Worker clients: create, churn keys, and sample continuously.
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut ids = Vec::new();
                    for i in 0..ROUNDS {
                        let base = (w * 1_000 + i * 17) as u64;
                        let keys: Vec<u64> =
                            (0..20u64).map(|j| (base + j * 13) % NAMESPACE).collect();
                        let id = client.create(keys.clone()).expect("create");
                        ids.push((id, keys));
                        client
                            .insert_keys(id, vec![base % NAMESPACE])
                            .expect("insert");
                        let (id, _) = &ids[i / 2];
                        client
                            .sample(Target::Stored(*id), base)
                            .expect("sample under churn");
                    }
                    ids
                })
            })
            .collect();

        // Meanwhile: checkpoints and disk recoveries from a separate
        // client. Empty-body LOAD = recover from disk; every mutation
        // acked before the recovery is preserved by log replay.
        let mut admin = Client::connect(addr).expect("connect admin");
        for round in 0..10 {
            let snapshot = admin.save().expect("save");
            assert!(!snapshot.is_empty());
            admin.load(Vec::new()).expect("empty load = recover");
            let _ = round;
        }

        let all_ids: Vec<(u64, Vec<u64>)> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker"))
            .collect();

        // Traffic done: every acked set is still fully reconstructable
        // after the mid-traffic recoveries.
        for (id, keys) in &all_ids {
            let got = admin
                .reconstruct(Target::Stored(*id))
                .expect("reconstruct after recoveries");
            let mut want = keys.clone();
            want.sort_unstable();
            want.dedup();
            for k in &want {
                assert!(got.binary_search(k).is_ok(), "set {id} lost member {k}");
            }
        }

        // Epoch advanced once per recovery.
        let stats = admin.stats().expect("stats");
        assert_eq!(stats.epoch, 10);
        assert_eq!(stats.sets as usize, all_ids.len());

        // WAL series are on the METRICS page, and recovery really
        // replayed a tail (mutations landed after the last checkpoint).
        let page = admin.metrics().expect("metrics");
        for series in [
            "bst_wal_records_total",
            "bst_wal_fsyncs_total",
            "bst_wal_replayed_records",
            "bst_wal_torn_tail_bytes",
            "bst_wal_checkpoints_total",
            "bst_wal_last_checkpoint_us",
            "bst_wal_log_bytes",
        ] {
            assert!(page.contains(series), "metrics page lacks {series}");
        }

        // Quiesce with a final checkpoint, remember the exact state.
        let final_snapshot = admin.save().expect("final save");
        drop(admin);
        handle.shutdown();

        // The WAL directory alone reproduces the served state.
        let reopened = open_durable(&dir);
        assert_eq!(reopened.system().to_bytes(), final_snapshot);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// LOAD with an explicit snapshot body adopts it as the new durable
/// state: post-snapshot sets vanish, and the adoption is itself
/// durable — a restart from the directory serves the adopted state.
#[test]
fn explicit_load_adopts_snapshot_durably() {
    let dir = scratch_dir("adopt");
    let mut handle = spawn_durable(&dir);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let keep = client.create(vec![1, 2, 3]).expect("create keep");
    let snapshot = client.save().expect("save");
    let doomed = client.create(vec![7, 8, 9]).expect("create doomed");

    client.load(snapshot.clone()).expect("adopt snapshot");
    assert!(
        matches!(
            client.reconstruct(Target::Stored(doomed)),
            Err(ClientError::Wire(WireError::UnknownFilterId { .. }))
        ),
        "post-snapshot set must vanish after adoption"
    );
    assert_eq!(
        client.reconstruct(Target::Stored(keep)).expect("keep"),
        vec![1, 2, 3]
    );

    drop(client);
    handle.shutdown();
    let reopened = open_durable(&dir);
    assert_eq!(reopened.system().to_bytes(), snapshot);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a WAL directory, an empty LOAD body stays an error (there is
/// no disk state to recover), so the durable semantics are opt-in.
#[test]
fn empty_load_without_wal_dir_is_a_typed_error() {
    let handle = serve(build_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(
        matches!(
            client.load(Vec::new()),
            Err(ClientError::Wire(WireError::Persist { .. }))
        ),
        "empty LOAD must fail without a durability layer"
    );
}

/// Wire-initiated shutdown is prompt even when the accept loop has been
/// idle long enough to reach its backoff ceiling: the reply arrives and
/// the whole server (accept loop + workers) stops well inside the old
/// fixed 20ms-per-poll regime's worst case.
#[test]
fn wire_shutdown_latency_is_bounded() {
    let handle = serve(build_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    // Let the accept loop idle so its backoff reaches the ceiling.
    std::thread::sleep(Duration::from_millis(120));
    let started = Instant::now();
    client.shutdown_server().expect("shutdown acked");
    handle.join();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(500),
        "shutdown took {elapsed:?}, expected < 500ms"
    );
}

/// A connection arriving after a long idle spell is accepted within the
/// backoff ceiling, not a full fixed poll interval.
#[test]
fn post_idle_accept_latency_stays_low() {
    let handle = serve(build_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    // Idle long enough for the accept backoff to max out.
    std::thread::sleep(Duration::from_millis(200));
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "post-idle connect+ping took {elapsed:?}, expected < 100ms"
    );
}
