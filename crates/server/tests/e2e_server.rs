//! End-to-end tests over a real socket: concurrent clients, wire/warm
//! conformance, snapshot determinism through the protocol, adversarial
//! framing, backpressure, and clean shutdown.
//!
//! The engine is `Clone` over an `Arc`, so tests keep a handle on the
//! very engine being served and compare wire answers against in-process
//! answers **on the same state** — equality here is exact, not
//! statistical, wherever the request carries a seed.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use bst_server::client::{Client, ClientError};
use bst_server::protocol::{Request, Target, WireError};
use bst_server::server::{serve, ServerConfig, ServerHandle};
use bst_shard::ShardedBstSystem;
use bst_stats::conformance::{chi2_homogeneity, ks_two_sample_ids, DEFAULT_ALPHA};

/// A served engine plus a clone of it for in-process reference answers.
fn spawn(namespace: u64, shards: usize, cfg: ServerConfig) -> (ServerHandle, ShardedBstSystem) {
    let engine = ShardedBstSystem::builder(namespace)
        .shards(shards)
        .expected_set_size((namespace / 8).max(8))
        .seed(7)
        .build();
    let reference = engine.clone();
    let handle = serve(engine, "127.0.0.1:0", cfg).expect("bind ephemeral port");
    (handle, reference)
}

fn member_keys(n: u64, namespace: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 97 + 13) % namespace).collect()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn concurrent_clients_get_warm_wire_samples_identical_to_in_process() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 2_000;
    let (handle, reference) = spawn(4_096, 4, ServerConfig::default());
    let set_keys = member_keys(250, 4_096);
    let set = reference.create(set_keys.iter().copied()).unwrap().raw();
    let addr = handle.addr();

    // Four clients hammer the same stored set concurrently, each with
    // its own seed stream. The per-connection session keeps the handle
    // warm after the first frame.
    let wire_samples: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (0..ROUNDS)
                        .map(|i| {
                            let seed = (c as u64) * 1_000_000 + i as u64;
                            client.sample(Target::Stored(set), seed).expect("sample")
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Bit-identical: replay every seed on a warm in-process handle.
    let local = reference
        .query_id(bst_core::store::FilterId::from_raw(set))
        .unwrap();
    for (c, samples) in wire_samples.iter().enumerate() {
        for (i, &wire_key) in samples.iter().enumerate() {
            let seed = (c as u64) * 1_000_000 + i as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(
                local.sample(&mut rng).unwrap(),
                wire_key,
                "client {c}, draw {i}: wire and in-process draws diverged"
            );
        }
    }

    // Distributional: pooled wire draws vs an independent in-process
    // seed stream must be chi²- and KS-indistinguishable.
    let support = local.reconstruct().unwrap();
    let pooled: Vec<u64> = wire_samples.iter().flatten().copied().collect();
    let mut wire_counts = vec![0u64; support.len()];
    for &key in &pooled {
        let slot = support.binary_search(&key).expect("sample outside support");
        wire_counts[slot] += 1;
    }
    let mut local_counts = vec![0u64; support.len()];
    let mut local_pool = Vec::with_capacity(pooled.len());
    for i in 0..pooled.len() {
        let mut rng = StdRng::seed_from_u64(0xFEED_0000 + i as u64);
        let key = local.sample(&mut rng).unwrap();
        local_counts[support.binary_search(&key).unwrap()] += 1;
        local_pool.push(key);
    }
    let chi2 = chi2_homogeneity(&wire_counts, &local_counts);
    assert!(
        chi2.p_value >= DEFAULT_ALPHA,
        "wire vs in-process chi² rejected: {chi2:?}"
    );
    let ks = ks_two_sample_ids(&pooled, &local_pool);
    assert!(
        ks.p_value >= DEFAULT_ALPHA,
        "wire vs in-process KS rejected: {ks:?}"
    );
}

#[test]
fn snapshot_save_load_roundtrips_byte_identically_through_the_protocol() {
    let (handle, reference) = spawn(2_048, 2, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let a = client.create(member_keys(40, 2_048)).unwrap();
    let b = client.create((100..160u64).collect()).unwrap();
    client.occ_remove(500).unwrap();
    client.occ_remove(501).unwrap();

    let snap1 = client.save().unwrap();
    assert_eq!(
        snap1,
        reference.to_bytes(),
        "wire SAVE equals in-process to_bytes"
    );
    client.load(snap1.clone()).unwrap();
    let snap2 = client.save().unwrap();
    assert_eq!(snap1, snap2, "SAVE → LOAD → SAVE must be byte-identical");

    // The restored engine serves the same sets; the epoch moved so the
    // session re-opened its handles against the new engine.
    assert_eq!(client.list_sets().unwrap(), vec![a, b]);
    let key = client.sample(Target::Stored(a), 9).unwrap();
    assert!(key < 2_048);
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.sets, 2);
    assert_eq!(stats.occupied, 2_048 - 2);
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let cfg = ServerConfig {
        max_frame: 4_096,
        ..ServerConfig::default()
    };
    let (handle, _reference) = spawn(1_024, 2, cfg);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unsupported protocol version.
    let mut bad = bst_server::protocol::encode_request(&Request::Ping);
    bad[0] = 99;
    send_raw(client.stream(), &bad);
    assert!(matches!(
        client.read_reply(),
        Err(ClientError::Wire(WireError::BadVersion { got: 99 }))
    ));

    // Unknown opcode.
    let mut bad = bst_server::protocol::encode_request(&Request::Ping);
    bad[1] = 200;
    send_raw(client.stream(), &bad);
    assert!(matches!(
        client.read_reply(),
        Err(ClientError::Wire(WireError::UnknownOpcode { got: 200 }))
    ));

    // Truncated body.
    let good = bst_server::protocol::encode_request(&Request::Create {
        keys: vec![1, 2, 3],
    });
    send_raw(client.stream(), &good[..good.len() - 4]);
    assert!(matches!(
        client.read_reply(),
        Err(ClientError::Wire(WireError::Malformed { .. }))
    ));

    // Zero-length frame.
    client.stream().write_all(&0u32.to_le_bytes()).unwrap();
    client.stream().flush().unwrap();
    assert!(matches!(
        client.read_reply(),
        Err(ClientError::Wire(WireError::Malformed { .. }))
    ));

    // Oversized frame: drained, refused with a typed verdict.
    let oversized = vec![0u8; 8_192];
    send_raw(client.stream(), &oversized);
    assert!(matches!(
        client.read_reply(),
        Err(ClientError::Wire(WireError::FrameTooLarge {
            declared: 8_192,
            max: 4_096
        }))
    ));

    // After all of that, the same connection still serves requests.
    client.ping().expect("connection survived the abuse");
}

#[test]
fn abrupt_disconnect_mid_frame_does_not_wedge_other_clients() {
    let (handle, _reference) = spawn(1_024, 2, ServerConfig::default());
    let mut healthy = Client::connect(handle.addr()).unwrap();
    healthy.ping().unwrap();

    {
        // Declare a 100-byte frame, send 3 bytes, vanish.
        let mut rude = TcpStream::connect(handle.addr()).unwrap();
        rude.write_all(&100u32.to_le_bytes()).unwrap();
        rude.write_all(&[1, 2, 3]).unwrap();
    } // dropped here

    std::thread::sleep(Duration::from_millis(100));
    healthy
        .ping()
        .expect("server loop survived the rude client");
    healthy
        .create((0..16u64).collect())
        .expect("mutations still served");
}

#[test]
fn backpressure_refuses_connections_over_the_cap_with_a_typed_frame() {
    let cfg = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let (handle, _reference) = spawn(1_024, 2, cfg);
    let mut first = Client::connect(handle.addr()).unwrap();
    first.ping().unwrap();

    // The second arrival is refused with Busy before any request.
    let mut refused = Client::connect(handle.addr()).unwrap();
    match refused.read_reply() {
        Err(ClientError::Wire(WireError::Busy { active: 1, max: 1 })) => {}
        other => panic!("expected Busy refusal, got {other:?}"),
    }

    // Once the first client leaves, the slot frees up (within the
    // worker's poll interval) and new connections are served again.
    drop(first);
    let mut again = retry_connect_and_ping(handle.addr());
    let stats = again.stats().unwrap();
    assert!(stats.sessions_refused >= 1, "refusal must be counted");
    assert_eq!(stats.active_connections, 1);
}

fn retry_connect_and_ping(addr: std::net::SocketAddr) -> Client {
    for _ in 0..100 {
        if let Ok(mut c) = Client::connect(addr) {
            if c.ping().is_ok() {
                return c;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server never freed the connection slot");
}

#[test]
fn mixed_batches_over_the_wire_match_in_process_scatter() {
    let (handle, reference) = spawn(2_048, 4, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let a = client.create(member_keys(60, 2_048)).unwrap();
    let b = client.create((300..380u64).collect()).unwrap();
    let adhoc_filter = reference.store((700..760u64).map(|k| k % 2_048));
    let seed = 0xBA7C4;

    let results = client
        .batch(
            vec![
                Target::Stored(a),
                Target::adhoc(&adhoc_filter),
                Target::Stored(b),
                Target::Stored(999_999),      // unknown id: fails alone
                Target::Adhoc(vec![1, 2, 3]), // garbage bytes: fails alone
            ],
            seed,
        )
        .unwrap();

    // The handler runs id-slots and filter-slots as separate engine
    // batches with the same seed; mirror that in-process.
    use bst_core::store::FilterId;
    let (id_answers, _) = reference.query_batch_ids(
        &[
            FilterId::from_raw(a),
            FilterId::from_raw(b),
            FilterId::from_raw(999_999),
        ],
        seed,
        0,
    );
    let (filter_answers, _) = reference.query_batch(&[adhoc_filter], seed, 0);
    assert_eq!(results.len(), 5);
    assert_eq!(results[0], id_answers[0].map_err(WireError::from));
    assert_eq!(results[2], id_answers[1].map_err(WireError::from));
    assert_eq!(results[3], id_answers[2].map_err(WireError::from));
    assert!(matches!(results[3], Err(WireError::UnknownFilterId { .. })));
    assert_eq!(results[1], filter_answers[0].map_err(WireError::from));
    assert!(matches!(results[4], Err(WireError::Malformed { .. })));

    // sample_many over the wire equals an in-process seeded draw too.
    let wire = client.sample_many(Target::Stored(a), 32, 77).unwrap();
    let local = reference
        .query_id(FilterId::from_raw(a))
        .unwrap()
        .sample_many(32, &mut StdRng::seed_from_u64(77))
        .unwrap();
    assert_eq!(wire, local);

    // And reconstruction: wire == in-process, both sorted.
    let wire_rec = client.reconstruct(Target::Stored(b)).unwrap();
    let local_rec = reference
        .query_id(FilterId::from_raw(b))
        .unwrap()
        .reconstruct()
        .unwrap();
    assert_eq!(wire_rec, local_rec);
    let windowed = client
        .reconstruct_range(Target::Stored(b), 300, 340)
        .unwrap();
    assert!(windowed.iter().all(|&k| (300..340).contains(&k)));
}

#[test]
fn stats_surface_reports_latencies_and_weight_cache() {
    let (handle, _reference) = spawn(1_024, 2, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let set = client.create(member_keys(30, 1_024)).unwrap();
    for i in 0..20 {
        client.sample(Target::Stored(set), i).unwrap();
    }
    client.batch(vec![Target::Stored(set)], 5).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.namespace, 1_024);
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.sets, 1);
    assert!(stats.frames_served >= 22);
    assert_eq!(stats.active_connections, 1);
    // The batch path went through the persistent weight cache.
    assert!(
        stats.weight_cache_hits + stats.weight_cache_misses > 0,
        "batch must touch the weight cache: {stats:?}"
    );
    // Sample and batch latency rows exist, with sane percentiles.
    let sample_row = stats
        .ops
        .iter()
        .find(|r| r.op == bst_server::stats::OpClass::Sample.tag())
        .expect("sample row");
    assert_eq!(sample_row.count, 20);
    assert!(sample_row.p50_us <= sample_row.p95_us);
    assert!(sample_row.p95_us <= sample_row.p99_us);
    let total = stats.total.expect("total row");
    assert!(total.count >= 22);
}

#[test]
fn wire_shutdown_stops_the_server_cleanly() {
    let (handle, _reference) = spawn(512, 2, ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown_server().unwrap();
    // join() returns because the wire shutdown stopped the accept loop.
    handle.join();
    // The listener is gone: fresh connections fail (or are reset
    // immediately on first use).
    let gone = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(gone, "listener must be closed after wire shutdown");
}

/// Writes a pre-encoded payload as one frame.
fn send_raw(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}
