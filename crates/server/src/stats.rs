//! Per-operation latency accounting for the live STATS surface.
//!
//! Every served frame is timed and recorded into one of eight
//! [`OpClass`] histograms ([`bst_stats::histogram::Histogram`],
//! microsecond bins). The STATS reply reports p50/p95/p99 per class plus
//! a grand total built with [`Histogram::merge`] — merging is exact, so
//! the total row equals recording every request into one histogram.

use bst_obs::AtomicHistogram;
use bst_stats::histogram::Histogram;

use crate::protocol::{OpLatencyRow, Request};

/// Latency range covered by the histograms: `[0, 1s)` in microseconds
/// with 10 µs bins — tight enough to resolve warm-path samples (tens of
/// µs over loopback). Slower requests (big snapshots, mostly) are
/// counted as outliers: still in `count`, excluded from percentiles.
const HIST_LO_US: f64 = 0.0;
const HIST_HI_US: f64 = 1_000_000.0;
const HIST_BINS: usize = 100_000;

/// The operation classes the latency surface distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// `CREATE`.
    Create = 0,
    /// Stored-set churn: `INSERT_KEYS`, `REMOVE_KEYS`, `DROP_SET`.
    SetChurn = 1,
    /// Namespace-occupancy churn: `OCC_INSERT`, `OCC_REMOVE`.
    Occupancy = 2,
    /// `SAMPLE` and `SAMPLE_MANY`.
    Sample = 3,
    /// `RECONSTRUCT` and `RECONSTRUCT_RANGE`.
    Reconstruct = 4,
    /// `BATCH`.
    Batch = 5,
    /// `SAVE` and `LOAD`.
    Snapshot = 6,
    /// Everything else: `PING`, `GET`, `LIST_SETS`, `STATS`, `METRICS`,
    /// `SHUTDOWN`.
    Admin = 7,
}

impl OpClass {
    /// Every class, in wire-tag order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Create,
        OpClass::SetChurn,
        OpClass::Occupancy,
        OpClass::Sample,
        OpClass::Reconstruct,
        OpClass::Batch,
        OpClass::Snapshot,
        OpClass::Admin,
    ];

    /// The tag used for `total` rows in the STATS reply (not a class).
    pub const TOTAL_TAG: u8 = 255;

    /// The wire tag shipped in [`OpLatencyRow::op`].
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<OpClass> {
        OpClass::ALL.get(tag as usize).copied()
    }

    /// Human-readable class name (for the CLI's stats rendering).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Create => "create",
            OpClass::SetChurn => "set-churn",
            OpClass::Occupancy => "occupancy",
            OpClass::Sample => "sample",
            OpClass::Reconstruct => "reconstruct",
            OpClass::Batch => "batch",
            OpClass::Snapshot => "snapshot",
            OpClass::Admin => "admin",
        }
    }

    /// Which class a request is accounted under.
    pub fn classify(req: &Request) -> OpClass {
        match req {
            Request::Create { .. } => OpClass::Create,
            Request::InsertKeys { .. } | Request::RemoveKeys { .. } | Request::DropSet { .. } => {
                OpClass::SetChurn
            }
            Request::OccInsert { .. } | Request::OccRemove { .. } => OpClass::Occupancy,
            Request::Sample { .. } | Request::SampleMany { .. } => OpClass::Sample,
            Request::Reconstruct { .. } | Request::ReconstructRange { .. } => OpClass::Reconstruct,
            Request::Batch { .. } => OpClass::Batch,
            Request::Save | Request::Load { .. } => OpClass::Snapshot,
            Request::Ping
            | Request::Get { .. }
            | Request::ListSets
            | Request::Stats
            | Request::Metrics
            | Request::Shutdown => OpClass::Admin,
        }
    }
}

/// Thread-safe per-class latency histograms, shared by every worker.
///
/// Each class is a [`bst_obs::AtomicHistogram`], so recording on the
/// serving path is two relaxed atomic ops — no lock — and the same
/// handles double as the `bst_server_request_latency_us` series on the
/// server's metrics registry ([`Self::class_histogram`]): STATS rows
/// and a METRICS scrape read the very same cells.
pub struct StatsRegistry {
    hists: Vec<AtomicHistogram>,
}

impl StatsRegistry {
    /// An empty registry (one histogram per [`OpClass`]).
    pub fn new() -> Self {
        StatsRegistry {
            hists: OpClass::ALL
                .iter()
                .map(|_| AtomicHistogram::new(HIST_LO_US, HIST_HI_US, HIST_BINS))
                .collect(),
        }
    }

    /// Records one served request of class `op` that took `micros` µs.
    pub fn record(&self, op: OpClass, micros: f64) {
        self.hists[op.tag() as usize].record(micros);
    }

    /// A clone of one class's histogram handle — shares cells with the
    /// registry, for registration on a [`bst_obs::MetricsRegistry`].
    pub fn class_histogram(&self, op: OpClass) -> AtomicHistogram {
        self.hists[op.tag() as usize].clone()
    }

    /// Percentile rows for every class with at least one observation,
    /// plus the merged grand total (`None` while nothing was recorded).
    pub fn rows(&self) -> (Vec<OpLatencyRow>, Option<OpLatencyRow>) {
        let mut rows = Vec::new();
        let mut merged = Histogram::new(HIST_LO_US, HIST_HI_US, HIST_BINS);
        for (class, h) in OpClass::ALL.iter().zip(self.hists.iter()) {
            let snap = h.snapshot();
            merged.merge(&snap);
            if let Some(row) = row_of(class.tag(), &snap) {
                rows.push(row);
            }
        }
        (rows, row_of(OpClass::TOTAL_TAG, &merged))
    }
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry::new()
    }
}

fn row_of(tag: u8, h: &Histogram) -> Option<OpLatencyRow> {
    let count = h.total() + h.outliers();
    if count == 0 {
        return None;
    }
    // Outlier-only histograms have no in-range percentiles; report the
    // range ceiling rather than dropping the row (count still matters).
    let q = |p: Option<f64>| p.unwrap_or(HIST_HI_US);
    Some(OpLatencyRow {
        op: tag,
        count,
        p50_us: q(h.p50()),
        p95_us: q(h.p95()),
        p99_us: q(h.p99()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_every_opcode_family() {
        assert_eq!(
            OpClass::classify(&Request::Create { keys: vec![] }),
            OpClass::Create
        );
        assert_eq!(
            OpClass::classify(&Request::DropSet { id: 1 }),
            OpClass::SetChurn
        );
        assert_eq!(
            OpClass::classify(&Request::OccInsert { key: 2 }),
            OpClass::Occupancy
        );
        assert_eq!(
            OpClass::classify(&Request::SampleMany {
                target: crate::protocol::Target::Stored(0),
                r: 4,
                seed: 0
            }),
            OpClass::Sample
        );
        assert_eq!(OpClass::classify(&Request::Save), OpClass::Snapshot);
        assert_eq!(OpClass::classify(&Request::Ping), OpClass::Admin);
        for class in OpClass::ALL {
            assert_eq!(OpClass::from_tag(class.tag()), Some(class));
            assert!(!class.name().is_empty());
        }
        assert_eq!(OpClass::from_tag(OpClass::TOTAL_TAG), None);
    }

    #[test]
    fn rows_report_counts_and_merged_total() {
        let reg = StatsRegistry::new();
        assert_eq!(reg.rows(), (vec![], None));
        for _ in 0..100 {
            reg.record(OpClass::Sample, 50.0);
        }
        reg.record(OpClass::Batch, 5_000.0);
        let (rows, total) = reg.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].op, OpClass::Sample.tag());
        assert_eq!(rows[0].count, 100);
        assert_eq!(rows[1].op, OpClass::Batch.tag());
        let total = total.expect("recorded requests");
        assert_eq!(total.op, OpClass::TOTAL_TAG);
        assert_eq!(total.count, 101);
        // 100 of 101 samples sit at 50µs: the median must be in that bin.
        let bin = (HIST_HI_US - HIST_LO_US) / HIST_BINS as f64;
        assert!(total.p50_us <= 50.0 + bin, "p50 {}", total.p50_us);
    }

    #[test]
    fn outlier_only_class_still_counts() {
        let reg = StatsRegistry::new();
        reg.record(OpClass::Snapshot, HIST_HI_US * 2.0);
        let (rows, total) = reg.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[0].p99_us, HIST_HI_US);
        assert_eq!(total.unwrap().count, 1);
    }
}
