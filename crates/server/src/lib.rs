#![forbid(unsafe_code)]
//! # bst-server — the networked sampling/reconstruction service
//!
//! `bst-shard` gives one process a mutable, sharded BloomSampleTree
//! engine; this crate puts that engine behind a socket. A `bst-server`
//! process owns one [`bst_shard::ShardedBstSystem`] and serves the full
//! facade over a small framed binary protocol: set lifecycle
//! (CREATE / INSERT_KEYS / REMOVE_KEYS / DROP_SET), occupancy churn
//! (OCC_INSERT / OCC_REMOVE), the query surface (SAMPLE, SAMPLE_MANY,
//! RECONSTRUCT, RECONSTRUCT_RANGE, BATCH — stored ids and ad-hoc
//! filters both), whole-engine snapshots (SAVE / LOAD), a live STATS
//! surface (engine shape, weight-cache effectiveness, cumulative
//! engine OpStats, per-op latency percentiles), and a METRICS scrape
//! (the full [`bst_obs::MetricsRegistry`] as a Prometheus text page).
//!
//! ## Layering
//!
//! * [`frame`] — length-prefixed framing over any byte stream.
//! * [`protocol`] — typed [`protocol::Request`] / [`protocol::Response`]
//!   / [`protocol::WireError`] enums and their deterministic codec,
//!   following the `bst_core::persistence` conventions.
//! * [`session`] — per-connection caches of open
//!   [`bst_shard::ShardQuery`] handles, so repeat queries ride the
//!   engine's warm path across the wire; epoch-flushed when a wire
//!   `LOAD` swaps the engine.
//! * [`handler`] — request dispatch onto the engine facade.
//! * [`server`] — the accept loop, worker threads, backpressure
//!   (max-connections → typed `Busy`, max-frame-size → drain +
//!   `FrameTooLarge`), and clean shutdown.
//! * [`client`] — a small blocking client used by the CLI, the
//!   `tcp_service` example, and the e2e tests.
//! * [`stats`] — per-op latency histograms
//!   ([`bst_obs::AtomicHistogram`]) behind the STATS opcode; the same
//!   cells feed the METRICS page's `bst_server_request_latency_us`.
//!
//! ## Observability
//!
//! Every server owns one [`bst_obs::MetricsRegistry`] (server counters,
//! engine shape, weight-cache outcomes, batch-phase timings, request
//! latency summaries) and one [`bst_obs::RingRecorder`] installed as
//! the engine's tracer, so core query spans and shard batch spans are
//! inspectable in-process via `ServerState::trace_dump`. Engine-shape
//! series read through a weak reference at scrape time and therefore
//! follow the engine across wire `LOAD` swaps.
//!
//! ## Determinism across the wire
//!
//! Sampling commands carry a client-chosen RNG seed and the server
//! draws from a fresh seeded generator per request, so a wire sample
//! against a given engine state is bit-identical to an in-process
//! `StdRng::seed_from_u64(seed)` draw against the same state — warm or
//! cold, local or remote. The e2e tests pin exactly that.
//!
//! ```no_run
//! use bst_server::client::Client;
//! use bst_server::protocol::Target;
//! use bst_server::server::{serve, ServerConfig};
//! use bst_shard::ShardedBstSystem;
//!
//! let engine = ShardedBstSystem::builder(65_536).shards(4).build();
//! let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let set = client.create((0..512u64).collect()).unwrap();
//! let key = client.sample(Target::Stored(set), 42).unwrap();
//! assert!(key < 65_536);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod handler;
pub mod protocol;
pub mod server;
pub mod session;
pub mod stats;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response, StatsReply, Target, WireError};
pub use server::{serve, ServerConfig, ServerHandle};
