//! Request dispatch: one decoded [`Request`] in, one typed reply out.
//!
//! The handler owns the mapping from wire commands onto the
//! `ShardedBstSystem` facade and the session's warm-handle caches.
//! Determinism contract: every sampling command carries a client
//! `seed`, and the server draws from a fresh `StdRng::seed_from_u64`
//! per request — so the same request against the same engine state
//! returns the same keys whether the handle was warm or cold, which the
//! e2e tests pin bit-for-bit against in-process draws.

use rand::rngs::StdRng;
use rand::SeedableRng;

use bst_core::error::BstError;
use bst_core::store::FilterId;
use bst_shard::{DurableError, ShardedBstSystem};

use crate::protocol::{Request, Response, StatsReply, Target, WireError};
use crate::server::ServerState;
use crate::session::Session;

/// The handler's verdict: a reply frame body, plus whether the server
/// should stop accepting after this reply is flushed.
pub struct Outcome {
    /// What to send back.
    pub reply: Result<Response, WireError>,
    /// True only for a served `SHUTDOWN`.
    pub shutdown_after: bool,
}

impl Outcome {
    fn reply(reply: Result<Response, WireError>) -> Self {
        Outcome {
            reply,
            shutdown_after: false,
        }
    }
}

/// Maps a durability failure onto the wire: engine rejections keep
/// their own typed variants; disk and replay trouble surfaces as
/// [`WireError::Persist`].
fn wire_durable(e: DurableError) -> WireError {
    match e {
        DurableError::Engine(e) => WireError::from(e),
        other => WireError::Persist {
            message: other.to_string(),
        },
    }
}

/// Serves one request against the shared state and this connection's
/// session. Never panics on adversarial input: decode failures arrive
/// pre-typed, and engine errors map through `WireError::from`.
pub fn handle(state: &ServerState, session: &mut Session, req: Request) -> Outcome {
    let engine = state.engine.read();
    session.sync(engine.epoch);
    let sys = &engine.system;
    match req {
        Request::Ping => Outcome::reply(Ok(Response::Pong)),
        // Mutations: with a durability layer present they route through
        // it — applied *and* logged before the reply frame is written,
        // so every acked mutation survives a crash. The durable engine
        // slot and `sys` are clones of the same shared system, so the
        // effect is visible to queries either way.
        Request::Create { keys } => Outcome::reply(match &state.durable {
            Some(d) => d
                .create(keys)
                .map(|id| Response::Created { id: id.raw() })
                .map_err(wire_durable),
            None => sys
                .create(keys)
                .map(|id| Response::Created { id: id.raw() })
                .map_err(WireError::from),
        }),
        Request::InsertKeys { id, keys } => Outcome::reply(match &state.durable {
            Some(d) => d
                .insert_keys(FilterId::from_raw(id), keys)
                .map(|()| Response::Ok)
                .map_err(wire_durable),
            None => sys
                .insert_keys(FilterId::from_raw(id), keys)
                .map(|()| Response::Ok)
                .map_err(WireError::from),
        }),
        Request::RemoveKeys { id, keys } => Outcome::reply(match &state.durable {
            Some(d) => d
                .remove_keys(FilterId::from_raw(id), keys)
                .map(|()| Response::Ok)
                .map_err(wire_durable),
            None => sys
                .remove_keys(FilterId::from_raw(id), keys)
                .map(|()| Response::Ok)
                .map_err(WireError::from),
        }),
        Request::DropSet { id } => {
            let out = match &state.durable {
                Some(d) => d.drop_set(FilterId::from_raw(id)).map_err(wire_durable),
                None => sys
                    .drop_set(FilterId::from_raw(id))
                    .map_err(WireError::from),
            };
            session.evict_stored(id);
            Outcome::reply(out.map(|()| Response::Ok))
        }
        Request::OccInsert { key } => Outcome::reply(match &state.durable {
            Some(d) => d
                .insert_occupied(key)
                .map(|generation| Response::Generation { generation })
                .map_err(wire_durable),
            None => sys
                .insert_occupied(key)
                .map(|generation| Response::Generation { generation })
                .map_err(WireError::from),
        }),
        Request::OccRemove { key } => Outcome::reply(match &state.durable {
            Some(d) => d
                .remove_occupied(key)
                .map(|generation| Response::Generation { generation })
                .map_err(wire_durable),
            None => sys
                .remove_occupied(key)
                .map(|generation| Response::Generation { generation })
                .map_err(WireError::from),
        }),
        Request::Get { id } => Outcome::reply(
            sys.get(FilterId::from_raw(id))
                .map(|f| Response::Filter {
                    bytes: bst_bloom::codec::encode(&f).to_vec(),
                })
                .map_err(WireError::from),
        ),
        Request::ListSets => {
            let mut ids: Vec<u64> = sys.ids().iter().map(|id| id.raw()).collect();
            ids.sort_unstable();
            Outcome::reply(Ok(Response::Sets { ids }))
        }
        Request::Sample { target, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            Outcome::reply(
                with_handle(state, session, sys, &target, |q| q.sample(&mut rng))
                    .map(|key| Response::Sampled { key }),
            )
        }
        Request::SampleMany { target, r, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            Outcome::reply(
                with_handle(state, session, sys, &target, |q| {
                    q.sample_many(r as usize, &mut rng)
                })
                .map(|keys| Response::Keys { keys }),
            )
        }
        Request::Reconstruct { target } => Outcome::reply(
            with_handle(state, session, sys, &target, |q| q.reconstruct())
                .map(|keys| Response::Keys { keys }),
        ),
        Request::ReconstructRange { target, start, end } => Outcome::reply(
            with_handle(state, session, sys, &target, |q| {
                q.reconstruct_range(start..end)
            })
            .map(|keys| Response::Keys { keys }),
        ),
        Request::Batch { targets, seed } => Outcome::reply(batch(state, sys, &targets, seed)),
        Request::Save => {
            // With a durability layer, SAVE is "checkpoint + truncate":
            // the snapshot is published atomically on disk and the log's
            // covered tail drops. The reply still carries the snapshot
            // bytes, so clients work identically in both modes.
            if let Some(d) = &state.durable {
                if let Err(e) = d.checkpoint() {
                    return Outcome::reply(Err(wire_durable(e)));
                }
            }
            Outcome::reply(Ok(Response::Snapshot {
                bytes: sys.to_bytes(),
            }))
        }
        Request::Load { bytes } => {
            // Decode outside any lock, swap under the write lock; the
            // epoch bump tells every session its handles are orphans.
            drop(engine);
            if let Some(d) = &state.durable {
                // Durable LOAD: an empty body recovers from disk
                // (newest checkpoint + log-tail replay); a snapshot
                // body is adopted as the new durable state. The write
                // lock is taken *before* the durable swap: every other
                // handler (mutations included) runs under the read
                // lock, so nothing can ack against the swapped-in
                // durable engine while `state.engine` still serves the
                // old one — that window lost acked creates.
                let decoded = if bytes.is_empty() {
                    None
                } else {
                    match ShardedBstSystem::from_bytes(&bytes) {
                        Ok(system) => Some(system),
                        Err(e) => return Outcome::reply(Err(WireError::from(e))),
                    }
                };
                let mut engine = state.engine.write();
                let recovered = match decoded {
                    None => d.recover_from_disk().map_err(wire_durable),
                    Some(system) => d
                        .adopt(system.clone())
                        .map_err(wire_durable)
                        .map(|()| system),
                };
                return match recovered {
                    Ok(system) => {
                        state.instrument_engine(&system);
                        engine.system = system;
                        engine.epoch += 1;
                        Outcome::reply(Ok(Response::Ok))
                    }
                    Err(e) => Outcome::reply(Err(e)),
                };
            }
            match ShardedBstSystem::from_bytes(&bytes) {
                Ok(system) => {
                    // The replacement engine reports into the same trace
                    // ring and batch histograms as the one it replaces.
                    state.instrument_engine(&system);
                    let mut engine = state.engine.write();
                    engine.system = system;
                    engine.epoch += 1;
                    Outcome::reply(Ok(Response::Ok))
                }
                Err(e) => Outcome::reply(Err(WireError::from(e))),
            }
        }
        Request::Stats => {
            let (ops, total) = state.stats.rows();
            let cache = sys.weight_cache_stats();
            Outcome::reply(Ok(Response::Stats(StatsReply {
                namespace: sys.namespace(),
                shards: sys.shard_count() as u32,
                sets: sys.len() as u64,
                occupied: sys.occupied_count(),
                epoch: engine.epoch,
                active_connections: state.active_connections(),
                sessions_served: state.sessions_served(),
                sessions_refused: state.sessions_refused(),
                frames_served: state.frames_served(),
                weight_cache_hits: cache.hits,
                weight_cache_misses: cache.misses,
                weight_cache_repairs: cache.repairs,
                engine_intersections: state.engine_ops.intersections.get(),
                engine_memberships: state.engine_ops.memberships.get(),
                engine_nodes_visited: state.engine_ops.nodes_visited.get(),
                engine_backtracks: state.engine_ops.backtracks.get(),
                ops,
                total,
            })))
        }
        Request::Metrics => {
            // Release the engine read lock first: scrape-time callbacks
            // re-enter it to read the live engine shape.
            drop(engine);
            Outcome::reply(Ok(Response::Metrics {
                text: bst_obs::expo::render(&state.metrics),
            }))
        }
        Request::Shutdown => Outcome {
            reply: Ok(Response::Ok),
            shutdown_after: true,
        },
    }
}

/// Resolves a target to a (possibly cached) handle and runs `f` on it,
/// then drains the handle's per-call [`bst_core::OpStats`] into the
/// server's cumulative engine totals. A stored handle that reports
/// `UnknownFilterId` is evicted so the session does not pin a handle
/// onto a dropped set.
fn with_handle<T>(
    state: &ServerState,
    session: &mut Session,
    sys: &ShardedBstSystem,
    target: &Target,
    f: impl FnOnce(&bst_shard::ShardQuery) -> Result<T, BstError>,
) -> Result<T, WireError> {
    match target {
        Target::Stored(raw) => {
            let out = match session.stored_handle(sys, *raw) {
                Ok(q) => {
                    let out = f(q);
                    state.note_engine_stats(q.take_stats());
                    out
                }
                Err(e) => Err(e),
            };
            if matches!(out, Err(BstError::UnknownFilterId(_))) {
                session.evict_stored(*raw);
            }
            out.map_err(WireError::from)
        }
        Target::Adhoc(bytes) => {
            let filter = bst_bloom::codec::decode(bytes).map_err(|e| WireError::Malformed {
                context: format!("ad-hoc filter: {e}"),
            })?;
            let q = session.adhoc_handle(sys, bytes, &filter);
            let out = f(q);
            state.note_engine_stats(q.take_stats());
            out.map_err(WireError::from)
        }
    }
}

/// Serves a mixed batch: id-addressed slots ride the engine's
/// `query_batch_ids` scatter (persistent weight cache), ad-hoc slots
/// ride `query_batch`, both with the same client seed, and the answers
/// are reassembled into request order. A slot whose filter bytes fail
/// to decode fails alone — the rest of the batch still runs. Batch
/// OpStats feed the server's cumulative engine totals.
fn batch(
    state: &ServerState,
    sys: &ShardedBstSystem,
    targets: &[Target],
    seed: u64,
) -> Result<Response, WireError> {
    let mut results: Vec<Option<Result<u64, WireError>>> = vec![None; targets.len()];
    let mut id_slots = Vec::new();
    let mut ids = Vec::new();
    let mut filter_slots = Vec::new();
    let mut filters = Vec::new();
    for (slot, target) in targets.iter().enumerate() {
        match target {
            Target::Stored(raw) => {
                id_slots.push(slot);
                ids.push(FilterId::from_raw(*raw));
            }
            Target::Adhoc(bytes) => match bst_bloom::codec::decode(bytes) {
                Ok(f) => {
                    filter_slots.push(slot);
                    filters.push(f);
                }
                Err(e) => {
                    results[slot] = Some(Err(WireError::Malformed {
                        context: format!("ad-hoc filter in batch slot {slot}: {e}"),
                    }))
                }
            },
        }
    }
    if !ids.is_empty() {
        let (answers, stats) = sys.query_batch_ids(&ids, seed, 0);
        state.note_engine_stats(stats);
        for (slot, ans) in id_slots.into_iter().zip(answers) {
            results[slot] = Some(ans.map_err(WireError::from));
        }
    }
    if !filters.is_empty() {
        let (answers, stats) = sys.query_batch(&filters, seed, 0);
        state.note_engine_stats(stats);
        for (slot, ans) in filter_slots.into_iter().zip(answers) {
            results[slot] = Some(ans.map_err(WireError::from));
        }
    }
    Ok(Response::Batch {
        results: results
            .into_iter()
            .enumerate()
            .map(|(slot, r)| match r {
                Some(a) => a,
                // Every slot is an id, an ad-hoc filter, or a decode
                // error, so this arm is dead; answer it in-protocol
                // rather than panicking the connection worker.
                None => Err(WireError::Malformed {
                    context: format!("batch slot {slot} produced no answer"),
                }),
            })
            .collect(),
    })
}
