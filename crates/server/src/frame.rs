//! Length-prefixed framing over a byte stream.
//!
//! A frame is `len u32 LE | payload` where `len` counts payload bytes
//! only. Zero-length frames are invalid (every payload carries at least
//! a two-byte header), which lets readers treat `len == 0` as protocol
//! corruption rather than an ambiguous keep-alive.

use std::io::{self, Read, Write};

/// Hard ceiling a client accepts for a single response payload. Whole
/// engine snapshots travel in one frame, so this is sized well above any
/// realistic `ShardedBstSystem::to_bytes` output (1 GiB) while still
/// bounding a corrupt length prefix.
pub const CLIENT_MAX_FRAME: u64 = 1 << 30;

/// Writes one frame: length prefix, payload, flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, blocking. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error. Lengths above `max` are rejected without allocating.
pub fn read_frame<R: Read>(r: &mut R, max: u64) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as u64;
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame",
        ));
    }
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrips_frames_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"bb").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().unwrap(),
            b"alpha".to_vec()
        );
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().unwrap(),
            b"bb".to_vec()
        );
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_body_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Truncate inside the body.
        let mut cursor = Cursor::new(buf[..6].to_vec());
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncate inside the header.
        let mut cursor = Cursor::new(vec![3u8, 0]);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn rejects_zero_and_oversized_lengths() {
        let mut cursor = Cursor::new(vec![0u8; 4]);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 64]).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 63).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
