//! The TCP service: accept loop, worker threads, backpressure, and
//! clean shutdown.
//!
//! One thread per connection over a nonblocking accept loop — no async
//! runtime in the vendor set, and the engine's scatter-gather already
//! spreads a single request across cores, so connection concurrency is
//! the right (and sufficient) unit of parallelism here.
//!
//! ## Backpressure
//!
//! * **Connections:** at most [`ServerConfig::max_connections`] workers
//!   at once. An arrival beyond that is answered with a typed
//!   [`WireError::Busy`] frame and closed immediately — the client gets
//!   a verdict, not a hang.
//! * **Frames:** a request frame declaring more than
//!   [`ServerConfig::max_frame`] payload bytes is drained off the socket
//!   (bounded scratch, nothing allocated at the declared size) and
//!   answered with [`WireError::FrameTooLarge`]; the connection stays
//!   usable for well-formed follow-ups.
//!
//! ## Shutdown
//!
//! A single `AtomicBool` is observed by the accept loop and by every
//! worker's read poll (sockets run with short read timeouts, so no
//! thread ever blocks past the poll interval). Shutdown arrives either
//! in-process via [`ServerHandle::shutdown`] or over the wire via the
//! `SHUTDOWN` opcode, which replies `Ok` first and then raises the flag.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use bst_core::OpStats;
use bst_obs::{Counter, Gauge, MetricsRegistry, Recorder, RingRecorder, SpanEvent};
use bst_shard::{BatchObs, DurableBstSystem, ShardedBstSystem};

use crate::frame::write_frame;
use crate::handler;
use crate::protocol::{self, WireError};
use crate::session::Session;
use crate::stats::{OpClass, StatsRegistry};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// Accept-loop idle backoff: first retry after an empty accept. Arrivals
/// during a quiet spell wait at most the current backoff, so the floor
/// keeps post-idle connection latency in the sub-millisecond range.
const ACCEPT_IDLE_MIN: Duration = Duration::from_micros(200);

/// Accept-loop idle backoff ceiling. A long-idle listener burns one poll
/// every 5ms instead of spinning, and still answers a new connection
/// within 5ms worst-case.
const ACCEPT_IDLE_MAX: Duration = Duration::from_millis(5);

/// Spans kept by the server's trace ring (oldest evicted first).
const TRACE_RING_CAP: usize = 1024;

/// Serving limits; the defaults suit tests and small deployments.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently before arrivals get `Busy`.
    pub max_connections: usize,
    /// Largest accepted request payload, in bytes. Must cover the
    /// snapshots `LOAD` ships; the 64 MiB default fits engines far past
    /// the test sizes.
    pub max_frame: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_frame: 64 << 20,
        }
    }
}

/// The engine behind the service, swap-able as a unit by wire `LOAD`.
pub struct Engine {
    /// Bumped on every engine swap; sessions compare-and-flush.
    pub epoch: u64,
    /// The sharded system itself.
    pub system: ShardedBstSystem,
}

/// Cumulative engine-side [`OpStats`] totals, drained from every served
/// query (handles and batches both). Server-owned, so they survive a
/// wire `LOAD` swapping the engine.
#[derive(Default)]
pub struct EngineOpTotals {
    /// Bloom probe intersections (paper §7.1 units).
    pub intersections: Counter,
    /// Individual membership tests.
    pub memberships: Counter,
    /// Tree nodes visited.
    pub nodes_visited: Counter,
    /// Sampling descent backtracks.
    pub backtracks: Counter,
}

impl EngineOpTotals {
    fn note(&self, stats: OpStats) {
        self.intersections.add(stats.intersections);
        self.memberships.add(stats.memberships);
        self.nodes_visited.add(stats.nodes_visited);
        self.backtracks.add(stats.backtracks);
    }
}

/// State shared by the accept loop and every worker.
pub struct ServerState {
    /// The served engine, behind a read-write lock: requests take read,
    /// only `LOAD` takes write.
    pub engine: RwLock<Engine>,
    /// Per-op latency histograms.
    pub stats: StatsRegistry,
    /// The unified metrics registry behind the `METRICS` opcode and the
    /// `bst-server metrics` CLI scrape.
    pub metrics: MetricsRegistry,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    sessions_served: AtomicU64,
    sessions_refused: AtomicU64,
    frames_served: AtomicU64,
    /// Frames refused before dispatch: zero-length, over-limit, or
    /// undecodable payloads.
    frame_errors: Counter,
    /// Warm [`Session`] handle slots currently held across all live
    /// connections (stored + ad-hoc caches).
    session_slots: Gauge,
    pub(crate) engine_ops: EngineOpTotals,
    pub(crate) trace: Arc<RingRecorder>,
    pub(crate) batch_obs: Arc<BatchObs>,
    /// The durability layer, when serving with a WAL directory: every
    /// mutation routes through it (logged before the ack), `SAVE` maps
    /// to checkpoint + log truncation, and `LOAD` with an empty body
    /// maps to recovery from disk.
    pub(crate) durable: Option<DurableBstSystem>,
}

impl ServerState {
    fn new(system: ShardedBstSystem, cfg: ServerConfig, durable: Option<DurableBstSystem>) -> Self {
        ServerState {
            engine: RwLock::new(Engine { epoch: 0, system }),
            stats: StatsRegistry::new(),
            metrics: MetricsRegistry::new(),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            sessions_served: AtomicU64::new(0),
            sessions_refused: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            frame_errors: Counter::new(),
            session_slots: Gauge::new(),
            engine_ops: EngineOpTotals::default(),
            trace: Arc::new(RingRecorder::new(TRACE_RING_CAP)),
            batch_obs: Arc::new(BatchObs::unregistered()),
            durable,
        }
    }

    /// The durability layer, if this server was started with one
    /// ([`serve_durable`]) — test and embedding visibility.
    pub fn durable(&self) -> Option<&DurableBstSystem> {
        self.durable.as_ref()
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown; every loop exits within its poll interval.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> u32 {
        self.active.load(Ordering::Relaxed) as u32
    }

    /// Connections accepted and served since startup.
    pub fn sessions_served(&self) -> u64 {
        self.sessions_served.load(Ordering::Relaxed)
    }

    /// Connections refused by the max-connections policy.
    pub fn sessions_refused(&self) -> u64 {
        self.sessions_refused.load(Ordering::Relaxed)
    }

    /// Frames processed since startup.
    pub fn frames_served(&self) -> u64 {
        self.frames_served.load(Ordering::Relaxed)
    }

    /// Folds one served query's drained [`OpStats`] into the cumulative
    /// engine totals (STATS `engine_*` fields, `bst_engine_ops_total`).
    pub(crate) fn note_engine_stats(&self, stats: OpStats) {
        self.engine_ops.note(stats);
    }

    /// The most recent spans emitted by the engine's tracer (core query
    /// ops and shard batches), oldest first — the in-process trace-dump
    /// surface for embedders and tests.
    pub fn trace_dump(&self) -> Vec<SpanEvent> {
        self.trace.recent()
    }

    /// Installs the trace ring and batch-phase histograms into `system`
    /// — called at startup and again after every wire `LOAD`, so a
    /// replacement engine keeps reporting into the same sinks.
    pub(crate) fn instrument_engine(&self, system: &ShardedBstSystem) {
        system.set_recorder(Some(self.trace.clone() as Arc<dyn Recorder>));
        system.set_batch_obs(Some(Arc::clone(&self.batch_obs)));
    }
}

/// Registers every server- and engine-level series on `state.metrics`.
/// Engine-shape and weight-cache series read through a [`Weak`] back
/// into the state at scrape time, so they follow the engine across wire
/// `LOAD` swaps instead of pinning a dead engine's counters.
fn install_metrics(state: &Arc<ServerState>) {
    let m = &state.metrics;
    let weak = |f: fn(&ServerState) -> f64| {
        let w = std::sync::Arc::downgrade(state);
        move || w.upgrade().map_or(0.0, |s| f(&s))
    };

    m.gauge_fn(
        "bst_server_active_connections",
        "Connections currently being served",
        &[],
        weak(|s| s.active_connections() as f64),
    );
    m.gauge_fn(
        "bst_server_sessions_served_total",
        "Connections accepted and served since startup",
        &[],
        weak(|s| s.sessions_served() as f64),
    );
    m.gauge_fn(
        "bst_server_sessions_refused_total",
        "Connections refused by the max-connections policy",
        &[],
        weak(|s| s.sessions_refused() as f64),
    );
    m.gauge_fn(
        "bst_server_frames_served_total",
        "Frames processed since startup",
        &[],
        weak(|s| s.frames_served() as f64),
    );
    m.register_counter(
        "bst_server_frame_errors_total",
        "Frames refused before dispatch (zero-length, over-limit, or undecodable)",
        &[],
        state.frame_errors.clone(),
    );
    m.register_gauge(
        "bst_server_session_slots",
        "Warm query-handle slots held across all live sessions",
        &[],
        state.session_slots.clone(),
    );
    for class in OpClass::ALL {
        m.register_histogram(
            "bst_server_request_latency_us",
            "Served request latency in microseconds, by operation class",
            &[("op", class.name())],
            state.stats.class_histogram(class),
        );
    }
    for (kind, handle) in [
        ("intersections", &state.engine_ops.intersections),
        ("memberships", &state.engine_ops.memberships),
        ("nodes_visited", &state.engine_ops.nodes_visited),
        ("backtracks", &state.engine_ops.backtracks),
    ] {
        m.register_counter(
            "bst_engine_ops_total",
            "Cumulative engine OpStats drained from served queries (paper \u{a7}7.1 units)",
            &[("kind", kind)],
            handle.clone(),
        );
    }
    m.register_counter(
        "bst_engine_batches_total",
        "Two-phase scatter-gather batches served",
        &[],
        state.batch_obs.batches.clone(),
    );
    m.register_histogram(
        "bst_engine_batch_weigh_us",
        "Batch phase-1 (weighing) wall time in microseconds",
        &[],
        state.batch_obs.weigh_us.clone(),
    );
    m.register_histogram(
        "bst_engine_batch_sample_us",
        "Batch phase-2 (sampling) wall time in microseconds",
        &[],
        state.batch_obs.sample_us.clone(),
    );
    for (name, help, read) in [
        (
            "bst_engine_namespace",
            "Namespace size M",
            (|s: &ServerState| s.engine.read().system.namespace() as f64)
                as fn(&ServerState) -> f64,
        ),
        ("bst_engine_shards", "Shard count S", |s| {
            s.engine.read().system.shard_count() as f64
        }),
        ("bst_engine_sets", "Registered stored sets", |s| {
            s.engine.read().system.len() as f64
        }),
        ("bst_engine_occupied", "Occupied namespace ids", |s| {
            s.engine.read().system.occupied_count() as f64
        }),
        (
            "bst_engine_epoch",
            "Engine epoch (bumps on every wire LOAD)",
            |s| s.engine.read().epoch as f64,
        ),
    ] {
        m.gauge_fn(name, help, &[], weak(read));
    }
    for (kind, read) in [
        (
            "hits",
            (|s: &ServerState| s.engine.read().system.weight_cache_stats().hits)
                as fn(&ServerState) -> u64,
        ),
        ("misses", |s| {
            s.engine.read().system.weight_cache_stats().misses
        }),
        ("repairs", |s| {
            s.engine.read().system.weight_cache_stats().repairs
        }),
    ] {
        let w = std::sync::Arc::downgrade(state);
        m.counter_fn(
            "bst_engine_weight_cache_total",
            "Persistent weight-cache probe outcomes (follows the engine across LOAD)",
            &[("kind", kind)],
            move || w.upgrade().map_or(0, |s| read(&s)),
        );
    }
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state — test and embedding visibility.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Signals shutdown and joins the accept loop (which joins all
    /// workers). Idempotent.
    pub fn shutdown(&mut self) {
        self.state.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops — e.g. a client sent `SHUTDOWN`.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving `system` on a background accept
/// thread. Returns once the listener is bound and accepting.
pub fn serve<A: ToSocketAddrs>(
    system: ShardedBstSystem,
    addr: A,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_inner(system, None, addr, cfg)
}

/// Like [`serve`], but crash-safe: serves the engine recovered inside
/// `durable` and routes every mutation through its write-ahead log.
/// `SAVE` becomes "checkpoint + truncate the log" and `LOAD` with an
/// empty body becomes "recover from disk"; the WAL metrics bundle joins
/// the `METRICS` exposition page.
pub fn serve_durable<A: ToSocketAddrs>(
    durable: DurableBstSystem,
    addr: A,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let system = durable.system();
    serve_inner(system, Some(durable), addr, cfg)
}

fn serve_inner<A: ToSocketAddrs>(
    system: ShardedBstSystem,
    durable: Option<DurableBstSystem>,
    addr: A,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState::new(system, cfg, durable));
    state.instrument_engine(&state.engine.read().system);
    install_metrics(&state);
    if let Some(durable) = &state.durable {
        // WAL series are owned by the durability layer, not the engine,
        // so plain handle registration survives LOAD engine swaps.
        durable.obs().register(&state.metrics);
    }
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("bst-server-accept".into())
        .spawn(move || accept_loop(listener, accept_state))?;
    Ok(ServerHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
    })
}

/// Sleeps `total` in short slices, returning early the moment shutdown
/// is requested — the accept loop's backoff must never delay shutdown.
fn idle_sleep(state: &ServerState, total: Duration) {
    const SLICE: Duration = Duration::from_millis(1);
    let mut left = total;
    while !left.is_zero() && !state.shutting_down() {
        let nap = left.min(SLICE);
        std::thread::sleep(nap);
        left = left.saturating_sub(nap);
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    // Exponential idle backoff instead of a fixed 20ms nap: a fresh
    // arrival after a quiet spell is picked up within ACCEPT_IDLE_MIN..
    // ACCEPT_IDLE_MAX rather than a full fixed poll interval, and a
    // long-idle listener still converges to one syscall per 5ms.
    let mut idle = ACCEPT_IDLE_MIN;
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle = ACCEPT_IDLE_MIN;
                workers.retain(|w| !w.is_finished());
                // Accepted sockets inherit the listener's nonblocking
                // flag on some platforms; workers use timeout-based
                // polling instead.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                if state.active.load(Ordering::Relaxed) >= state.cfg.max_connections {
                    refuse_busy(stream, &state);
                    continue;
                }
                state.active.fetch_add(1, Ordering::Relaxed);
                state.sessions_served.fetch_add(1, Ordering::Relaxed);
                let worker_state = Arc::clone(&state);
                let spawned = std::thread::Builder::new()
                    .name("bst-server-conn".into())
                    .spawn(move || {
                        let _ = connection_loop(stream, &worker_state);
                        worker_state.active.fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Spawn failure: undo the accounting; the
                        // stream drops and the client sees a reset.
                        state.active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                idle_sleep(&state, idle);
                idle = (idle * 2).min(ACCEPT_IDLE_MAX);
            }
            // Transient accept errors (per-connection resets) do not
            // take the listener down.
            Err(_) => idle_sleep(&state, POLL),
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Answers an over-limit arrival with a typed `Busy` frame and closes.
fn refuse_busy(mut stream: TcpStream, state: &ServerState) {
    state.sessions_refused.fetch_add(1, Ordering::Relaxed);
    let e = WireError::Busy {
        active: state.active_connections(),
        max: state.cfg.max_connections as u32,
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_frame(&mut stream, &protocol::encode_error(&e));
}

/// Reads exactly `buf.len()` bytes, polling the shutdown flag across
/// read-timeout ticks. `Ok(false)` reports a clean EOF before the first
/// byte (only possible when `eof_ok`); mid-buffer EOF is an error.
fn poll_read_exact(
    stream: &mut TcpStream,
    state: &ServerState,
    buf: &mut [u8],
    eof_ok: bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if state.shutting_down() {
            return Err(io::Error::other("server shutting down"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Discards `len` bytes from the stream through a bounded scratch
/// buffer — the oversized-frame drain.
fn drain(stream: &mut TcpStream, state: &ServerState, mut len: u64) -> io::Result<()> {
    let mut scratch = [0u8; 8192];
    while len > 0 {
        let take = scratch.len().min(len as usize);
        if !poll_read_exact(stream, state, &mut scratch[..take], false)? {
            // With eof_ok = false the helper reports EOF as an error,
            // but keep this arm total rather than panicking the worker.
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-drain",
            ));
        }
        len -= take as u64;
    }
    Ok(())
}

/// Keeps the shared session-slot gauge honest for one connection: holds
/// the slots this session last reported and gives them back when the
/// connection ends on any path (EOF, shutdown, socket error).
struct SlotGuard<'a> {
    gauge: &'a Gauge,
    held: i64,
}

impl SlotGuard<'_> {
    fn update(&mut self, session: &Session) {
        let (stored, adhoc) = session.cached();
        let now = (stored + adhoc) as i64;
        self.gauge.add(now - self.held);
        self.held = now;
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.gauge.add(-self.held);
    }
}

/// Serves one connection until EOF, shutdown, or a fatal socket error.
fn connection_loop(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut session = Session::new(state.engine.read().epoch);
    let mut slots = SlotGuard {
        gauge: &state.session_slots,
        held: 0,
    };
    loop {
        // Frame header.
        let mut header = [0u8; 4];
        if !poll_read_exact(&mut stream, state, &mut header, true)? {
            return Ok(()); // clean EOF between frames
        }
        let len = u32::from_le_bytes(header) as u64;
        if len == 0 {
            state.frame_errors.inc();
            write_frame(
                &mut stream,
                &protocol::encode_error(&WireError::Malformed {
                    context: "zero-length frame".into(),
                }),
            )?;
            continue;
        }
        if len > state.cfg.max_frame {
            state.frame_errors.inc();
            drain(&mut stream, state, len)?;
            write_frame(
                &mut stream,
                &protocol::encode_error(&WireError::FrameTooLarge {
                    declared: len,
                    max: state.cfg.max_frame,
                }),
            )?;
            continue;
        }
        let mut payload = vec![0u8; len as usize];
        poll_read_exact(&mut stream, state, &mut payload, false)?;
        state.frames_served.fetch_add(1, Ordering::Relaxed);

        if state.shutting_down() {
            write_frame(
                &mut stream,
                &protocol::encode_error(&WireError::ShuttingDown),
            )?;
            return Ok(());
        }

        // Decode, dispatch, time, record, reply.
        let reply_bytes = match protocol::decode_request(&payload) {
            Err(e) => {
                state.frame_errors.inc();
                protocol::encode_error(&e)
            }
            Ok(req) => {
                let class = OpClass::classify(&req);
                let started = Instant::now();
                let outcome = handler::handle(state, &mut session, req);
                state
                    .stats
                    .record(class, started.elapsed().as_secs_f64() * 1e6);
                slots.update(&session);
                let bytes = match &outcome.reply {
                    Ok(resp) => protocol::encode_response(resp),
                    Err(e) => protocol::encode_error(e),
                };
                if outcome.shutdown_after {
                    write_frame(&mut stream, &bytes)?;
                    state.request_shutdown();
                    return Ok(());
                }
                bytes
            }
        };
        write_frame(&mut stream, &reply_bytes)?;
    }
}
