#![forbid(unsafe_code)]
//! The `bst-server` binary: serve a sharded engine over TCP, or poke a
//! running server (`ping` / `stats` / `shutdown`) from the same binary.
//!
//! ```text
//! bst-server serve [--addr 127.0.0.1:7878] [--namespace 65536]
//!                  [--shards 4] [--seed 42] [--max-conns 64]
//!                  [--max-frame-mib 64] [--wal-dir DIR]
//!                  [--fsync never|always] [--checkpoint-every 4096]
//! bst-server ping     [--addr 127.0.0.1:7878]
//! bst-server loadgen  [--addr 127.0.0.1:7878] [--sets 32] [--keys 64]
//!                     [--seed 42]
//! bst-server stats    [--addr 127.0.0.1:7878]
//! bst-server metrics  [--addr 127.0.0.1:7878]
//! bst-server shutdown [--addr 127.0.0.1:7878]
//! ```
//!
//! `metrics` scrapes the server's unified metrics registry and prints
//! the Prometheus text page to stdout — validated first, so a malformed
//! page is a non-zero exit rather than silent garbage (CI relies on
//! this).
//!
//! `serve` builds a fully occupied engine (every namespace id live, as
//! in the paper's dense experiments) and blocks until a client sends
//! SHUTDOWN or the process is killed. With `--wal-dir` the engine is
//! crash-safe: on a fresh directory the built engine is checkpointed
//! there, on a populated one the directory's state wins (checkpoint +
//! log-tail replay — the builder flags only describe the *initial*
//! engine), and every acked mutation hits the log before its reply.
//! `--fsync always` additionally flushes to stable storage per record.
//!
//! `loadgen` drives a deterministic burst of mutations (creates, key
//! inserts, occupancy churn) through a running server — the WAL crash
//! drill in CI uses it to populate state worth recovering. Flag parsing
//! is hand-rolled; no CLI dependency exists in the offline vendor set.

use std::process::ExitCode;

use bst_core::wal::FsyncPolicy;
use bst_server::client::Client;
use bst_server::server::{serve, serve_durable, ServerConfig};
use bst_server::stats::OpClass;
use bst_shard::{DurableBstSystem, DurableConfig, ShardedBstSystem};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: bst-server <serve|ping|stats|metrics|shutdown> [flags]");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "ping" => cmd_ping(&args[1..]),
        "loadgen" => cmd_loadgen(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "shutdown" => cmd_shutdown(&args[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bst-server: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--name value` out of `args`, complaining about stray flags.
fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("flag {name} needs a value")),
            };
        }
        i += 2;
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag {name}: cannot parse `{v}`")),
    }
}

fn check_known_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown flag `{}`", args[i]));
        }
        i += 2;
    }
    Ok(())
}

fn addr_of(args: &[String]) -> Result<String, String> {
    parse(args, "--addr", "127.0.0.1:7878".to_string())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_known_flags(
        args,
        &[
            "--addr",
            "--namespace",
            "--shards",
            "--seed",
            "--max-conns",
            "--max-frame-mib",
            "--wal-dir",
            "--fsync",
            "--checkpoint-every",
        ],
    )?;
    let addr = addr_of(args)?;
    let namespace: u64 = parse(args, "--namespace", 65_536)?;
    let shards: usize = parse(args, "--shards", 4)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let cfg = ServerConfig {
        max_connections: parse(args, "--max-conns", ServerConfig::default().max_connections)?,
        max_frame: parse(
            args,
            "--max-frame-mib",
            ServerConfig::default().max_frame >> 20,
        )? << 20,
    };
    let wal_dir = flag_value(args, "--wal-dir")?;
    let fsync = match flag_value(args, "--fsync")?.as_deref() {
        None | Some("never") => FsyncPolicy::Never,
        Some("always") => FsyncPolicy::Always,
        Some(other) => {
            return Err(format!(
                "flag --fsync: expected never|always, got `{other}`"
            ))
        }
    };
    let checkpoint_every: u64 = parse(args, "--checkpoint-every", 4096)?;
    let build = || {
        ShardedBstSystem::builder(namespace)
            .shards(shards)
            .seed(seed)
            .build()
    };
    let handle = match &wal_dir {
        Some(dir) => {
            let durable = DurableBstSystem::open(
                std::path::Path::new(dir),
                DurableConfig {
                    fsync,
                    checkpoint_every,
                },
                build,
            )
            .map_err(|e| format!("open wal dir {dir}: {e}"))?;
            serve_durable(durable, &addr, cfg)
        }
        None => serve(build(), &addr, cfg),
    }
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "bst-server listening on {} ({} ids, {} shards, max {} conns{})",
        handle.addr(),
        namespace,
        shards,
        cfg.max_connections,
        match &wal_dir {
            Some(dir) => format!(", wal {dir}"),
            None => String::new(),
        }
    );
    handle.join();
    println!("bst-server stopped");
    Ok(())
}

fn connect(args: &[String]) -> Result<Client, String> {
    check_known_flags(args, &["--addr"])?;
    let addr = addr_of(args)?;
    Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn cmd_ping(args: &[String]) -> Result<(), String> {
    connect(args)?.ping().map_err(|e| e.to_string())?;
    println!("pong");
    Ok(())
}

/// Drives a deterministic mutation burst through a running server:
/// `--sets` creates of `--keys` members each, a follow-up key insert
/// per set, and occupancy churn on a handful of ids. Every op is acked
/// before the next is sent, so against a WAL-backed server each printed
/// count is durably logged — the CI crash drill relies on that.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    check_known_flags(args, &["--addr", "--sets", "--keys", "--seed"])?;
    let addr = addr_of(args)?;
    let sets: u64 = parse(args, "--sets", 32)?;
    let keys_per_set: u64 = parse(args, "--keys", 64)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let namespace = client.stats().map_err(|e| e.to_string())?.namespace;
    if namespace == 0 {
        return Err("server namespace is empty".into());
    }
    let mut mutations = 0u64;
    for s in 0..sets {
        let base = seed.wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let members: Vec<u64> = (0..keys_per_set)
            .map(|j| base.wrapping_add(j.wrapping_mul(0x1000_0000_01B3)) % namespace)
            .collect();
        let id = client.create(members).map_err(|e| e.to_string())?;
        client
            .insert_keys(id, vec![base % namespace, base.wrapping_add(1) % namespace])
            .map_err(|e| e.to_string())?;
        mutations += 2;
        // Occupancy churn on a shifting window: vacate one id, restore
        // it, so the tree generation advances without shrinking state.
        if s % 4 == 0 {
            let key = base % namespace;
            client.occ_remove(key).map_err(|e| e.to_string())?;
            client.occ_insert(key).map_err(|e| e.to_string())?;
            mutations += 2;
        }
    }
    println!("loadgen: {sets} sets created, {mutations} follow-up mutations acked");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let stats = connect(args)?.stats().map_err(|e| e.to_string())?;
    println!(
        "engine: namespace {} | {} shards | {} sets | {} occupied | epoch {}",
        stats.namespace, stats.shards, stats.sets, stats.occupied, stats.epoch
    );
    println!(
        "serving: {} active / {} served / {} refused connections, {} frames",
        stats.active_connections,
        stats.sessions_served,
        stats.sessions_refused,
        stats.frames_served
    );
    println!(
        "weight cache: {} hits / {} misses / {} repairs",
        stats.weight_cache_hits, stats.weight_cache_misses, stats.weight_cache_repairs
    );
    println!(
        "engine ops: {} intersections / {} memberships / {} nodes visited / {} backtracks",
        stats.engine_intersections,
        stats.engine_memberships,
        stats.engine_nodes_visited,
        stats.engine_backtracks
    );
    if stats.ops.is_empty() {
        println!("latency: no requests recorded yet");
    } else {
        println!("latency (µs):     count      p50      p95      p99");
        for row in &stats.ops {
            let name = OpClass::from_tag(row.op).map_or("?", OpClass::name);
            println!(
                "  {name:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                row.count, row.p50_us, row.p95_us, row.p99_us
            );
        }
        if let Some(t) = &stats.total {
            println!(
                "  {:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                "total", t.count, t.p50_us, t.p95_us, t.p99_us
            );
        }
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let text = connect(args)?.metrics().map_err(|e| e.to_string())?;
    let series =
        bst_obs::expo::validate(&text).map_err(|e| format!("malformed metrics page: {e}"))?;
    print!("{text}");
    eprintln!("# scraped {series} samples, page well-formed");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    connect(args)?
        .shutdown_server()
        .map_err(|e| e.to_string())?;
    println!("server acknowledged shutdown");
    Ok(())
}
