#![forbid(unsafe_code)]
//! The `bst-server` binary: serve a sharded engine over TCP, or poke a
//! running server (`ping` / `stats` / `shutdown`) from the same binary.
//!
//! ```text
//! bst-server serve [--addr 127.0.0.1:7878] [--namespace 65536]
//!                  [--shards 4] [--seed 42] [--max-conns 64]
//!                  [--max-frame-mib 64]
//! bst-server ping     [--addr 127.0.0.1:7878]
//! bst-server stats    [--addr 127.0.0.1:7878]
//! bst-server metrics  [--addr 127.0.0.1:7878]
//! bst-server shutdown [--addr 127.0.0.1:7878]
//! ```
//!
//! `metrics` scrapes the server's unified metrics registry and prints
//! the Prometheus text page to stdout — validated first, so a malformed
//! page is a non-zero exit rather than silent garbage (CI relies on
//! this).
//!
//! `serve` builds a fully occupied engine (every namespace id live, as
//! in the paper's dense experiments) and blocks until a client sends
//! SHUTDOWN or the process is killed. Flag parsing is hand-rolled; no
//! CLI dependency exists in the offline vendor set.

use std::process::ExitCode;

use bst_server::client::Client;
use bst_server::server::{serve, ServerConfig};
use bst_server::stats::OpClass;
use bst_shard::ShardedBstSystem;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: bst-server <serve|ping|stats|metrics|shutdown> [flags]");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "ping" => cmd_ping(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "shutdown" => cmd_shutdown(&args[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bst-server: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--name value` out of `args`, complaining about stray flags.
fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("flag {name} needs a value")),
            };
        }
        i += 2;
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag {name}: cannot parse `{v}`")),
    }
}

fn check_known_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown flag `{}`", args[i]));
        }
        i += 2;
    }
    Ok(())
}

fn addr_of(args: &[String]) -> Result<String, String> {
    parse(args, "--addr", "127.0.0.1:7878".to_string())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_known_flags(
        args,
        &[
            "--addr",
            "--namespace",
            "--shards",
            "--seed",
            "--max-conns",
            "--max-frame-mib",
        ],
    )?;
    let addr = addr_of(args)?;
    let namespace: u64 = parse(args, "--namespace", 65_536)?;
    let shards: usize = parse(args, "--shards", 4)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let cfg = ServerConfig {
        max_connections: parse(args, "--max-conns", ServerConfig::default().max_connections)?,
        max_frame: parse(
            args,
            "--max-frame-mib",
            ServerConfig::default().max_frame >> 20,
        )? << 20,
    };
    let engine = ShardedBstSystem::builder(namespace)
        .shards(shards)
        .seed(seed)
        .build();
    let handle = serve(engine, &addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "bst-server listening on {} ({} ids, {} shards, max {} conns)",
        handle.addr(),
        namespace,
        shards,
        cfg.max_connections
    );
    handle.join();
    println!("bst-server stopped");
    Ok(())
}

fn connect(args: &[String]) -> Result<Client, String> {
    check_known_flags(args, &["--addr"])?;
    let addr = addr_of(args)?;
    Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn cmd_ping(args: &[String]) -> Result<(), String> {
    connect(args)?.ping().map_err(|e| e.to_string())?;
    println!("pong");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let stats = connect(args)?.stats().map_err(|e| e.to_string())?;
    println!(
        "engine: namespace {} | {} shards | {} sets | {} occupied | epoch {}",
        stats.namespace, stats.shards, stats.sets, stats.occupied, stats.epoch
    );
    println!(
        "serving: {} active / {} served / {} refused connections, {} frames",
        stats.active_connections,
        stats.sessions_served,
        stats.sessions_refused,
        stats.frames_served
    );
    println!(
        "weight cache: {} hits / {} misses / {} repairs",
        stats.weight_cache_hits, stats.weight_cache_misses, stats.weight_cache_repairs
    );
    println!(
        "engine ops: {} intersections / {} memberships / {} nodes visited / {} backtracks",
        stats.engine_intersections,
        stats.engine_memberships,
        stats.engine_nodes_visited,
        stats.engine_backtracks
    );
    if stats.ops.is_empty() {
        println!("latency: no requests recorded yet");
    } else {
        println!("latency (µs):     count      p50      p95      p99");
        for row in &stats.ops {
            let name = OpClass::from_tag(row.op).map_or("?", OpClass::name);
            println!(
                "  {name:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                row.count, row.p50_us, row.p95_us, row.p99_us
            );
        }
        if let Some(t) = &stats.total {
            println!(
                "  {:<12} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                "total", t.count, t.p50_us, t.p95_us, t.p99_us
            );
        }
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let text = connect(args)?.metrics().map_err(|e| e.to_string())?;
    let series =
        bst_obs::expo::validate(&text).map_err(|e| format!("malformed metrics page: {e}"))?;
    print!("{text}");
    eprintln!("# scraped {series} samples, page well-formed");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    connect(args)?
        .shutdown_server()
        .map_err(|e| e.to_string())?;
    println!("server acknowledged shutdown");
    Ok(())
}
