//! The wire protocol: typed request/response/error enums and their
//! deterministic binary codec.
//!
//! Every frame on the socket is length-prefixed: `len u32 | payload`,
//! where `len` counts payload bytes only (see [`crate::frame`]). The
//! payload layouts follow the `bst_core::persistence` conventions —
//! little-endian integers, `u8` tags for enum variants, explicit length
//! prefixes before repeated elements, and typed decode errors instead of
//! panics on malformed input.
//!
//! ```text
//! request:  version u8 | opcode u8 | body
//! response: version u8 | status u8 (0 = ok, 1 = err) | body
//! error:    tag u8 | variant payload          (see WireError)
//! target:   0 u8 | id u64                      (stored set)
//!         | 1 u8 | len u64 | bst-bloom codec bytes   (ad-hoc filter)
//! keys:     count u32 | count × u64
//! string:   len u32 | utf-8 bytes
//! ```
//!
//! The codec is deterministic: encoding the same value always produces
//! the same bytes (snapshot SAVE/LOAD round-trips over the wire are
//! byte-identical, pinned in `tests/e2e_server.rs`).

use bytes::{Buf, BufMut, BytesMut};

use bst_core::error::BstError;

/// Protocol version carried in every request and response header.
pub const PROTO_VERSION: u8 = 1;

/// Response status byte: the body is a [`Response`].
pub const STATUS_OK: u8 = 0;
/// Response status byte: the body is a [`WireError`].
pub const STATUS_ERR: u8 = 1;

// Opcodes (request header byte 2).
const OP_PING: u8 = 1;
const OP_CREATE: u8 = 2;
const OP_INSERT_KEYS: u8 = 3;
const OP_REMOVE_KEYS: u8 = 4;
const OP_DROP_SET: u8 = 5;
const OP_OCC_INSERT: u8 = 6;
const OP_OCC_REMOVE: u8 = 7;
const OP_GET: u8 = 8;
const OP_LIST_SETS: u8 = 9;
const OP_SAMPLE: u8 = 10;
const OP_SAMPLE_MANY: u8 = 11;
const OP_RECONSTRUCT: u8 = 12;
const OP_RECONSTRUCT_RANGE: u8 = 13;
const OP_BATCH: u8 = 14;
const OP_SAVE: u8 = 15;
const OP_LOAD: u8 = 16;
const OP_STATS: u8 = 17;
const OP_SHUTDOWN: u8 = 18;
const OP_METRICS: u8 = 19;

/// How a query command addresses its filter: a stored sharded set id, or
/// an ad-hoc Bloom filter shipped in the request body (encoded with the
/// `bst_bloom::codec` binary format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// A stored set, by raw sharded [`bst_core::store::FilterId`].
    Stored(u64),
    /// A detached query filter, as `bst_bloom::codec::encode` bytes.
    Adhoc(Vec<u8>),
}

impl Target {
    /// An ad-hoc target from a live filter (encodes it).
    pub fn adhoc(filter: &bst_bloom::filter::BloomFilter) -> Self {
        Target::Adhoc(bst_bloom::codec::encode(filter).to_vec())
    }
}

/// A client request, one per frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Register a stored set over `keys`; answers [`Response::Created`].
    Create {
        /// The set's members (validated against the namespace).
        keys: Vec<u64>,
    },
    /// Insert `keys` into stored set `id`.
    InsertKeys {
        /// Raw sharded filter id.
        id: u64,
        /// Keys to insert.
        keys: Vec<u64>,
    },
    /// Remove `keys` from stored set `id` (counting-filter semantics).
    RemoveKeys {
        /// Raw sharded filter id.
        id: u64,
        /// Keys to remove.
        keys: Vec<u64>,
    },
    /// Unregister stored set `id`.
    DropSet {
        /// Raw sharded filter id.
        id: u64,
    },
    /// Mark `key` occupied (§5.2 churn); answers [`Response::Generation`].
    OccInsert {
        /// Namespace id to occupy.
        key: u64,
    },
    /// Remove `key` from the occupied set; answers [`Response::Generation`].
    OccRemove {
        /// Namespace id to vacate.
        key: u64,
    },
    /// Project stored set `id` to a plain filter; answers [`Response::Filter`].
    Get {
        /// Raw sharded filter id.
        id: u64,
    },
    /// List live stored ids; answers [`Response::Sets`].
    ListSets,
    /// Draw one sample; the server seeds a fresh `StdRng` from `seed`,
    /// so the same request against the same state draws the same key.
    Sample {
        /// What to sample from.
        target: Target,
        /// RNG seed for this draw.
        seed: u64,
    },
    /// Draw up to `r` samples (§5.3 multi-sampling); answers [`Response::Keys`].
    SampleMany {
        /// What to sample from.
        target: Target,
        /// Requested sample count.
        r: u32,
        /// RNG seed for the draws.
        seed: u64,
    },
    /// Reconstruct the whole positive set; answers [`Response::Keys`].
    Reconstruct {
        /// What to reconstruct.
        target: Target,
    },
    /// Reconstruct restricted to `[start, end)`; answers [`Response::Keys`].
    ReconstructRange {
        /// What to reconstruct.
        target: Target,
        /// Window start (inclusive).
        start: u64,
        /// Window end (exclusive).
        end: u64,
    },
    /// One sample per target over the engine's two-phase batch scatter;
    /// answers [`Response::Batch`] with per-slot results.
    Batch {
        /// One slot per target, stored and ad-hoc freely mixed.
        targets: Vec<Target>,
        /// RNG seed for the whole batch.
        seed: u64,
    },
    /// Snapshot the whole engine; answers [`Response::Snapshot`].
    Save,
    /// Replace the engine with a snapshot previously produced by `Save`.
    Load {
        /// `ShardedBstSystem::to_bytes` payload.
        bytes: Vec<u8>,
    },
    /// Server statistics; answers [`Response::Stats`].
    Stats,
    /// Stop the server after replying (the accept loop drains and every
    /// worker exits); the in-process `ServerHandle::join` then returns.
    Shutdown,
    /// Scrape the unified metrics registry as a Prometheus-style text
    /// page; answers [`Response::Metrics`].
    Metrics,
}

/// A successful reply, one per frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Generic success for mutations with nothing to return.
    Ok,
    /// Reply to [`Request::Ping`].
    Pong,
    /// The freshly allocated stored set id.
    Created {
        /// Raw sharded filter id.
        id: u64,
    },
    /// The owning shard's tree generation after an occupancy mutation.
    Generation {
        /// Post-mutation tree generation of the owning shard.
        generation: u64,
    },
    /// A projected filter, as `bst_bloom::codec::encode` bytes.
    Filter {
        /// Encoded filter.
        bytes: Vec<u8>,
    },
    /// Live stored ids, ascending.
    Sets {
        /// Raw sharded filter ids.
        ids: Vec<u64>,
    },
    /// One sampled key.
    Sampled {
        /// The drawn namespace id.
        key: u64,
    },
    /// A key list (samples or a reconstruction).
    Keys {
        /// The keys, in the operation's natural order.
        keys: Vec<u64>,
    },
    /// Per-slot batch outcomes, aligned with the request's targets.
    Batch {
        /// One result per slot.
        results: Vec<Result<u64, WireError>>,
    },
    /// A whole-engine snapshot.
    Snapshot {
        /// `ShardedBstSystem::to_bytes` payload (byte-deterministic).
        bytes: Vec<u8>,
    },
    /// Server statistics.
    Stats(StatsReply),
    /// The metrics exposition page.
    Metrics {
        /// Prometheus text format, one series per line plus
        /// `# HELP` / `# TYPE` comments.
        text: String,
    },
}

/// Latency percentiles for one operation class, from the server's
/// `bst_stats::histogram::Histogram` registry (microseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpLatencyRow {
    /// Operation-class tag (see `crate::stats::OpClass`).
    pub op: u8,
    /// Requests recorded (in-range observations plus outliers).
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
}

/// The body of [`Response::Stats`]: engine shape, serving counters, the
/// persistent weight cache's effectiveness, and per-op latency
/// percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReply {
    /// Namespace size `M`.
    pub namespace: u64,
    /// Shard count `S`.
    pub shards: u32,
    /// Registered stored sets.
    pub sets: u64,
    /// Occupied namespace ids.
    pub occupied: u64,
    /// Engine epoch: bumps on every wire `LOAD` (sessions drop their
    /// cached handles when it moves).
    pub epoch: u64,
    /// Connections currently being served.
    pub active_connections: u32,
    /// Connections accepted and served since startup.
    pub sessions_served: u64,
    /// Connections refused by the max-connections backpressure policy.
    pub sessions_refused: u64,
    /// Frames processed since startup.
    pub frames_served: u64,
    /// Weight-cache hits (see `bst_shard::WeightCacheStats`).
    pub weight_cache_hits: u64,
    /// Weight-cache misses.
    pub weight_cache_misses: u64,
    /// Weight-cache journal repairs.
    pub weight_cache_repairs: u64,
    /// Cumulative Bloom probe intersections drained from every served
    /// query (paper §7.1 units; survives engine swaps).
    pub engine_intersections: u64,
    /// Cumulative membership tests.
    pub engine_memberships: u64,
    /// Cumulative tree nodes visited.
    pub engine_nodes_visited: u64,
    /// Cumulative sampling descent backtracks.
    pub engine_backtracks: u64,
    /// Per-op latency percentiles, ascending by op tag; only classes
    /// with at least one recorded request appear.
    pub ops: Vec<OpLatencyRow>,
    /// All classes merged into one histogram (`Histogram::merge`);
    /// `None` until any request has been recorded.
    pub total: Option<OpLatencyRow>,
}

/// Every way a request can fail, shipped back as a typed error frame.
///
/// Engine failures mirror [`BstError`] variant by variant (with owned
/// strings where the engine uses `&'static str`, so the messages survive
/// the wire); the protocol-level variants cover framing and decoding
/// problems plus the server's backpressure verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// [`BstError::EmptyFilter`].
    EmptyFilter,
    /// [`BstError::IncompatibleFilter`].
    IncompatibleFilter,
    /// [`BstError::EmptyTree`].
    EmptyTree,
    /// [`BstError::NoLiveLeaf`].
    NoLiveLeaf,
    /// [`BstError::BudgetExhausted`].
    BudgetExhausted {
        /// Proposal walks attempted before giving up.
        attempts: u64,
    },
    /// [`BstError::InvalidConfig`].
    InvalidConfig {
        /// The engine's description of the rejected value.
        message: String,
    },
    /// [`BstError::UnknownFilterId`].
    UnknownFilterId {
        /// The raw id that names no stored set.
        raw: u64,
    },
    /// [`BstError::ImmutableBackend`].
    ImmutableBackend,
    /// [`BstError::KeyOutsideNamespace`].
    KeyOutsideNamespace {
        /// The offending key.
        key: u64,
    },
    /// [`BstError::Persist`] — a snapshot decode failure (wire `LOAD`).
    Persist {
        /// The persistence layer's description of the problem.
        message: String,
    },
    /// The request header carried an unsupported protocol version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The request header carried an opcode this server does not know.
    UnknownOpcode {
        /// The opcode byte received.
        got: u8,
    },
    /// The request body could not be decoded (truncated, trailing bytes,
    /// bad tags, or an undecodable embedded filter).
    Malformed {
        /// What failed to decode.
        context: String,
    },
    /// The declared frame length exceeds the server's limit. The server
    /// drains and discards the frame, so the connection stays usable.
    FrameTooLarge {
        /// Declared payload length.
        declared: u64,
        /// The server's maximum payload length.
        max: u64,
    },
    /// The max-connections backpressure policy refused this connection;
    /// sent as the only frame before the server closes the socket.
    Busy {
        /// Connections being served when this one arrived.
        active: u32,
        /// The configured ceiling.
        max: u32,
    },
    /// The server is shutting down and no longer serves requests.
    ShuttingDown,
}

impl From<BstError> for WireError {
    fn from(e: BstError) -> Self {
        match e {
            BstError::EmptyFilter => WireError::EmptyFilter,
            BstError::IncompatibleFilter => WireError::IncompatibleFilter,
            BstError::EmptyTree => WireError::EmptyTree,
            BstError::NoLiveLeaf => WireError::NoLiveLeaf,
            BstError::BudgetExhausted { attempts } => WireError::BudgetExhausted {
                attempts: attempts as u64,
            },
            BstError::InvalidConfig(message) => WireError::InvalidConfig {
                message: message.to_string(),
            },
            BstError::UnknownFilterId(id) => WireError::UnknownFilterId { raw: id.raw() },
            BstError::ImmutableBackend => WireError::ImmutableBackend,
            BstError::KeyOutsideNamespace(key) => WireError::KeyOutsideNamespace { key },
            BstError::Persist(p) => WireError::Persist {
                message: p.to_string(),
            },
            // BstError is non_exhaustive: future variants degrade to a
            // typed Malformed-like description rather than a panic.
            other => WireError::Malformed {
                context: format!("unmapped engine error: {other}"),
            },
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::EmptyFilter => write!(f, "query filter is empty"),
            WireError::IncompatibleFilter => {
                write!(f, "query filter parameters do not match the tree")
            }
            WireError::EmptyTree => write!(f, "tree has no root"),
            WireError::NoLiveLeaf => write!(f, "no live leaf: every descent path died"),
            WireError::BudgetExhausted { attempts } => {
                write!(f, "rejection budget exhausted after {attempts} proposals")
            }
            WireError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            WireError::UnknownFilterId { raw } => {
                write!(f, "unknown filter id {raw}: never created here, or dropped")
            }
            WireError::ImmutableBackend => write!(f, "dense backend occupancy is immutable"),
            WireError::KeyOutsideNamespace { key } => {
                write!(f, "key {key} lies outside the server's namespace")
            }
            WireError::Persist { message } => write!(f, "snapshot rejected: {message}"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::UnknownOpcode { got } => write!(f, "unknown opcode {got}"),
            WireError::Malformed { context } => write!(f, "malformed request: {context}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            WireError::Busy { active, max } => {
                write!(f, "server busy: {active} active connections (max {max})")
            }
            WireError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(context: &str) -> WireError {
    WireError::Malformed {
        context: context.to_string(),
    }
}

// ---------------------------------------------------------------------
// Primitive codecs.
// ---------------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(input: &mut &[u8]) -> Result<String, WireError> {
    if input.remaining() < 4 {
        return Err(malformed("truncated string length"));
    }
    let len = input.get_u32_le() as usize;
    if input.remaining() < len {
        return Err(malformed("truncated string body"));
    }
    let s = std::str::from_utf8(&input[..len])
        .map_err(|_| malformed("string is not utf-8"))?
        .to_string();
    input.advance(len);
    Ok(s)
}

fn put_keys(buf: &mut BytesMut, keys: &[u64]) {
    buf.put_u32_le(keys.len() as u32);
    for &k in keys {
        buf.put_u64_le(k);
    }
}

fn get_keys(input: &mut &[u8]) -> Result<Vec<u64>, WireError> {
    if input.remaining() < 4 {
        return Err(malformed("truncated key count"));
    }
    let count = input.get_u32_le() as usize;
    if input.remaining() < count * 8 {
        return Err(malformed("truncated key list"));
    }
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(input.get_u64_le());
    }
    Ok(keys)
}

fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    buf.put_u64_le(bytes.len() as u64);
    buf.put_slice(bytes);
}

fn get_bytes(input: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    if input.remaining() < 8 {
        return Err(malformed("truncated byte-string length"));
    }
    let len = input.get_u64_le() as usize;
    if input.remaining() < len {
        return Err(malformed("truncated byte-string body"));
    }
    let out = input[..len].to_vec();
    input.advance(len);
    Ok(out)
}

fn get_u64(input: &mut &[u8], what: &str) -> Result<u64, WireError> {
    if input.remaining() < 8 {
        return Err(malformed(what));
    }
    Ok(input.get_u64_le())
}

fn put_target(buf: &mut BytesMut, target: &Target) {
    match target {
        Target::Stored(id) => {
            buf.put_u8(0);
            buf.put_u64_le(*id);
        }
        Target::Adhoc(bytes) => {
            buf.put_u8(1);
            put_bytes(buf, bytes);
        }
    }
}

fn get_target(input: &mut &[u8]) -> Result<Target, WireError> {
    if input.remaining() < 1 {
        return Err(malformed("truncated target tag"));
    }
    match input.get_u8() {
        0 => Ok(Target::Stored(get_u64(input, "truncated target id")?)),
        1 => Ok(Target::Adhoc(get_bytes(input)?)),
        _ => Err(malformed("unknown target tag")),
    }
}

// ---------------------------------------------------------------------
// WireError codec.
// ---------------------------------------------------------------------

/// Appends the error's wire encoding (tag + variant payload) to `buf`.
pub fn put_wire_error(buf: &mut BytesMut, e: &WireError) {
    match e {
        WireError::EmptyFilter => buf.put_u8(0),
        WireError::IncompatibleFilter => buf.put_u8(1),
        WireError::EmptyTree => buf.put_u8(2),
        WireError::NoLiveLeaf => buf.put_u8(3),
        WireError::BudgetExhausted { attempts } => {
            buf.put_u8(4);
            buf.put_u64_le(*attempts);
        }
        WireError::InvalidConfig { message } => {
            buf.put_u8(5);
            put_string(buf, message);
        }
        WireError::UnknownFilterId { raw } => {
            buf.put_u8(6);
            buf.put_u64_le(*raw);
        }
        WireError::ImmutableBackend => buf.put_u8(7),
        WireError::KeyOutsideNamespace { key } => {
            buf.put_u8(8);
            buf.put_u64_le(*key);
        }
        WireError::Persist { message } => {
            buf.put_u8(9);
            put_string(buf, message);
        }
        WireError::BadVersion { got } => {
            buf.put_u8(10);
            buf.put_u8(*got);
        }
        WireError::UnknownOpcode { got } => {
            buf.put_u8(11);
            buf.put_u8(*got);
        }
        WireError::Malformed { context } => {
            buf.put_u8(12);
            put_string(buf, context);
        }
        WireError::FrameTooLarge { declared, max } => {
            buf.put_u8(13);
            buf.put_u64_le(*declared);
            buf.put_u64_le(*max);
        }
        WireError::Busy { active, max } => {
            buf.put_u8(14);
            buf.put_u32_le(*active);
            buf.put_u32_le(*max);
        }
        WireError::ShuttingDown => buf.put_u8(15),
    }
}

/// Decodes an error encoded with [`put_wire_error`], advancing `input`.
pub fn get_wire_error(input: &mut &[u8]) -> Result<WireError, WireError> {
    if input.remaining() < 1 {
        return Err(malformed("truncated error tag"));
    }
    Ok(match input.get_u8() {
        0 => WireError::EmptyFilter,
        1 => WireError::IncompatibleFilter,
        2 => WireError::EmptyTree,
        3 => WireError::NoLiveLeaf,
        4 => WireError::BudgetExhausted {
            attempts: get_u64(input, "truncated attempts")?,
        },
        5 => WireError::InvalidConfig {
            message: get_string(input)?,
        },
        6 => WireError::UnknownFilterId {
            raw: get_u64(input, "truncated filter id")?,
        },
        7 => WireError::ImmutableBackend,
        8 => WireError::KeyOutsideNamespace {
            key: get_u64(input, "truncated key")?,
        },
        9 => WireError::Persist {
            message: get_string(input)?,
        },
        10 => {
            if input.remaining() < 1 {
                return Err(malformed("truncated version byte"));
            }
            WireError::BadVersion {
                got: input.get_u8(),
            }
        }
        11 => {
            if input.remaining() < 1 {
                return Err(malformed("truncated opcode byte"));
            }
            WireError::UnknownOpcode {
                got: input.get_u8(),
            }
        }
        12 => WireError::Malformed {
            context: get_string(input)?,
        },
        13 => WireError::FrameTooLarge {
            declared: get_u64(input, "truncated declared length")?,
            max: get_u64(input, "truncated max length")?,
        },
        14 => {
            if input.remaining() < 8 {
                return Err(malformed("truncated busy payload"));
            }
            WireError::Busy {
                active: input.get_u32_le(),
                max: input.get_u32_le(),
            }
        }
        15 => WireError::ShuttingDown,
        _ => return Err(malformed("unknown error tag")),
    })
}

// ---------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------

/// Encodes a request into a complete frame payload (header + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(PROTO_VERSION);
    match req {
        Request::Ping => buf.put_u8(OP_PING),
        Request::Create { keys } => {
            buf.put_u8(OP_CREATE);
            put_keys(&mut buf, keys);
        }
        Request::InsertKeys { id, keys } => {
            buf.put_u8(OP_INSERT_KEYS);
            buf.put_u64_le(*id);
            put_keys(&mut buf, keys);
        }
        Request::RemoveKeys { id, keys } => {
            buf.put_u8(OP_REMOVE_KEYS);
            buf.put_u64_le(*id);
            put_keys(&mut buf, keys);
        }
        Request::DropSet { id } => {
            buf.put_u8(OP_DROP_SET);
            buf.put_u64_le(*id);
        }
        Request::OccInsert { key } => {
            buf.put_u8(OP_OCC_INSERT);
            buf.put_u64_le(*key);
        }
        Request::OccRemove { key } => {
            buf.put_u8(OP_OCC_REMOVE);
            buf.put_u64_le(*key);
        }
        Request::Get { id } => {
            buf.put_u8(OP_GET);
            buf.put_u64_le(*id);
        }
        Request::ListSets => buf.put_u8(OP_LIST_SETS),
        Request::Sample { target, seed } => {
            buf.put_u8(OP_SAMPLE);
            put_target(&mut buf, target);
            buf.put_u64_le(*seed);
        }
        Request::SampleMany { target, r, seed } => {
            buf.put_u8(OP_SAMPLE_MANY);
            put_target(&mut buf, target);
            buf.put_u32_le(*r);
            buf.put_u64_le(*seed);
        }
        Request::Reconstruct { target } => {
            buf.put_u8(OP_RECONSTRUCT);
            put_target(&mut buf, target);
        }
        Request::ReconstructRange { target, start, end } => {
            buf.put_u8(OP_RECONSTRUCT_RANGE);
            put_target(&mut buf, target);
            buf.put_u64_le(*start);
            buf.put_u64_le(*end);
        }
        Request::Batch { targets, seed } => {
            buf.put_u8(OP_BATCH);
            buf.put_u32_le(targets.len() as u32);
            for t in targets {
                put_target(&mut buf, t);
            }
            buf.put_u64_le(*seed);
        }
        Request::Save => buf.put_u8(OP_SAVE),
        Request::Load { bytes } => {
            buf.put_u8(OP_LOAD);
            put_bytes(&mut buf, bytes);
        }
        Request::Stats => buf.put_u8(OP_STATS),
        Request::Shutdown => buf.put_u8(OP_SHUTDOWN),
        Request::Metrics => buf.put_u8(OP_METRICS),
    }
    buf.to_vec()
}

/// Decodes a request frame payload (header + body), rejecting unknown
/// versions/opcodes, truncated bodies, and trailing bytes with a typed
/// [`WireError`] the server ships straight back.
pub fn decode_request(mut input: &[u8]) -> Result<Request, WireError> {
    if input.remaining() < 2 {
        return Err(malformed("frame shorter than the request header"));
    }
    let version = input.get_u8();
    if version != PROTO_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let opcode = input.get_u8();
    let req = match opcode {
        OP_PING => Request::Ping,
        OP_CREATE => Request::Create {
            keys: get_keys(&mut input)?,
        },
        OP_INSERT_KEYS => Request::InsertKeys {
            id: get_u64(&mut input, "truncated set id")?,
            keys: get_keys(&mut input)?,
        },
        OP_REMOVE_KEYS => Request::RemoveKeys {
            id: get_u64(&mut input, "truncated set id")?,
            keys: get_keys(&mut input)?,
        },
        OP_DROP_SET => Request::DropSet {
            id: get_u64(&mut input, "truncated set id")?,
        },
        OP_OCC_INSERT => Request::OccInsert {
            key: get_u64(&mut input, "truncated key")?,
        },
        OP_OCC_REMOVE => Request::OccRemove {
            key: get_u64(&mut input, "truncated key")?,
        },
        OP_GET => Request::Get {
            id: get_u64(&mut input, "truncated set id")?,
        },
        OP_LIST_SETS => Request::ListSets,
        OP_SAMPLE => Request::Sample {
            target: get_target(&mut input)?,
            seed: get_u64(&mut input, "truncated seed")?,
        },
        OP_SAMPLE_MANY => {
            let target = get_target(&mut input)?;
            if input.remaining() < 4 {
                return Err(malformed("truncated sample count"));
            }
            let r = input.get_u32_le();
            Request::SampleMany {
                target,
                r,
                seed: get_u64(&mut input, "truncated seed")?,
            }
        }
        OP_RECONSTRUCT => Request::Reconstruct {
            target: get_target(&mut input)?,
        },
        OP_RECONSTRUCT_RANGE => Request::ReconstructRange {
            target: get_target(&mut input)?,
            start: get_u64(&mut input, "truncated range start")?,
            end: get_u64(&mut input, "truncated range end")?,
        },
        OP_BATCH => {
            if input.remaining() < 4 {
                return Err(malformed("truncated batch slot count"));
            }
            let count = input.get_u32_le() as usize;
            // A slot is at least 9 bytes; reject absurd counts before
            // allocating (persistence-style bounded with_capacity).
            let mut targets = Vec::with_capacity(count.min(input.remaining() / 9 + 1));
            for _ in 0..count {
                targets.push(get_target(&mut input)?);
            }
            Request::Batch {
                targets,
                seed: get_u64(&mut input, "truncated seed")?,
            }
        }
        OP_SAVE => Request::Save,
        OP_LOAD => Request::Load {
            bytes: get_bytes(&mut input)?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_METRICS => Request::Metrics,
        got => return Err(WireError::UnknownOpcode { got }),
    };
    if !input.is_empty() {
        return Err(malformed("trailing bytes after request body"));
    }
    Ok(req)
}

// ---------------------------------------------------------------------
// Response codec.
// ---------------------------------------------------------------------

fn put_latency_row(buf: &mut BytesMut, row: &OpLatencyRow) {
    buf.put_u8(row.op);
    buf.put_u64_le(row.count);
    buf.put_f64_le(row.p50_us);
    buf.put_f64_le(row.p95_us);
    buf.put_f64_le(row.p99_us);
}

fn get_latency_row(input: &mut &[u8]) -> Result<OpLatencyRow, WireError> {
    if input.remaining() < 1 + 8 + 3 * 8 {
        return Err(malformed("truncated latency row"));
    }
    Ok(OpLatencyRow {
        op: input.get_u8(),
        count: input.get_u64_le(),
        p50_us: input.get_f64_le(),
        p95_us: input.get_f64_le(),
        p99_us: input.get_f64_le(),
    })
}

/// Encodes a success response into a complete frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(PROTO_VERSION);
    buf.put_u8(STATUS_OK);
    match resp {
        Response::Ok => buf.put_u8(0),
        Response::Pong => buf.put_u8(1),
        Response::Created { id } => {
            buf.put_u8(2);
            buf.put_u64_le(*id);
        }
        Response::Generation { generation } => {
            buf.put_u8(3);
            buf.put_u64_le(*generation);
        }
        Response::Filter { bytes } => {
            buf.put_u8(4);
            put_bytes(&mut buf, bytes);
        }
        Response::Sets { ids } => {
            buf.put_u8(5);
            put_keys(&mut buf, ids);
        }
        Response::Sampled { key } => {
            buf.put_u8(6);
            buf.put_u64_le(*key);
        }
        Response::Keys { keys } => {
            buf.put_u8(7);
            put_keys(&mut buf, keys);
        }
        Response::Batch { results } => {
            buf.put_u8(8);
            buf.put_u32_le(results.len() as u32);
            for r in results {
                match r {
                    Ok(key) => {
                        buf.put_u8(0);
                        buf.put_u64_le(*key);
                    }
                    Err(e) => {
                        buf.put_u8(1);
                        put_wire_error(&mut buf, e);
                    }
                }
            }
        }
        Response::Snapshot { bytes } => {
            buf.put_u8(9);
            put_bytes(&mut buf, bytes);
        }
        Response::Stats(stats) => {
            buf.put_u8(10);
            buf.put_u64_le(stats.namespace);
            buf.put_u32_le(stats.shards);
            buf.put_u64_le(stats.sets);
            buf.put_u64_le(stats.occupied);
            buf.put_u64_le(stats.epoch);
            buf.put_u32_le(stats.active_connections);
            buf.put_u64_le(stats.sessions_served);
            buf.put_u64_le(stats.sessions_refused);
            buf.put_u64_le(stats.frames_served);
            buf.put_u64_le(stats.weight_cache_hits);
            buf.put_u64_le(stats.weight_cache_misses);
            buf.put_u64_le(stats.weight_cache_repairs);
            buf.put_u64_le(stats.engine_intersections);
            buf.put_u64_le(stats.engine_memberships);
            buf.put_u64_le(stats.engine_nodes_visited);
            buf.put_u64_le(stats.engine_backtracks);
            buf.put_u32_le(stats.ops.len() as u32);
            for row in &stats.ops {
                put_latency_row(&mut buf, row);
            }
            match &stats.total {
                Some(row) => {
                    buf.put_u8(1);
                    put_latency_row(&mut buf, row);
                }
                None => buf.put_u8(0),
            }
        }
        Response::Metrics { text } => {
            buf.put_u8(11);
            put_string(&mut buf, text);
        }
    }
    buf.to_vec()
}

/// Encodes an error response into a complete frame payload.
pub fn encode_error(e: &WireError) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(PROTO_VERSION);
    buf.put_u8(STATUS_ERR);
    put_wire_error(&mut buf, e);
    buf.to_vec()
}

/// Decodes a response frame payload: `Ok(Ok(_))` is a success body,
/// `Ok(Err(_))` a typed error frame the server sent deliberately, and
/// the outer `Err(_)` means the payload itself could not be decoded.
#[allow(clippy::type_complexity)]
pub fn decode_response(mut input: &[u8]) -> Result<Result<Response, WireError>, WireError> {
    if input.remaining() < 2 {
        return Err(malformed("frame shorter than the response header"));
    }
    let version = input.get_u8();
    if version != PROTO_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let status = input.get_u8();
    if status == STATUS_ERR {
        let e = get_wire_error(&mut input)?;
        if !input.is_empty() {
            return Err(malformed("trailing bytes after error body"));
        }
        return Ok(Err(e));
    }
    if status != STATUS_OK {
        return Err(malformed("unknown response status"));
    }
    if input.remaining() < 1 {
        return Err(malformed("truncated response tag"));
    }
    let resp = match input.get_u8() {
        0 => Response::Ok,
        1 => Response::Pong,
        2 => Response::Created {
            id: get_u64(&mut input, "truncated id")?,
        },
        3 => Response::Generation {
            generation: get_u64(&mut input, "truncated generation")?,
        },
        4 => Response::Filter {
            bytes: get_bytes(&mut input)?,
        },
        5 => Response::Sets {
            ids: get_keys(&mut input)?,
        },
        6 => Response::Sampled {
            key: get_u64(&mut input, "truncated key")?,
        },
        7 => Response::Keys {
            keys: get_keys(&mut input)?,
        },
        8 => {
            if input.remaining() < 4 {
                return Err(malformed("truncated batch result count"));
            }
            let count = input.get_u32_le() as usize;
            let mut results = Vec::with_capacity(count.min(input.remaining() / 2 + 1));
            for _ in 0..count {
                if input.remaining() < 1 {
                    return Err(malformed("truncated batch result tag"));
                }
                results.push(match input.get_u8() {
                    0 => Ok(get_u64(&mut input, "truncated batch key")?),
                    1 => Err(get_wire_error(&mut input)?),
                    _ => return Err(malformed("unknown batch result tag")),
                });
            }
            Response::Batch { results }
        }
        9 => Response::Snapshot {
            bytes: get_bytes(&mut input)?,
        },
        10 => {
            if input.remaining() < 8 + 4 + 8 * 3 + 4 + 8 * 5 + 8 * 4 + 4 {
                return Err(malformed("truncated stats body"));
            }
            let namespace = input.get_u64_le();
            let shards = input.get_u32_le();
            let sets = input.get_u64_le();
            let occupied = input.get_u64_le();
            let epoch = input.get_u64_le();
            let active_connections = input.get_u32_le();
            let sessions_served = input.get_u64_le();
            let sessions_refused = input.get_u64_le();
            let frames_served = input.get_u64_le();
            let weight_cache_hits = input.get_u64_le();
            let weight_cache_misses = input.get_u64_le();
            let weight_cache_repairs = input.get_u64_le();
            let engine_intersections = input.get_u64_le();
            let engine_memberships = input.get_u64_le();
            let engine_nodes_visited = input.get_u64_le();
            let engine_backtracks = input.get_u64_le();
            let rows = input.get_u32_le() as usize;
            let mut ops = Vec::with_capacity(rows.min(input.remaining() / 33 + 1));
            for _ in 0..rows {
                ops.push(get_latency_row(&mut input)?);
            }
            if input.remaining() < 1 {
                return Err(malformed("truncated stats total flag"));
            }
            let total = match input.get_u8() {
                0 => None,
                1 => Some(get_latency_row(&mut input)?),
                _ => return Err(malformed("unknown stats total flag")),
            };
            Response::Stats(StatsReply {
                namespace,
                shards,
                sets,
                occupied,
                epoch,
                active_connections,
                sessions_served,
                sessions_refused,
                frames_served,
                weight_cache_hits,
                weight_cache_misses,
                weight_cache_repairs,
                engine_intersections,
                engine_memberships,
                engine_nodes_visited,
                engine_backtracks,
                ops,
                total,
            })
        }
        11 => Response::Metrics {
            text: get_string(&mut input)?,
        },
        _ => return Err(malformed("unknown response tag")),
    };
    if !input.is_empty() {
        return Err(malformed("trailing bytes after response body"));
    }
    Ok(Ok(resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        // Deterministic: same value, same bytes.
        assert_eq!(encode_request(&req), bytes);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap().unwrap(), resp, "{resp:?}");
        assert_eq!(encode_response(&resp), bytes);
    }

    #[test]
    fn request_roundtrips_every_variant() {
        let adhoc = Target::Adhoc(vec![1, 2, 3, 4]);
        for req in [
            Request::Ping,
            Request::Create {
                keys: vec![1, 2, 3],
            },
            Request::Create { keys: vec![] },
            Request::InsertKeys {
                id: 7,
                keys: vec![9, 10],
            },
            Request::RemoveKeys {
                id: 7,
                keys: vec![11],
            },
            Request::DropSet { id: 3 },
            Request::OccInsert { key: 42 },
            Request::OccRemove { key: 43 },
            Request::Get { id: 0 },
            Request::ListSets,
            Request::Sample {
                target: Target::Stored(5),
                seed: 99,
            },
            Request::Sample {
                target: adhoc.clone(),
                seed: 0,
            },
            Request::SampleMany {
                target: Target::Stored(1),
                r: 64,
                seed: 3,
            },
            Request::Reconstruct {
                target: adhoc.clone(),
            },
            Request::ReconstructRange {
                target: Target::Stored(2),
                start: 10,
                end: 20,
            },
            Request::Batch {
                targets: vec![Target::Stored(1), adhoc, Target::Stored(2)],
                seed: 17,
            },
            Request::Save,
            Request::Load {
                bytes: vec![0xAB; 32],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
        ] {
            roundtrip_request(req);
        }
    }

    #[test]
    fn response_roundtrips_every_variant() {
        for resp in [
            Response::Ok,
            Response::Pong,
            Response::Created { id: 12 },
            Response::Generation { generation: 4 },
            Response::Filter { bytes: vec![9; 16] },
            Response::Sets { ids: vec![0, 1, 5] },
            Response::Sampled { key: 31 },
            Response::Keys {
                keys: vec![1, 2, 3],
            },
            Response::Batch {
                results: vec![
                    Ok(7),
                    Err(WireError::NoLiveLeaf),
                    Ok(9),
                    Err(WireError::UnknownFilterId { raw: 3 }),
                ],
            },
            Response::Snapshot {
                bytes: vec![0xCD; 64],
            },
            Response::Stats(StatsReply {
                namespace: 1 << 20,
                shards: 8,
                sets: 3,
                occupied: 12_345,
                epoch: 2,
                active_connections: 4,
                sessions_served: 100,
                sessions_refused: 2,
                frames_served: 5_000,
                weight_cache_hits: 10,
                weight_cache_misses: 20,
                weight_cache_repairs: 1,
                engine_intersections: 4_096,
                engine_memberships: 900,
                engine_nodes_visited: 5_000,
                engine_backtracks: 7,
                ops: vec![
                    OpLatencyRow {
                        op: 3,
                        count: 1000,
                        p50_us: 12.5,
                        p95_us: 80.0,
                        p99_us: 140.25,
                    },
                    OpLatencyRow {
                        op: 5,
                        count: 3,
                        p50_us: 900.0,
                        p95_us: 1200.0,
                        p99_us: 1200.0,
                    },
                ],
                total: Some(OpLatencyRow {
                    op: 255,
                    count: 1003,
                    p50_us: 13.0,
                    p95_us: 90.0,
                    p99_us: 1100.0,
                }),
            }),
            Response::Stats(StatsReply {
                namespace: 16,
                shards: 1,
                sets: 0,
                occupied: 0,
                epoch: 0,
                active_connections: 1,
                sessions_served: 1,
                sessions_refused: 0,
                frames_served: 1,
                weight_cache_hits: 0,
                weight_cache_misses: 0,
                weight_cache_repairs: 0,
                engine_intersections: 0,
                engine_memberships: 0,
                engine_nodes_visited: 0,
                engine_backtracks: 0,
                ops: vec![],
                total: None,
            }),
            Response::Metrics {
                text: "# TYPE bst_x counter\nbst_x 3\n".into(),
            },
        ] {
            roundtrip_response(resp);
        }
    }

    #[test]
    fn wire_error_roundtrips_every_variant() {
        for e in [
            WireError::EmptyFilter,
            WireError::IncompatibleFilter,
            WireError::EmptyTree,
            WireError::NoLiveLeaf,
            WireError::BudgetExhausted { attempts: 96 },
            WireError::InvalidConfig {
                message: "bad gamma".into(),
            },
            WireError::UnknownFilterId { raw: 77 },
            WireError::ImmutableBackend,
            WireError::KeyOutsideNamespace { key: 1 << 40 },
            WireError::Persist {
                message: "input truncated".into(),
            },
            WireError::BadVersion { got: 9 },
            WireError::UnknownOpcode { got: 200 },
            WireError::Malformed {
                context: "trailing bytes".into(),
            },
            WireError::FrameTooLarge {
                declared: 1 << 30,
                max: 1 << 23,
            },
            WireError::Busy {
                active: 64,
                max: 64,
            },
            WireError::ShuttingDown,
        ] {
            let bytes = encode_error(&e);
            assert_eq!(decode_response(&bytes).unwrap().unwrap_err(), e, "{e:?}");
        }
    }

    #[test]
    fn bst_errors_map_variant_by_variant() {
        use bst_core::persistence::PersistError;
        use bst_core::store::FilterId;
        assert_eq!(
            WireError::from(BstError::EmptyFilter),
            WireError::EmptyFilter
        );
        assert_eq!(
            WireError::from(BstError::BudgetExhausted { attempts: 5 }),
            WireError::BudgetExhausted { attempts: 5 }
        );
        assert_eq!(
            WireError::from(BstError::UnknownFilterId(FilterId::from_raw(9))),
            WireError::UnknownFilterId { raw: 9 }
        );
        assert_eq!(
            WireError::from(BstError::KeyOutsideNamespace(123)),
            WireError::KeyOutsideNamespace { key: 123 }
        );
        let persist = WireError::from(BstError::Persist(PersistError::BadMagic));
        assert!(matches!(persist, WireError::Persist { ref message } if message.contains("magic")));
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        // Wrong version.
        let mut bad = encode_request(&Request::Ping);
        bad[0] = 99;
        assert_eq!(
            decode_request(&bad).unwrap_err(),
            WireError::BadVersion { got: 99 }
        );
        // Unknown opcode.
        let mut bad = encode_request(&Request::Ping);
        bad[1] = 250;
        assert_eq!(
            decode_request(&bad).unwrap_err(),
            WireError::UnknownOpcode { got: 250 }
        );
        // Truncated body.
        let good = encode_request(&Request::Create {
            keys: vec![1, 2, 3],
        });
        for cut in 2..good.len() {
            assert!(
                matches!(
                    decode_request(&good[..cut]).unwrap_err(),
                    WireError::Malformed { .. }
                ),
                "cut at {cut}"
            );
        }
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            decode_request(&long).unwrap_err(),
            WireError::Malformed { .. }
        ));
        // Empty and one-byte payloads.
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[PROTO_VERSION]).is_err());
    }

    #[test]
    fn response_decode_rejects_garbage() {
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[PROTO_VERSION, 7]).is_err());
        let good = encode_response(&Response::Keys {
            keys: vec![5, 6, 7],
        });
        for cut in 2..good.len() {
            assert!(decode_response(&good[..cut]).is_err(), "cut at {cut}");
        }
    }
}
