//! Per-connection session state: caches of open [`ShardQuery`] handles.
//!
//! The engine's warm path — memoized live-leaf weights with
//! generation-stamped staleness — lives in the `ShardQuery` handle. A
//! stateless request loop would open a cold handle per request and pay
//! the full scatter-weigh every time; the session instead keeps handles
//! open across frames, so a client hammering the same stored set or the
//! same ad-hoc filter gets warm-path sampling across the wire.
//!
//! Two caches, both bounded and FIFO-evicted:
//!
//! * **stored**: keyed by raw filter id. Dropping the set server-side
//!   surfaces as `UnknownFilterId` on next use, which evicts the entry.
//! * **ad-hoc**: keyed by `bst_shard::filter_content_hash` over the
//!   decoded filter, with the exact encoded bytes kept alongside as a
//!   collision guard (the hash is 64-bit FNV, not cryptographic; the
//!   guard makes a collision a miss, never a wrong answer).
//!
//! Sessions are epoch-stamped: a wire `LOAD` replaces the whole engine
//! and bumps the server epoch, and [`Session::sync`] drops every cached
//! handle from the old engine the next time the session serves a frame.

use std::collections::VecDeque;

use bst_bloom::filter::BloomFilter;
use bst_shard::{filter_content_hash, ShardQuery, ShardedBstSystem};

/// Open stored-set handles kept per session.
const STORED_CAP: usize = 64;
/// Open ad-hoc handles kept per session (each pins its filter bytes).
const ADHOC_CAP: usize = 16;

struct AdhocEntry {
    hash: u64,
    /// Exact encoded filter bytes — collision guard for `hash`.
    bytes: Vec<u8>,
    handle: ShardQuery,
}

/// One connection's handle caches, epoch-stamped against engine swaps.
pub struct Session {
    epoch: u64,
    stored: VecDeque<(u64, ShardQuery)>,
    adhoc: VecDeque<AdhocEntry>,
}

impl Session {
    /// A fresh session against the engine at `epoch`.
    pub fn new(epoch: u64) -> Self {
        Session {
            epoch,
            stored: VecDeque::new(),
            adhoc: VecDeque::new(),
        }
    }

    /// Reconciles the session with the current engine epoch: if a LOAD
    /// swapped the engine since the last frame, every cached handle
    /// belongs to a dead engine and is dropped.
    pub fn sync(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.stored.clear();
            self.adhoc.clear();
            self.epoch = epoch;
        }
    }

    /// The handle for stored set `raw`, opened (and cached) on miss.
    /// Staleness is the handle's own business: `ShardQuery` re-weighs
    /// itself when set or tree generations move, so a cache hit is
    /// always as correct as a cold open — just cheaper when nothing
    /// changed.
    pub fn stored_handle(
        &mut self,
        engine: &ShardedBstSystem,
        raw: u64,
    ) -> Result<&ShardQuery, bst_core::error::BstError> {
        if let Some(pos) = self.stored.iter().position(|(id, _)| *id == raw) {
            return Ok(&self.stored[pos].1);
        }
        let handle = engine.query_id(bst_core::store::FilterId::from_raw(raw))?;
        if self.stored.len() == STORED_CAP {
            self.stored.pop_front();
        }
        self.stored.push_back((raw, handle));
        // bst-lint: allow(L001) — reads back the element pushed on the previous line
        Ok(&self.stored.back().expect("just pushed").1)
    }

    /// Forgets the handle for stored set `raw` (after the engine
    /// reported `UnknownFilterId`, i.e. the set was dropped).
    pub fn evict_stored(&mut self, raw: u64) {
        self.stored.retain(|(id, _)| *id != raw);
    }

    /// The handle for an ad-hoc filter, keyed by content hash with the
    /// encoded bytes as collision guard; opened (and cached) on miss.
    pub fn adhoc_handle(
        &mut self,
        engine: &ShardedBstSystem,
        bytes: &[u8],
        filter: &BloomFilter,
    ) -> &ShardQuery {
        let hash = filter_content_hash(filter);
        if let Some(pos) = self
            .adhoc
            .iter()
            .position(|e| e.hash == hash && e.bytes == bytes)
        {
            return &self.adhoc[pos].handle;
        }
        let handle = engine.query(filter);
        if self.adhoc.len() == ADHOC_CAP {
            self.adhoc.pop_front();
        }
        self.adhoc.push_back(AdhocEntry {
            hash,
            bytes: bytes.to_vec(),
            handle,
        });
        // bst-lint: allow(L001) — reads back the element pushed on the previous line
        &self.adhoc.back().expect("just pushed").handle
    }

    /// Cached handle counts `(stored, adhoc)` — test visibility.
    pub fn cached(&self) -> (usize, usize) {
        (self.stored.len(), self.adhoc.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ShardedBstSystem {
        ShardedBstSystem::builder(4_096).shards(4).build()
    }

    #[test]
    fn stored_handles_are_cached_and_warm() {
        let sys = engine();
        let id = sys.create(0..64u64).unwrap();
        let mut session = Session::new(0);
        let raw = id.raw();
        {
            let h = session.stored_handle(&sys, raw).unwrap();
            let w = h.live_weight().unwrap();
            assert!(w >= 64);
        }
        assert_eq!(session.cached(), (1, 0));
        // Second lookup hits the cache: same handle, no re-open.
        let h = session.stored_handle(&sys, raw).unwrap() as *const ShardQuery;
        let h2 = session.stored_handle(&sys, raw).unwrap() as *const ShardQuery;
        assert_eq!(h, h2);
        assert_eq!(session.cached(), (1, 0));
    }

    #[test]
    fn unknown_id_is_an_error_not_a_cache_entry() {
        let sys = engine();
        let mut session = Session::new(0);
        assert!(session.stored_handle(&sys, 999).is_err());
        assert_eq!(session.cached(), (0, 0));
    }

    #[test]
    fn adhoc_cache_keys_by_content_with_byte_guard() {
        let sys = engine();
        let filter = sys.store([3u64, 5, 7]);
        let bytes = bst_bloom::codec::encode(&filter).to_vec();
        let mut session = Session::new(0);
        let p1 = session.adhoc_handle(&sys, &bytes, &filter) as *const ShardQuery;
        let p2 = session.adhoc_handle(&sys, &bytes, &filter) as *const ShardQuery;
        assert_eq!(p1, p2);
        assert_eq!(session.cached(), (0, 1));
        // A different filter is a different entry.
        let other = sys.store([11u64]);
        let other_bytes = bst_bloom::codec::encode(&other).to_vec();
        session.adhoc_handle(&sys, &other_bytes, &other);
        assert_eq!(session.cached(), (0, 2));
    }

    #[test]
    fn caches_are_bounded_fifo() {
        let sys = engine();
        let mut session = Session::new(0);
        let ids: Vec<u64> = (0..STORED_CAP as u64 + 8)
            .map(|i| sys.create([i * 3, i * 3 + 1, i * 3 + 2]).unwrap().raw())
            .collect();
        for &raw in &ids {
            session.stored_handle(&sys, raw).unwrap();
        }
        assert_eq!(session.cached().0, STORED_CAP);
        // The oldest entries were evicted, the newest survive.
        assert!(session.stored.iter().all(|(id, _)| *id != ids[0]));
        assert!(session
            .stored
            .iter()
            .any(|(id, _)| *id == *ids.last().unwrap()));
    }

    #[test]
    fn epoch_sync_drops_everything() {
        let sys = engine();
        let id = sys.create(0..32u64).unwrap();
        let mut session = Session::new(0);
        session.stored_handle(&sys, id.raw()).unwrap();
        session.sync(0);
        assert_eq!(session.cached(), (1, 0));
        session.sync(1);
        assert_eq!(session.cached(), (0, 0));
    }

    #[test]
    fn evict_stored_forgets_dropped_sets() {
        let sys = engine();
        let id = sys.create(0..32u64).unwrap();
        let mut session = Session::new(0);
        session.stored_handle(&sys, id.raw()).unwrap();
        session.evict_stored(id.raw());
        assert_eq!(session.cached(), (0, 0));
    }
}
