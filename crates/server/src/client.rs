//! A small blocking client for the `bst-server` wire protocol — used by
//! the CLI subcommands, the `tcp_service` example, and the e2e tests.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, write_frame, CLIENT_MAX_FRAME};
use crate::protocol::{
    decode_response, encode_request, Request, Response, StatsReply, Target, WireError,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-reply).
    Io(io::Error),
    /// The server answered with a typed error frame.
    Wire(WireError),
    /// The server answered success, but with a different response shape
    /// than the request calls for — a protocol bug, not a user error.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response shape: wanted {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected client. One in-flight request at a time (the protocol is
/// strict request/reply).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one reply. Exposed so callers can
    /// speak raw protocol (the e2e tests do); the typed helpers below
    /// are the ergonomic surface.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        self.read_reply()
    }

    /// Reads one reply frame without sending anything — for tests that
    /// write raw bytes onto the socket themselves.
    pub fn read_reply(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream, CLIENT_MAX_FRAME)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Ok(decode_response(&payload)??)
    }

    /// Raw access to the underlying socket — test visibility.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Pong")),
        }
    }

    /// Creates a stored set; returns its raw id.
    pub fn create(&mut self, keys: Vec<u64>) -> Result<u64, ClientError> {
        match self.request(&Request::Create { keys })? {
            Response::Created { id } => Ok(id),
            _ => Err(ClientError::UnexpectedResponse("Created")),
        }
    }

    /// Inserts keys into a stored set.
    pub fn insert_keys(&mut self, id: u64, keys: Vec<u64>) -> Result<(), ClientError> {
        match self.request(&Request::InsertKeys { id, keys })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Ok")),
        }
    }

    /// Removes keys from a stored set.
    pub fn remove_keys(&mut self, id: u64, keys: Vec<u64>) -> Result<(), ClientError> {
        match self.request(&Request::RemoveKeys { id, keys })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Ok")),
        }
    }

    /// Drops a stored set.
    pub fn drop_set(&mut self, id: u64) -> Result<(), ClientError> {
        match self.request(&Request::DropSet { id })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Ok")),
        }
    }

    /// Marks a namespace id occupied; returns the shard's tree generation.
    pub fn occ_insert(&mut self, key: u64) -> Result<u64, ClientError> {
        match self.request(&Request::OccInsert { key })? {
            Response::Generation { generation } => Ok(generation),
            _ => Err(ClientError::UnexpectedResponse("Generation")),
        }
    }

    /// Vacates a namespace id; returns the shard's tree generation.
    pub fn occ_remove(&mut self, key: u64) -> Result<u64, ClientError> {
        match self.request(&Request::OccRemove { key })? {
            Response::Generation { generation } => Ok(generation),
            _ => Err(ClientError::UnexpectedResponse("Generation")),
        }
    }

    /// Fetches a stored set's filter, decoded.
    pub fn get_filter(&mut self, id: u64) -> Result<bst_bloom::filter::BloomFilter, ClientError> {
        match self.request(&Request::Get { id })? {
            Response::Filter { bytes } => bst_bloom::codec::decode(&bytes)
                .map_err(|_| ClientError::UnexpectedResponse("decodable filter bytes")),
            _ => Err(ClientError::UnexpectedResponse("Filter")),
        }
    }

    /// Lists live stored ids, ascending.
    pub fn list_sets(&mut self) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::ListSets)? {
            Response::Sets { ids } => Ok(ids),
            _ => Err(ClientError::UnexpectedResponse("Sets")),
        }
    }

    /// Draws one sample with a client-chosen RNG seed.
    pub fn sample(&mut self, target: Target, seed: u64) -> Result<u64, ClientError> {
        match self.request(&Request::Sample { target, seed })? {
            Response::Sampled { key } => Ok(key),
            _ => Err(ClientError::UnexpectedResponse("Sampled")),
        }
    }

    /// Draws up to `r` samples with a client-chosen RNG seed.
    pub fn sample_many(
        &mut self,
        target: Target,
        r: u32,
        seed: u64,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::SampleMany { target, r, seed })? {
            Response::Keys { keys } => Ok(keys),
            _ => Err(ClientError::UnexpectedResponse("Keys")),
        }
    }

    /// Reconstructs the whole positive set.
    pub fn reconstruct(&mut self, target: Target) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::Reconstruct { target })? {
            Response::Keys { keys } => Ok(keys),
            _ => Err(ClientError::UnexpectedResponse("Keys")),
        }
    }

    /// Reconstructs restricted to `[start, end)`.
    pub fn reconstruct_range(
        &mut self,
        target: Target,
        start: u64,
        end: u64,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::ReconstructRange { target, start, end })? {
            Response::Keys { keys } => Ok(keys),
            _ => Err(ClientError::UnexpectedResponse("Keys")),
        }
    }

    /// One sample per target (mixed stored/ad-hoc), per-slot results.
    #[allow(clippy::type_complexity)]
    pub fn batch(
        &mut self,
        targets: Vec<Target>,
        seed: u64,
    ) -> Result<Vec<Result<u64, WireError>>, ClientError> {
        match self.request(&Request::Batch { targets, seed })? {
            Response::Batch { results } => Ok(results),
            _ => Err(ClientError::UnexpectedResponse("Batch")),
        }
    }

    /// Snapshots the whole server-side engine.
    pub fn save(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.request(&Request::Save)? {
            Response::Snapshot { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("Snapshot")),
        }
    }

    /// Replaces the server-side engine with a snapshot.
    pub fn load(&mut self, bytes: Vec<u8>) -> Result<(), ClientError> {
        match self.request(&Request::Load { bytes })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Ok")),
        }
    }

    /// Fetches the live stats surface.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }

    /// Fetches the metrics exposition page (Prometheus text format).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            _ => Err(ClientError::UnexpectedResponse("Metrics")),
        }
    }

    /// Asks the server to stop (acknowledged before it does).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Ok")),
        }
    }
}
