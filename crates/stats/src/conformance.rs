//! Statistical conformance harness: fixed-seed sample collection plus
//! the two-sample tests the end-to-end suites pin distributions with.
//!
//! The repo's exactness bars (warm-equals-cold, sharded-equals-single
//! under one RNG stream) are deterministic; this module covers the
//! *statistical* bars — "these two samplers draw from the same
//! distribution" — with two complementary tests:
//!
//! * [`chi2_homogeneity`]: Pearson's two-sample chi-squared test over
//!   per-category counts (sensitive to any per-element frequency skew);
//! * [`ks_two_sample`]: the two-sample Kolmogorov–Smirnov test over raw
//!   draws (sensitive to distributional shifts the binned test dilutes).
//!
//! Everything is seed-deterministic: [`sample_counts`] threads one
//! `StdRng` through the caller's draw closure, so a failing run replays
//! bit-for-bit. Significance levels follow the core uniformity tests:
//! assert at [`DEFAULT_ALPHA`] (1%) — a correct sampler's p-values are
//! Uniform(0,1), so asserting at the paper's 0.08 would flake by
//! construction, while genuine mismatches land at p < 1e-10.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chi2::{chi2_survival, Chi2Result};

/// Significance level the conformance suites assert at.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Draws `rounds` samples from `draw` with a fixed-seed `StdRng` and
/// counts occurrences per key. `keys` must be sorted ascending; panics
/// if a draw is not one of `keys` (conformance suites compare
/// distributions over an agreed support).
pub fn sample_counts<F: FnMut(&mut StdRng) -> u64>(
    keys: &[u64],
    rounds: usize,
    seed: u64,
    mut draw: F,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; keys.len()];
    for _ in 0..rounds {
        let s = draw(&mut rng);
        let idx = keys.binary_search(&s).expect("draw outside the support");
        counts[idx] += 1;
    }
    counts
}

/// Pearson's chi-squared test of homogeneity for two count vectors over
/// the same categories: `H₀` = both samples come from one distribution.
/// The statistic sums `(o - e)²/e` over both rows of the 2×K
/// contingency table with `e[g][k] = rowtotal[g]·coltotal[k]/grand`;
/// categories observed by neither sample drop out (reducing the degrees
/// of freedom accordingly).
///
/// # Panics
/// Panics if the lengths differ, fewer than two categories were
/// observed at all, or either sample is empty.
pub fn chi2_homogeneity(a: &[u64], b: &[u64]) -> Chi2Result {
    assert_eq!(a.len(), b.len(), "count vectors must share categories");
    let row_a: u64 = a.iter().sum();
    let row_b: u64 = b.iter().sum();
    assert!(row_a > 0 && row_b > 0, "both samples must be non-empty");
    let grand = (row_a + row_b) as f64;
    let mut statistic = 0.0;
    let mut observed_categories = 0usize;
    for (&oa, &ob) in a.iter().zip(b) {
        let col = oa + ob;
        if col == 0 {
            continue; // unobserved category: contributes nothing
        }
        observed_categories += 1;
        for (o, row) in [(oa, row_a), (ob, row_b)] {
            let e = row as f64 * col as f64 / grand;
            let d = o as f64 - e;
            statistic += d * d / e;
        }
    }
    assert!(
        observed_categories >= 2,
        "need at least two observed categories"
    );
    let dof = observed_categories - 1;
    Chi2Result {
        statistic,
        dof,
        p_value: chi2_survival(statistic, dof),
    }
}

/// Runs [`chi2_homogeneity`] and asserts homogeneity at `alpha`,
/// rendering the observed 2×K contingency table into the panic message
/// on failure — a bare p-value is undebuggable, the per-category counts
/// name the skewed keys. `label` identifies the comparison under test.
///
/// # Panics
/// Panics (with the observed table) when `H₀` is rejected at `alpha`,
/// and on the same malformed inputs as [`chi2_homogeneity`].
pub fn assert_homogeneous(label: &str, keys: &[u64], a: &[u64], b: &[u64], alpha: f64) {
    let r = chi2_homogeneity(a, b);
    assert!(
        r.is_uniform_at(alpha),
        "{label}: chi2 homogeneity rejected (stat {:.3}, dof {}, p {:.3e} < alpha {alpha})\n\
         observed counts (key: a vs b):\n{}",
        r.statistic,
        r.dof,
        r.p_value,
        render_counts_table(keys, a, b),
    );
}

/// The observed 2×K table as `key: count_a vs count_b` lines, worst
/// relative disagreements first, capped at 32 rows.
fn render_counts_table(keys: &[u64], a: &[u64], b: &[u64]) -> String {
    use std::fmt::Write;
    let mut rows: Vec<(u64, u64, u64)> = keys
        .iter()
        .zip(a.iter().zip(b))
        .map(|(&key, (&oa, &ob))| (key, oa, ob))
        .collect();
    rows.sort_by_key(|&(_, oa, ob)| std::cmp::Reverse(oa.abs_diff(ob)));
    let shown = rows.len().min(32);
    let mut out = String::new();
    for &(key, oa, ob) in &rows[..shown] {
        let _ = writeln!(out, "  {key}: {oa} vs {ob}");
    }
    if rows.len() > shown {
        let _ = writeln!(out, "  … {} more categories", rows.len() - shown);
    }
    out
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_a(x) − F_b(x)|`.
    pub statistic: f64,
    /// Asymptotic `P(D ≥ d)` under `H₀` (same distribution).
    pub p_value: f64,
}

impl KsResult {
    /// Whether `H₀` (one common distribution) survives at `alpha`.
    pub fn is_same_distribution_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test: the supremum distance between
/// the two empirical CDFs, with the asymptotic Kolmogorov p-value
/// (Numerical Recipes' small-sample correction applied to the effective
/// sample size).
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < na && j < nb {
        let (xa, xb) = (a[i], b[j]);
        let x = xa.min(xb);
        while i < na && a[i] <= x {
            i += 1;
        }
        while j < nb && b[j] <= x {
            j += 1;
        }
        let diff = (i as f64 / na as f64 - j as f64 / nb as f64).abs();
        if diff > d {
            d = diff;
        }
    }
    let n_eff = (na as f64 * nb as f64) / (na + nb) as f64;
    let sqrt_n = n_eff.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// [`ks_two_sample`] over integer draws (namespace ids).
pub fn ks_two_sample_ids(a: &[u64], b: &[u64]) -> KsResult {
    let fa: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let fb: Vec<f64> = b.iter().map(|&x| x as f64).collect();
    ks_two_sample(&fa, &fb)
}

/// The Kolmogorov survival function
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`, clamped to `[0, 1]`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    let exp = -2.0 * lambda * lambda;
    for j in 1..=100 {
        let term = sign * (exp * (j * j) as f64).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_counts_are_homogeneous() {
        let r = chi2_homogeneity(&[50, 60, 70, 80], &[50, 60, 70, 80]);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.dof, 3);
        assert!(r.is_uniform_at(DEFAULT_ALPHA));
    }

    #[test]
    fn skewed_counts_reject_homogeneity() {
        let r = chi2_homogeneity(&[500, 10, 10, 10], &[10, 10, 10, 500]);
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
    }

    #[test]
    fn unobserved_categories_drop_out() {
        let r = chi2_homogeneity(&[50, 0, 60], &[55, 0, 58]);
        assert_eq!(r.dof, 1, "the dead middle category reduces dof");
        assert!(r.is_uniform_at(DEFAULT_ALPHA));
    }

    #[test]
    fn same_rng_streams_are_ks_indistinguishable() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let r = ks_two_sample(&a, &b);
        assert!(
            r.is_same_distribution_at(DEFAULT_ALPHA),
            "p = {}",
            r.p_value
        );
    }

    #[test]
    fn shifted_distributions_are_ks_distinguishable() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() + 0.2).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
        assert!(r.statistic > 0.15);
    }

    #[test]
    fn ks_statistic_matches_hand_example() {
        // a = {1,2,3}, b = {2,3,4}: max CDF gap is 1/3 (at x=1 and x=3).
        let r = ks_two_sample(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]);
        assert!((r.statistic - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_q_endpoints() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.3) > 0.999);
        // Textbook: Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_q(1.36) - 0.049).abs() < 5e-3);
        assert!(kolmogorov_q(4.0) < 1e-10);
    }

    #[test]
    fn sample_counts_is_seed_deterministic() {
        let keys = [10u64, 20, 30];
        let draw = |rng: &mut StdRng| keys[rng.gen_range(0..3usize)];
        let a = sample_counts(&keys, 500, 42, draw);
        let b = sample_counts(&keys, 500, 42, draw);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 500);
    }

    #[test]
    #[should_panic(expected = "outside the support")]
    fn draws_outside_support_panic() {
        let _ = sample_counts(&[1u64, 2], 1, 0, |_| 99);
    }

    #[test]
    fn assert_homogeneous_accepts_identical_counts() {
        assert_homogeneous(
            "identical",
            &[1, 2, 3, 4],
            &[50, 60, 70, 80],
            &[50, 60, 70, 80],
            DEFAULT_ALPHA,
        );
    }

    #[test]
    fn assert_homogeneous_failure_prints_observed_table() {
        let err = std::panic::catch_unwind(|| {
            assert_homogeneous(
                "skewed",
                &[7, 8, 9, 10],
                &[500, 10, 10, 10],
                &[10, 10, 10, 500],
                DEFAULT_ALPHA,
            );
        })
        .expect_err("skewed counts must reject");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("skewed"), "label missing: {msg}");
        assert!(
            msg.contains("7: 500 vs 10") && msg.contains("10: 10 vs 500"),
            "observed table missing from failure message: {msg}"
        );
    }

    #[test]
    fn counts_table_caps_rows() {
        let keys: Vec<u64> = (0..100).collect();
        let a = vec![3u64; 100];
        let b = vec![4u64; 100];
        let table = render_counts_table(&keys, &a, &b);
        assert_eq!(table.lines().count(), 33, "32 rows plus the ellipsis");
        assert!(table.contains("68 more categories"));
    }
}
