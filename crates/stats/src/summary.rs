//! Streaming summary statistics (Welford's algorithm) and percentile
//! extraction, used by the benchmark harness to report timing rows.

/// Accumulates count / mean / variance in one pass without storing samples.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile (nearest-rank, inclusive interpolation) of a sample.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let rank = p / 100.0 * (samples.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        samples[lo]
    } else {
        let frac = rank - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance 4; sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), 3.0);
        assert_eq!(w1.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    fn percentile_interpolation() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut xs, 50.0), 3.0);
        assert_eq!(percentile(&mut xs, 100.0), 5.0);
        assert_eq!(percentile(&mut xs, 25.0), 2.0);
        // Interpolated: p=10 over 5 elements -> rank 0.4.
        assert!((percentile(&mut xs, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        let _ = percentile(&mut [], 50.0);
    }
}
