//! Fixed-bin histograms with an ASCII renderer, used by the examples to
//! visualise empirical sampling distributions (the paper's §7.2 "empirically
//! observed distribution of samples").

/// A histogram over `[lo, hi)` with equally wide bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            outliers: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo || x >= self.hi {
            self.outliers += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Renders the histogram as rows of `#` bars, `width` characters at the
    /// tallest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            let lo = self.lo + i as f64 * bin_w;
            out.push_str(&format!(
                "[{:>12.1}, {:>12.1}) | {:<w$} {}\n",
                lo,
                lo + bin_w,
                "#".repeat(bar_len),
                c,
                w = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn outliers_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(0.5);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn render_is_proportional() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.record(0.5);
        }
        for _ in 0..5 {
            h.record(1.5);
        }
        let s = h.render(20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panic() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
