//! Fixed-bin histograms with an ASCII renderer, used by the examples to
//! visualise empirical sampling distributions (the paper's §7.2 "empirically
//! observed distribution of samples") and by `bst-server` to aggregate
//! per-operation latencies ([`Histogram::merge`], [`Histogram::quantile`]).

/// A histogram over `[lo, hi)` with equally wide bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            outliers: 0,
        }
    }

    /// Builds a histogram directly from pre-counted bins — the snapshot
    /// path for concurrent collectors (`bst-obs`) that accumulate counts
    /// in atomics and materialise a queryable `Histogram` on demand.
    /// Bin `i` covers the same interval [`Self::new`] would give it.
    ///
    /// # Panics
    /// Panics if `counts` is empty or `lo >= hi`.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>, outliers: u64) -> Self {
        assert!(!counts.is_empty(), "need at least one bin");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: counts,
            outliers,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo || x >= self.hi {
            self.outliers += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` range the bins cover.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Adds every observation of `other` into `self`. Both histograms
    /// must have the same shape (`lo`, `hi`, bin count), since bin `i`
    /// of one must mean the same interval in the other.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram shapes differ: [{}, {})×{} vs [{}, {})×{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.outliers += other.outliers;
    }

    /// The `q`-quantile of the **in-range** observations (outliers are
    /// excluded — check [`Self::outliers`] when they matter), linearly
    /// interpolated within the containing bin. `None` when no in-range
    /// observation was recorded. The answer is exact to within one bin
    /// width of the true sample quantile (unit-tested against exact
    /// sorted-sample quantiles).
    ///
    /// # Panics
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.total();
        if n == 0 {
            return None;
        }
        // The rank-th smallest in-range observation (1-based), the
        // classic "smallest x with CDF(x) ≥ q" definition.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if cum + c >= rank {
                let within = if c == 0 {
                    0.0
                } else {
                    (rank - cum) as f64 / c as f64
                };
                return Some(self.lo + (i as f64 + within) * width);
            }
            cum += c;
        }
        unreachable!("rank <= total")
    }

    /// The median of the in-range observations ([`Self::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The 95th percentile of the in-range observations.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// The 99th percentile of the in-range observations.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Observations that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Renders the histogram as rows of `#` bars, `width` characters at the
    /// tallest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            let lo = self.lo + i as f64 * bin_w;
            out.push_str(&format!(
                "[{:>12.1}, {:>12.1}) | {:<w$} {}\n",
                lo,
                lo + bin_w,
                "#".repeat(bar_len),
                c,
                w = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn from_counts_equals_recording() {
        let mut recorded = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, -1.0, 12.0] {
            recorded.record(v);
        }
        let rebuilt = Histogram::from_counts(0.0, 10.0, recorded.counts().to_vec(), 2);
        assert_eq!(rebuilt.counts(), recorded.counts());
        assert_eq!(rebuilt.outliers(), recorded.outliers());
        assert_eq!(rebuilt.p50(), recorded.p50());
        assert_eq!(rebuilt.range(), recorded.range());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn from_counts_rejects_empty() {
        let _ = Histogram::from_counts(0.0, 1.0, vec![], 0);
    }

    #[test]
    fn outliers_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(0.5);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn render_is_proportional() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.record(0.5);
        }
        for _ in 0..5 {
            h.record(1.5);
        }
        let s = h.render(20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panic() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn merge_adds_counts_and_outliers() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        a.record(5.0);
        a.record(-3.0);
        let mut b = Histogram::new(0.0, 10.0, 5);
        b.record(1.5);
        b.record(9.0);
        b.record(42.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 1, 0, 1]);
        assert_eq!(a.outliers(), 2);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn quantiles_match_exact_sorted_sample_quantiles() {
        // A deterministic, irregular sample: exact quantiles computed by
        // sorting must agree with the histogram's interpolated ones to
        // within one bin width.
        let values: Vec<f64> = (0..5_000u64)
            .map(|i| ((i * 2_654_435_761) % 100_000) as f64 / 100.0)
            .collect();
        let (lo, hi, bins) = (0.0, 1_000.0, 2_000);
        let width = (hi - lo) / bins as f64;
        let mut h = Histogram::new(lo, hi, bins);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q).expect("non-empty");
            assert!(
                (approx - exact).abs() <= width,
                "q={q}: histogram {approx} vs exact {exact} (bin width {width})"
            );
        }
        assert_eq!(h.p50(), h.quantile(0.5));
        assert_eq!(h.p95(), h.quantile(0.95));
        assert_eq!(h.p99(), h.quantile(0.99));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.quantile(0.5), None);

        // Outliers alone leave the in-range quantile undefined.
        let mut out_only = Histogram::new(0.0, 1.0, 4);
        out_only.record(5.0);
        assert_eq!(out_only.p50(), None);

        // A single observation answers every quantile within its bin.
        let mut one = Histogram::new(0.0, 8.0, 4);
        one.record(3.0);
        for q in [0.0, 0.5, 1.0] {
            let v = one.quantile(q).unwrap();
            assert!((2.0..=4.0).contains(&v), "q={q}: {v}");
        }
        assert_eq!(one.range(), (0.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.5);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merged_quantiles_equal_combined_sample() {
        // Quantiles of a merge = quantiles of recording everything into
        // one histogram (merge is exact, not an approximation).
        let mut a = Histogram::new(0.0, 100.0, 200);
        let mut b = Histogram::new(0.0, 100.0, 200);
        let mut all = Histogram::new(0.0, 100.0, 200);
        for i in 0..1_000u64 {
            let v = ((i * 97) % 1_000) as f64 / 10.0;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts(), all.counts());
        assert_eq!(a.p50(), all.p50());
        assert_eq!(a.p99(), all.p99());
    }
}
