//! Pearson's chi-squared goodness-of-fit test against the uniform
//! distribution, as used to validate sample quality in §7.2 / Table 5.
//!
//! The paper's protocol: draw `T = 130·n` samples from a Bloom filter
//! storing `n` elements, count occurrences `o_i` of each element, and test
//! `H₀: e_i = T/n` at significance level 0.08. The p-value is
//! `P(Q ≥ q | H₀)` where `Q ~ χ²_{n−1}`.

use crate::gamma::gamma_q;

/// Result of a chi-squared uniformity test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic `q = Σ (o_i − e_i)² / e_i`.
    pub statistic: f64,
    /// Degrees of freedom (`categories − 1`).
    pub dof: usize,
    /// `P(Q ≥ q)` under the null hypothesis.
    pub p_value: f64,
}

impl Chi2Result {
    /// Whether the null hypothesis (uniformity) survives at significance
    /// level `alpha` (the paper uses 0.08).
    pub fn is_uniform_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// The significance level the paper sets for Table 5.
pub const PAPER_SIGNIFICANCE: f64 = 0.08;

/// Samples-per-element multiplier the paper uses (`T = 130·n`).
pub const PAPER_ROUNDS_PER_ELEMENT: usize = 130;

/// Chi-squared test of observed counts against explicit expected counts.
///
/// # Panics
/// Panics if lengths differ, fewer than two categories exist, or any
/// expected count is non-positive.
pub fn chi2_test(observed: &[u64], expected: &[f64]) -> Chi2Result {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    assert!(observed.len() >= 2, "need at least two categories");
    let mut statistic = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e > 0.0, "expected counts must be positive");
        let d = o as f64 - e;
        statistic += d * d / e;
    }
    let dof = observed.len() - 1;
    Chi2Result {
        statistic,
        dof,
        p_value: chi2_survival(statistic, dof),
    }
}

/// Chi-squared test of observed counts against the uniform distribution
/// (every category equally likely). The total is inferred from the counts.
pub fn chi2_uniform_test(observed: &[u64]) -> Chi2Result {
    assert!(observed.len() >= 2, "need at least two categories");
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "no observations");
    let e = total as f64 / observed.len() as f64;
    let expected = vec![e; observed.len()];
    chi2_test(observed, &expected)
}

/// Survival function of the χ² distribution: `P(X ≥ q)` for `X ~ χ²_dof`.
pub fn chi2_survival(q: f64, dof: usize) -> f64 {
    assert!(dof >= 1, "dof must be at least 1");
    assert!(q >= 0.0, "statistic must be non-negative");
    gamma_q(dof as f64 / 2.0, q / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_uniform_counts_give_p_one() {
        let observed = vec![100u64; 10];
        let r = chi2_uniform_test(&observed);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.dof, 9);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(r.is_uniform_at(PAPER_SIGNIFICANCE));
    }

    #[test]
    fn grossly_skewed_counts_reject() {
        let mut observed = vec![10u64; 10];
        observed[0] = 910;
        let r = chi2_uniform_test(&observed);
        assert!(r.p_value < 1e-10);
        assert!(!r.is_uniform_at(PAPER_SIGNIFICANCE));
    }

    #[test]
    fn known_textbook_example() {
        // Classic die example: 60 rolls, observed [5,8,9,8,10,20].
        // q = sum((o-10)^2/10) = (25+4+1+4+0+100)/10 = 13.4, dof 5,
        // p ≈ 0.0199.
        let r = chi2_uniform_test(&[5, 8, 9, 8, 10, 20]);
        assert!((r.statistic - 13.4).abs() < 1e-12);
        assert!((r.p_value - 0.0199).abs() < 5e-4, "p={}", r.p_value);
    }

    #[test]
    fn survival_matches_tables() {
        // P(χ²_1 ≥ 3.841) ≈ 0.05; P(χ²_5 ≥ 11.07) ≈ 0.05.
        assert!((chi2_survival(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi2_survival(11.07, 5) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn uniform_sampler_passes_on_average() {
        // A deterministic round-robin "sampler" is perfectly uniform.
        let n = 50usize;
        let t = PAPER_ROUNDS_PER_ELEMENT * n;
        let mut counts = vec![0u64; n];
        for i in 0..t {
            counts[i % n] += 1;
        }
        let r = chi2_uniform_test(&counts);
        assert!(r.is_uniform_at(PAPER_SIGNIFICANCE));
    }

    #[test]
    fn explicit_expected_counts() {
        // Non-uniform null: expect 2:1 ratio.
        let r = chi2_test(&[200, 100], &[200.0, 100.0]);
        assert_eq!(r.statistic, 0.0);
        let r2 = chi2_test(&[100, 200], &[200.0, 100.0]);
        assert!(r2.p_value < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = chi2_test(&[1, 2], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_category_panics() {
        let _ = chi2_uniform_test(&[5]);
    }
}
