//! Gamma-function numerics: `ln Γ(x)` via the Lanczos approximation and the
//! regularized incomplete gamma functions `P(a, x)` / `Q(a, x)` via series
//! and continued-fraction expansions (Numerical Recipes §6.2 style).
//!
//! These back the chi-squared p-values of Table 5: the survival function of
//! a χ² distribution with `d` degrees of freedom at `q` is `Q(d/2, q/2)`.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;

/// Series expansion of `P(a, x)`; converges quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for `Q(a, x)` (modified Lentz); converges quickly for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_integers_are_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "n = {n}: {} vs {}",
                ln_gamma(n as f64),
                fact.ln()
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = sqrt(π)/2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5f64, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.1f64, 1.0, 5.0, 25.0, 100.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!(close(s, 1.0, 1e-10), "a={a}, x={x}: sum {s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.0f64, 0.3, 1.0, 4.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12), "x={x}");
        }
    }

    #[test]
    fn chi2_survival_known_values() {
        // Q(d/2, q/2) for χ² distribution; reference values from standard
        // tables: P(χ²_1 > 3.841) ≈ 0.05, P(χ²_10 > 18.307) ≈ 0.05.
        assert!(close(gamma_q(0.5, 3.841 / 2.0), 0.05, 2e-3));
        assert!(close(gamma_q(5.0, 18.307 / 2.0), 0.05, 2e-3));
        // P(χ²_2 > x) = e^{-x/2} exactly.
        assert!(close(gamma_q(1.0, 4.0 / 2.0), (-2.0f64).exp(), 1e-12));
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut last = -1.0;
        for i in 0..100 {
            let x = i as f64 * 0.5;
            let p = gamma_p(3.0, x);
            assert!(p >= last);
            last = p;
        }
        assert!(last <= 1.0 + 1e-12);
    }

    #[test]
    fn extreme_tails() {
        assert!(gamma_q(0.5, 500.0) < 1e-100);
        assert!(gamma_p(50.0, 0.001) < 1e-50);
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn bad_a_panics() {
        let _ = gamma_p(0.0, 1.0);
    }
}
