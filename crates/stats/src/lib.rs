//! # bst-stats — numerical substrate
//!
//! Statistics the reproduction needs and the paper's evaluation uses:
//!
//! * [`gamma`] — `ln Γ`, regularized incomplete gamma (`P`, `Q`);
//! * [`chi2`] — Pearson's chi-squared uniformity test with p-values
//!   (Table 5's methodology, §7.2);
//! * [`summary`] — Welford mean/variance and percentiles for timing rows;
//! * [`binomial`] — binomial sampling for the one-pass multi-sampler's
//!   path splitting (§5.3);
//! * [`histogram`] — ASCII histograms for the examples.

#![warn(missing_docs)]

pub mod binomial;
pub mod chi2;
pub mod gamma;
pub mod histogram;
pub mod summary;

pub use chi2::{chi2_test, chi2_uniform_test, Chi2Result};
pub use summary::Welford;
