#![forbid(unsafe_code)]
//! # bst-stats — numerical substrate
//!
//! Statistics the reproduction needs and the paper's evaluation uses:
//!
//! * [`gamma`] — `ln Γ`, regularized incomplete gamma (`P`, `Q`);
//! * [`chi2`] — Pearson's chi-squared uniformity test with p-values
//!   (Table 5's methodology, §7.2);
//! * [`conformance`] — the fixed-seed conformance harness (two-sample
//!   chi-squared homogeneity + Kolmogorov–Smirnov) the end-to-end suites
//!   pin sampler distributions with;
//! * [`summary`] — Welford mean/variance and percentiles for timing rows;
//! * [`binomial`] — binomial sampling for the one-pass multi-sampler's
//!   path splitting (§5.3);
//! * [`histogram`] — ASCII histograms for the examples.
//!
//! ## Example
//!
//! The chi-squared uniformity test behind the sampling conformance
//! suites (a fair die passes, a loaded one fails):
//!
//! ```
//! use bst_stats::chi2_uniform_test;
//!
//! let fair = chi2_uniform_test(&[95, 105, 99, 101, 103, 97]);
//! assert!(fair.is_uniform_at(0.01), "p = {}", fair.p_value);
//!
//! let loaded = chi2_uniform_test(&[10, 10, 10, 10, 10, 550]);
//! assert!(!loaded.is_uniform_at(0.01));
//! ```

#![warn(missing_docs)]

pub mod binomial;
pub mod chi2;
pub mod conformance;
pub mod gamma;
pub mod histogram;
pub mod summary;

pub use chi2::{chi2_test, chi2_uniform_test, Chi2Result};
pub use conformance::{
    assert_homogeneous, chi2_homogeneity, ks_two_sample, ks_two_sample_ids, KsResult,
};
pub use summary::Welford;
