//! Binomial sampling.
//!
//! The one-pass multi-sampler (§5.3, "Sampling multiple items") splits `r`
//! search paths between the two children of each BloomSampleTree node by
//! flipping `r` independent biased coins — i.e. drawing `Binomial(r, p)`.
//! For small `r` direct simulation is fine; for large `r` we use the
//! BINV inversion method, switching to a normal approximation when
//! `n·min(p,1−p)` is large enough that inversion would walk too far.

use rand::Rng;

/// Draws from `Binomial(n, p)`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with q = min(p, 1-p) and mirror at the end.
    let flip = p > 0.5;
    let q = if flip { 1.0 - p } else { p };
    let mean = n as f64 * q;

    let draw = if n <= 64 {
        // Direct simulation: cheap and exact.
        let mut count = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < q {
                count += 1;
            }
        }
        count
    } else if mean <= 30.0 {
        binv(rng, n, q)
    } else {
        normal_approx(rng, n, q)
    };
    if flip {
        n - draw
    } else {
        draw
    }
}

/// BINV: inversion by sequential search from 0, O(mean) expected steps.
fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    // P(X = 0) = q^n; guard against underflow for the parameter ranges
    // this branch handles (mean <= 30 keeps q^n >= e^{-30}-ish).
    let mut f = q.powf(n as f64);
    let mut u: f64 = rng.gen();
    let mut x = 0u64;
    loop {
        if u < f {
            return x;
        }
        u -= f;
        x += 1;
        if x > n {
            // Numerical residue; clamp.
            return n;
        }
        f *= s * (n - x + 1) as f64 / x as f64;
    }
}

/// Normal approximation with continuity correction, clamped to `[0, n]`.
fn normal_approx<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let draw = (mean + sd * z + 0.5).floor();
    draw.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(rng: &mut StdRng, n: u64, p: f64, trials: usize) -> (f64, f64) {
        let mut acc = crate::summary::Welford::new();
        for _ in 0..trials {
            acc.push(sample_binomial(rng, n, p) as f64);
        }
        (acc.mean(), acc.variance())
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn small_n_matches_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mean, var) = mean_var(&mut rng, 20, 0.3, 20_000);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.2).abs() < 0.2, "var {var}");
    }

    #[test]
    fn binv_regime_matches_moments() {
        // n = 1000, p = 0.01 -> mean 10, var 9.9 (inversion branch).
        let mut rng = StdRng::seed_from_u64(3);
        let (mean, var) = mean_var(&mut rng, 1000, 0.01, 20_000);
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var - 9.9).abs() < 0.5, "var {var}");
    }

    #[test]
    fn normal_regime_matches_moments() {
        // n = 10000, p = 0.4 -> mean 4000, var 2400 (normal branch).
        let mut rng = StdRng::seed_from_u64(4);
        let (mean, var) = mean_var(&mut rng, 10_000, 0.4, 10_000);
        assert!((mean - 4000.0).abs() < 2.0, "mean {mean}");
        assert!((var - 2400.0).abs() < 120.0, "var {var}");
    }

    #[test]
    fn high_p_mirrors() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mean, _) = mean_var(&mut rng, 1000, 0.99, 5_000);
        assert!((mean - 990.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn always_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for &(n, p) in &[(1u64, 0.5f64), (100, 0.001), (100_000, 0.7), (64, 0.5)] {
            for _ in 0..500 {
                let x = sample_binomial(&mut rng, n, p);
                assert!(x <= n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn invalid_p_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = sample_binomial(&mut rng, 10, 1.5);
    }
}
