//! Property-based tests for the numerical substrate.

use bst_stats::binomial::sample_binomial;
use bst_stats::chi2::{chi2_survival, chi2_uniform_test};
use bst_stats::gamma::{gamma_p, gamma_q, ln_gamma};
use bst_stats::summary::{percentile, Welford};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gamma_recurrence_holds(x in 0.5f64..50.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn gamma_p_plus_q_is_one(a in 0.1f64..60.0, x in 0.0f64..200.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "P+Q = {}", s);
    }

    #[test]
    fn gamma_p_bounded_and_monotone(a in 0.1f64..30.0, x in 0.0f64..100.0, dx in 0.01f64..10.0) {
        let p1 = gamma_p(a, x);
        let p2 = gamma_p(a, x + dx);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!(p2 >= p1 - 1e-12, "P not monotone: {} -> {}", p1, p2);
    }

    #[test]
    fn chi2_survival_monotone_in_q(dof in 1usize..100, q in 0.0f64..200.0, dq in 0.1f64..50.0) {
        prop_assert!(chi2_survival(q, dof) >= chi2_survival(q + dq, dof) - 1e-12);
    }

    #[test]
    fn chi2_uniform_detects_gross_skew(cats in 3usize..40, total in 1000u64..5000) {
        // All mass in one category must be rejected.
        let mut counts = vec![0u64; cats];
        counts[0] = total;
        let res = chi2_uniform_test(&counts);
        prop_assert!(res.p_value < 1e-6);
        // Perfectly level counts must not be rejected.
        let level = vec![total; cats];
        prop_assert!(chi2_uniform_test(&level).p_value > 0.99);
    }

    #[test]
    fn binomial_within_range_and_mean(n in 1u64..5000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0u64;
        let reps = 200;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p);
            prop_assert!(x <= n);
            sum += x;
        }
        let mean = sum as f64 / reps as f64;
        let expect = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // 6-sigma band on the mean of 200 draws.
        prop_assert!(
            (mean - expect).abs() <= 6.0 * sd / (reps as f64).sqrt() + 1e-9,
            "mean {} vs expected {}", mean, expect
        );
    }

    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e4f64..1e4, 2..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
    }

    #[test]
    fn welford_merge_any_split(
        xs in prop::collection::vec(-100.0f64..100.0, 2..100),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
    }

    #[test]
    fn percentile_within_bounds(
        mut xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        p in 0.0f64..100.0,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = percentile(&mut xs, p);
        prop_assert!(v >= lo && v <= hi);
    }
}
