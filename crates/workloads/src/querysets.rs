//! Query-set generators (§7.1).
//!
//! * **Uniform** sets: `n` elements drawn uniformly without replacement.
//! * **Clustered** sets: the paper's evolving-pdf process, modelling Web
//!   graphs where "neighbour sets of vertices typically have their ids
//!   clustered around a few nodes" \[23\]. Starting from a uniform pdf, each
//!   drawn element `s` has its probability zeroed and split equally between
//!   its nearest still-available neighbours `x < s < y`; the aggressive
//!   variant additionally shaves `p%` off *every* element's probability and
//!   adds it to `x` and `y`. The paper runs `p = 10`.
//!
//! The evolving pdf lives in a Fenwick tree; neighbour lookups use
//! path-compressed skip pointers; the per-round global `p%` shave is a
//! multiplicative rescale folded into the *new* mass (raw weights grow by
//! `1/(1−p)` per round and are renormalised before overflow).

use rand::Rng;

use crate::fenwick::Fenwick;
use crate::sampling::sample_distinct;
use crate::skipset::SkipSet;

/// The paper's default clustering aggressiveness (`p = 10`%).
pub const PAPER_CLUSTERING_PCT: f64 = 10.0;

/// Generates a uniform query set: `n` distinct elements from `[0, m)`,
/// sorted.
pub fn uniform_set<R: Rng + ?Sized>(rng: &mut R, namespace: u64, n: usize) -> Vec<u64> {
    sample_distinct(rng, 0, namespace, n)
}

/// Generates a clustered query set of `n` distinct elements from
/// `[0, namespace)` via the §7.1 pdf-splitting process with aggressiveness
/// `p_pct` (percent). Returns a sorted vector.
///
/// # Panics
/// Panics if `n` exceeds the namespace, the namespace exceeds `u32` range
/// (the process materialises per-element weights), or `p_pct ∉ [0, 100)`.
pub fn clustered_set<R: Rng + ?Sized>(
    rng: &mut R,
    namespace: u64,
    n: usize,
    p_pct: f64,
) -> Vec<u64> {
    assert!(namespace > 0, "namespace must be non-empty");
    assert!(
        namespace <= u32::MAX as u64,
        "clustered generator materialises the namespace; {namespace} too large"
    );
    let m = namespace as usize;
    assert!(n <= m, "cannot draw {n} from a namespace of {m}");
    assert!(
        (0.0..100.0).contains(&p_pct),
        "aggressiveness must be in [0, 100), got {p_pct}"
    );
    let q = p_pct / 100.0;
    // Raw-unit bookkeeping: effective weights are g * raw for an implicit
    // global g that shrinks by (1-q) per round. New mass is injected in
    // raw units scaled by 1/(1-q), so g itself never needs to be tracked.
    let mut raw = vec![1.0f64; m];
    let mut fen = Fenwick::from_weights(&raw);
    let mut skip = SkipSet::new(m);
    let mut out = Vec::with_capacity(n);

    while out.len() < n {
        let total = fen.total();
        if !(total.is_finite()) || total > 1e250 {
            // Renormalise raw weights to mean 1 before they overflow.
            let scale = m as f64 / total;
            for w in raw.iter_mut() {
                *w *= scale;
            }
            // Zeroed (drawn) positions stay zero under scaling.
            fen = Fenwick::from_weights(&raw);
            continue;
        }
        if total <= 0.0 {
            // All mass numerically vanished (possible when the last free
            // elements sit at the boundary with no neighbours): fall back
            // to uniform over the remaining free slots.
            for w in raw.iter_mut() {
                *w = 0.0;
            }
            let mut idx = 0usize;
            let mut restored = false;
            while let Some(free) = skip.next_free(idx) {
                raw[free] = 1.0;
                restored = true;
                if free + 1 >= m {
                    break;
                }
                idx = free + 1;
            }
            if !restored {
                break; // namespace exhausted
            }
            fen = Fenwick::from_weights(&raw);
            continue;
        }
        let target = rng.gen::<f64>() * total;
        let Some(mut s) = fen.find_by_prefix(target) else {
            continue; // float drift; redraw
        };
        if skip.is_occupied(s) {
            // Numerical residue on an occupied slot; take the nearest free.
            match skip.next_free_after(s).or_else(|| skip.prev_free_before(s)) {
                Some(free) => s = free,
                None => break,
            }
        }
        out.push(s as u64);
        skip.occupy(s);
        let mass_s = raw[s];
        fen.add(s, -mass_s);
        raw[s] = 0.0;
        let rest = (total - mass_s).max(0.0);
        // Mass to redistribute per neighbour, in post-shave raw units.
        let per_side = (mass_s + q * rest) / (2.0 * (1.0 - q));
        let x = skip.prev_free_before(s);
        let y = skip.next_free_after(s);
        match (x, y) {
            (Some(x), Some(y)) => {
                fen.add(x, per_side);
                raw[x] += per_side;
                fen.add(y, per_side);
                raw[y] += per_side;
            }
            (Some(x), None) => {
                fen.add(x, 2.0 * per_side);
                raw[x] += 2.0 * per_side;
            }
            (None, Some(y)) => {
                fen.add(y, 2.0 * per_side);
                raw[y] += 2.0 * per_side;
            }
            (None, None) => break, // namespace exhausted
        }
    }
    out.sort_unstable();
    out
}

/// Clustering diagnostic: fraction of adjacent (sorted) elements at gap 1.
/// Uniform sets of `n ≪ M` score near `n/M`; clustered sets score high.
pub fn adjacency_fraction(sorted: &[u64]) -> f64 {
    if sorted.len() < 2 {
        return 0.0;
    }
    let adjacent = sorted.windows(2).filter(|w| w[1] - w[0] == 1).count();
    adjacent as f64 / (sorted.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_set_properties() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = uniform_set(&mut rng, 100_000, 1000);
        assert_eq!(s.len(), 1000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&x| x < 100_000));
    }

    #[test]
    fn clustered_set_properties() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = clustered_set(&mut rng, 100_000, 1000, PAPER_CLUSTERING_PCT);
        assert_eq!(s.len(), 1000);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "distinct and sorted");
        assert!(s.iter().all(|&x| x < 100_000));
    }

    #[test]
    fn clustered_is_more_clustered_than_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let uni = uniform_set(&mut rng, 100_000, 1000);
        let clu = clustered_set(&mut rng, 100_000, 1000, PAPER_CLUSTERING_PCT);
        let f_uni = adjacency_fraction(&uni);
        let f_clu = adjacency_fraction(&clu);
        assert!(
            f_clu > 10.0 * f_uni.max(0.005),
            "clustered adjacency {f_clu} vs uniform {f_uni}"
        );
    }

    #[test]
    fn gentle_clustering_without_shave() {
        // p = 0: only the drawn element's own mass moves; still clusters,
        // just less aggressively.
        let mut rng = StdRng::seed_from_u64(4);
        let s = clustered_set(&mut rng, 50_000, 500, 0.0);
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn exhausting_the_namespace() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = clustered_set(&mut rng, 64, 64, 10.0);
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_namespace_edge() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = clustered_set(&mut rng, 1, 1, 10.0);
        assert_eq!(s, vec![0]);
        let s2 = clustered_set(&mut rng, 2, 2, 10.0);
        assert_eq!(s2, vec![0, 1]);
    }

    #[test]
    fn deep_runs_renormalise_not_overflow() {
        // Enough draws at p=10 that raw weights would overflow without
        // renormalisation (growth (1/0.9)^k > 1e250 needs k ≈ 5460).
        let mut rng = StdRng::seed_from_u64(7);
        let s = clustered_set(&mut rng, 8_000, 6_000, 10.0);
        assert_eq!(s.len(), 6_000);
    }

    #[test]
    fn adjacency_fraction_edges() {
        assert_eq!(adjacency_fraction(&[]), 0.0);
        assert_eq!(adjacency_fraction(&[5]), 0.0);
        assert_eq!(adjacency_fraction(&[5, 6]), 1.0);
        assert_eq!(adjacency_fraction(&[5, 7]), 0.0);
        assert_eq!(adjacency_fraction(&[1, 2, 3, 10]), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "aggressiveness")]
    fn full_shave_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = clustered_set(&mut rng, 100, 10, 100.0);
    }
}
