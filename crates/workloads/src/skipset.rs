//! Union-find "nearest free neighbour" structure.
//!
//! The clustered query-set generator (§7.1) repeatedly needs
//! `x = max{i < s : pdf(i) > 0}` and `y = min{i > s : pdf(i) > 0}` where
//! exactly the already-drawn indices have zero pdf. Because clusters of
//! drawn indices are contiguous by construction, naive scanning is
//! quadratic; path-compressed skip pointers make each query near-amortised
//! constant.

/// Tracks a set of "occupied" indices in `[0, len)` and answers
/// nearest-free-neighbour queries on either side.
#[derive(Clone, Debug)]
pub struct SkipSet {
    /// `next[i]`: candidate for the first free index `>= i` (self if free).
    next: Vec<u32>,
    /// `prev[i]`: candidate for the last free index `<= i` (self if free).
    prev: Vec<u32>,
    occupied: Vec<bool>,
    len: usize,
}

/// Sentinel meaning "no free index on this side".
const NONE: u32 = u32::MAX;

impl SkipSet {
    /// All-free structure over `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len` is zero or does not fit `u32 - 1`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "SkipSet must be non-empty");
        assert!(len < NONE as usize, "SkipSet index range exceeds u32");
        SkipSet {
            next: (0..len as u32).collect(),
            prev: (0..len as u32).collect(),
            occupied: vec![false; len],
            len,
        }
    }

    /// Number of indices tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` has been marked occupied.
    pub fn is_occupied(&self, i: usize) -> bool {
        self.occupied[i]
    }

    /// Marks `i` occupied.
    pub fn occupy(&mut self, i: usize) {
        debug_assert!(i < self.len);
        if self.occupied[i] {
            return;
        }
        self.occupied[i] = true;
        // Route around i in both directions.
        self.next[i] = if i + 1 < self.len {
            (i + 1) as u32
        } else {
            NONE
        };
        self.prev[i] = if i > 0 { (i - 1) as u32 } else { NONE };
    }

    fn resolve_next(&mut self, start: u32) -> u32 {
        // Find the first free index >= start with path compression.
        let mut cur = start;
        // Walk.
        loop {
            if cur == NONE {
                break;
            }
            let c = cur as usize;
            if !self.occupied[c] {
                break;
            }
            cur = self.next[c];
        }
        // Compress.
        let mut walk = start;
        while walk != NONE && walk != cur {
            let w = walk as usize;
            let nxt = self.next[w];
            self.next[w] = cur;
            walk = nxt;
        }
        cur
    }

    fn resolve_prev(&mut self, start: u32) -> u32 {
        let mut cur = start;
        loop {
            if cur == NONE {
                break;
            }
            let c = cur as usize;
            if !self.occupied[c] {
                break;
            }
            cur = self.prev[c];
        }
        let mut walk = start;
        while walk != NONE && walk != cur {
            let w = walk as usize;
            let nxt = self.prev[w];
            self.prev[w] = cur;
            walk = nxt;
        }
        cur
    }

    /// First free index `>= i`, or `None`.
    pub fn next_free(&mut self, i: usize) -> Option<usize> {
        debug_assert!(i < self.len);
        let r = self.resolve_next(i as u32);
        (r != NONE).then_some(r as usize)
    }

    /// Last free index `<= i`, or `None`.
    pub fn prev_free(&mut self, i: usize) -> Option<usize> {
        debug_assert!(i < self.len);
        let r = self.resolve_prev(i as u32);
        (r != NONE).then_some(r as usize)
    }

    /// First free index strictly greater than `i`.
    pub fn next_free_after(&mut self, i: usize) -> Option<usize> {
        if i + 1 >= self.len {
            return None;
        }
        self.next_free(i + 1)
    }

    /// Last free index strictly less than `i`.
    pub fn prev_free_before(&mut self, i: usize) -> Option<usize> {
        if i == 0 {
            return None;
        }
        self.prev_free(i - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_free_initially() {
        let mut s = SkipSet::new(10);
        for i in 0..10 {
            assert_eq!(s.next_free(i), Some(i));
            assert_eq!(s.prev_free(i), Some(i));
            assert!(!s.is_occupied(i));
        }
    }

    #[test]
    fn occupy_routes_around() {
        let mut s = SkipSet::new(10);
        s.occupy(5);
        assert_eq!(s.next_free(5), Some(6));
        assert_eq!(s.prev_free(5), Some(4));
        assert_eq!(s.next_free_after(4), Some(6));
        assert_eq!(s.prev_free_before(6), Some(4));
    }

    #[test]
    fn contiguous_runs_skip_efficiently() {
        let mut s = SkipSet::new(100);
        for i in 10..90 {
            s.occupy(i);
        }
        assert_eq!(s.next_free(10), Some(90));
        assert_eq!(s.prev_free(89), Some(9));
        assert_eq!(s.next_free_after(50), Some(90));
        assert_eq!(s.prev_free_before(50), Some(9));
    }

    #[test]
    fn boundaries_return_none() {
        let mut s = SkipSet::new(5);
        for i in 0..5 {
            s.occupy(i);
        }
        assert_eq!(s.next_free(0), None);
        assert_eq!(s.prev_free(4), None);
        assert_eq!(s.next_free_after(4), None);
        assert_eq!(s.prev_free_before(0), None);
    }

    #[test]
    fn double_occupy_is_idempotent() {
        let mut s = SkipSet::new(5);
        s.occupy(2);
        s.occupy(2);
        assert_eq!(s.next_free(2), Some(3));
        assert_eq!(s.prev_free(2), Some(1));
    }

    #[test]
    fn matches_naive_on_random_pattern() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let len = 200usize;
        let mut s = SkipSet::new(len);
        let mut occ = vec![false; len];
        for _ in 0..150 {
            let i = rng.gen_range(0..len);
            s.occupy(i);
            occ[i] = true;
            let q = rng.gen_range(0..len);
            let naive_next = (q..len).find(|&j| !occ[j]);
            let naive_prev = (0..=q).rev().find(|&j| !occ[j]);
            assert_eq!(s.next_free(q), naive_next, "next at {q}");
            assert_eq!(s.prev_free(q), naive_prev, "prev at {q}");
        }
    }
}
