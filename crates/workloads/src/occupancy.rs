//! Namespace-occupancy generators (§8.1).
//!
//! The paper's low-occupancy experiments divide a 2.2-billion-wide
//! namespace into the leaf ranges of a hypothetical 256-leaf
//! BloomSampleTree and occupy a *fraction* of those leaves, either
//! uniformly or clustered. Occupied leaves merge into disjoint ranges; all
//! ids used by the workload are then drawn from inside these ranges.

use std::ops::Range;

use rand::Rng;

use crate::querysets::{clustered_set, uniform_set};

/// The paper's hypothetical tree fan-out for building occupancy fractions.
pub const PAPER_LEAVES: u64 = 256;

/// A set of disjoint, sorted, half-open id ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccupiedRanges {
    ranges: Vec<Range<u64>>,
    namespace: u64,
}

impl OccupiedRanges {
    /// Builds from raw ranges (must be sorted, disjoint, non-empty).
    pub fn from_ranges(ranges: Vec<Range<u64>>, namespace: u64) -> Self {
        for w in ranges.windows(2) {
            assert!(w[0].end <= w[1].start, "ranges must be sorted & disjoint");
        }
        for r in &ranges {
            assert!(r.start < r.end, "empty range");
            assert!(r.end <= namespace, "range outside namespace");
        }
        OccupiedRanges { ranges, namespace }
    }

    /// The disjoint ranges, ascending.
    pub fn ranges(&self) -> &[Range<u64>] {
        &self.ranges
    }

    /// Namespace size the ranges live in.
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Total number of ids covered.
    pub fn span(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Fraction of the namespace covered.
    pub fn fraction(&self) -> f64 {
        self.span() as f64 / self.namespace as f64
    }

    /// Whether `id` falls inside an occupied range (binary search).
    pub fn contains(&self, id: u64) -> bool {
        let idx = self.ranges.partition_point(|r| r.end <= id);
        idx < self.ranges.len() && self.ranges[idx].contains(&id)
    }

    /// Draws `count` distinct ids from the occupied ranges, allocated to
    /// ranges proportionally to their width, sorted ascending.
    ///
    /// # Panics
    /// Panics if `count` exceeds the total span.
    pub fn sample_ids<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        let span = self.span();
        assert!(
            count as u64 <= span,
            "cannot place {count} ids in a span of {span}"
        );
        let mut out = Vec::with_capacity(count);
        let mut remaining = count as u64;
        let mut span_left = span;
        for r in &self.ranges {
            if remaining == 0 {
                break;
            }
            let width = r.end - r.start;
            // Proportional allocation with exact tail accounting.
            let here = if span_left == width {
                remaining
            } else {
                let ideal = (remaining as f64 * width as f64 / span_left as f64).round() as u64;
                ideal.min(width).min(remaining)
            };
            if here > 0 {
                out.extend(crate::sampling::sample_distinct(
                    rng,
                    r.start,
                    r.end,
                    here as usize,
                ));
            }
            remaining -= here;
            span_left -= width;
        }
        // Rounding may leave a small deficit; fill from ranges with room.
        if remaining > 0 {
            'outer: for r in &self.ranges {
                while remaining > 0 {
                    let x = rng.gen_range(r.start..r.end);
                    if out.binary_search(&x).is_err() {
                        let pos = out.partition_point(|&v| v < x);
                        out.insert(pos, x);
                        remaining -= 1;
                    } else if (r.end - r.start) as usize
                        <= out.iter().filter(|v| r.contains(v)).count()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }
        out.sort_unstable();
        out
    }
}

fn leaves_to_ranges(leaf_ids: &[u64], namespace: u64, leaves: u64) -> Vec<Range<u64>> {
    let width = namespace.div_ceil(leaves);
    let mut ranges: Vec<Range<u64>> = Vec::new();
    for &leaf in leaf_ids {
        let start = leaf * width;
        let end = ((leaf + 1) * width).min(namespace);
        if start >= end {
            continue;
        }
        match ranges.last_mut() {
            Some(last) if last.end == start => last.end = end,
            _ => ranges.push(start..end),
        }
    }
    ranges
}

/// Occupies `fraction` of the namespace by choosing leaves uniformly at
/// random (§8.1 "Uniform Namespace").
pub fn uniform_occupancy<R: Rng + ?Sized>(
    rng: &mut R,
    namespace: u64,
    leaves: u64,
    fraction: f64,
) -> OccupiedRanges {
    let chosen = leaf_count(leaves, fraction);
    let leaf_ids = uniform_set(rng, leaves, chosen);
    OccupiedRanges::from_ranges(leaves_to_ranges(&leaf_ids, namespace, leaves), namespace)
}

/// Occupies `fraction` of the namespace by choosing leaves with the
/// clustered pdf-splitting process (§8.1 "Clustered Namespace").
pub fn clustered_occupancy<R: Rng + ?Sized>(
    rng: &mut R,
    namespace: u64,
    leaves: u64,
    fraction: f64,
) -> OccupiedRanges {
    let chosen = leaf_count(leaves, fraction);
    let leaf_ids = clustered_set(rng, leaves, chosen, crate::querysets::PAPER_CLUSTERING_PCT);
    OccupiedRanges::from_ranges(leaves_to_ranges(&leaf_ids, namespace, leaves), namespace)
}

fn leaf_count(leaves: u64, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction) && fraction > 0.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    ((leaves as f64 * fraction).ceil() as usize).clamp(1, leaves as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_occupancy_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let occ = uniform_occupancy(&mut rng, 1 << 20, 256, 0.2);
        let frac = occ.fraction();
        assert!((frac - 0.2).abs() < 0.01, "fraction {frac}");
        // Ranges sorted & disjoint by construction (from_ranges asserts).
        assert!(!occ.ranges().is_empty());
    }

    #[test]
    fn clustered_occupancy_merges_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let uni = uniform_occupancy(&mut rng, 1 << 20, 256, 0.5);
        let clu = clustered_occupancy(&mut rng, 1 << 20, 256, 0.5);
        // Clustered leaf choice yields fewer, wider ranges.
        assert!(
            clu.ranges().len() < uni.ranges().len(),
            "clustered {} ranges vs uniform {}",
            clu.ranges().len(),
            uni.ranges().len()
        );
        assert_eq!(clu.span(), uni.span());
    }

    #[test]
    fn contains_binary_search() {
        let occ = OccupiedRanges::from_ranges(vec![10..20, 40..50], 100);
        assert!(!occ.contains(9));
        assert!(occ.contains(10));
        assert!(occ.contains(19));
        assert!(!occ.contains(20));
        assert!(occ.contains(45));
        assert!(!occ.contains(99));
        assert_eq!(occ.span(), 20);
    }

    #[test]
    fn sample_ids_stays_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        let occ = OccupiedRanges::from_ranges(vec![100..200, 300..1000], 10_000);
        let ids = occ.sample_ids(&mut rng, 400);
        assert_eq!(ids.len(), 400);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&x| occ.contains(x)));
    }

    #[test]
    fn sample_ids_full_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let occ = OccupiedRanges::from_ranges(vec![0..5, 10..15], 20);
        let ids = occ.sample_ids(&mut rng, 10);
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 10, 11, 12, 13, 14]);
    }

    #[test]
    fn full_fraction_covers_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let occ = uniform_occupancy(&mut rng, 1000, 16, 1.0);
        assert_eq!(occ.span(), 1000);
        assert_eq!(occ.ranges().len(), 1, "all leaves merge into one range");
    }

    #[test]
    fn namespace_not_divisible_by_leaves() {
        let mut rng = StdRng::seed_from_u64(6);
        let occ = uniform_occupancy(&mut rng, 1000, 7, 1.0);
        assert_eq!(occ.span(), 1000);
    }

    #[test]
    #[should_panic(expected = "sorted & disjoint")]
    fn overlapping_ranges_panic() {
        let _ = OccupiedRanges::from_ranges(vec![0..10, 5..15], 100);
    }
}
