//! Zipf-distributed sampling over ranks `1..=n` via rejection-inversion
//! (Hörmann & Derflinger), O(1) per draw independent of `n`.
//!
//! Backs the synthetic social workload: hashtag popularity and user
//! activity in real microblog streams are famously heavy-tailed, and the
//! paper's §8 dataset (per-hashtag audience sets from a Twitter crawl)
//! inherits both. `P(rank = k) ∝ k^{−s}`.

use rand::Rng;

/// A Zipf sampler over `1..=n` with exponent `s > 0`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler for ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        let h_integral_x1 = h_integral(1.5, s) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf {
            n,
            s,
            h_integral_x1,
            h_integral_n,
            threshold,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_integral_n + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }
}

/// `H(x) = (x^{1−s} − 1)/(1−s)`, or `ln x` at `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^{−s}`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard from the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `ln(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(e^x − 1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, s: f64, trials: usize, seed: u64) -> Vec<f64> {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            let k = zipf.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect()
    }

    #[test]
    fn matches_exact_pmf_small_n() {
        let n = 5u64;
        let s = 1.0;
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let freq = frequencies(n, s, 200_000, 1);
        for k in 1..=n {
            let expected = (k as f64).powf(-s) / z;
            let got = freq[(k - 1) as usize];
            assert!(
                (got - expected).abs() < 0.005,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn non_unit_exponent() {
        let n = 10u64;
        let s = 2.0;
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let freq = frequencies(n, s, 200_000, 2);
        for k in [1u64, 2, 3, 10] {
            let expected = (k as f64).powf(-s) / z;
            let got = freq[(k - 1) as usize];
            assert!(
                (got - expected).abs() < 0.01,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn fractional_exponent_large_n() {
        // Only sanity: samples in range, rank 1 most common.
        let zipf = Zipf::new(1_000_000, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut first = 0usize;
        for _ in 0..50_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
            if k == 1 {
                first += 1;
            }
        }
        assert!(first > 100, "rank 1 drawn only {first} times");
    }

    #[test]
    fn single_rank_always_one() {
        let zipf = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
