//! Synthetic social-stream workload — the substitute for the paper's
//! proprietary 34-day Twitter crawl (§8: 144M tweets, 7.2M user ids spread
//! over a ~2.2·10⁹ namespace, 24 000 hashtags with ≥1000 occurrences).
//!
//! What §8's experiments actually consume from the crawl is:
//!
//! 1. a set of *user ids* occupying a small fraction of a huge namespace
//!    (uniformly or clustered), and
//! 2. per-hashtag *audience sets* (users who tweeted the tag), whose sizes
//!    are heavy-tailed.
//!
//! Both are reproduced here with seeded generators: user activity and
//! hashtag popularity follow Zipf laws (the stylised fact for microblog
//! streams), and audiences are drawn by activity-weighted selection
//! (preferential attachment), giving heavy-tailed audience sizes with
//! overlapping heavy users — the same shape the tree and filters see with
//! the real crawl. See DESIGN.md ("Substitutions").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::occupancy::OccupiedRanges;
use crate::sampling::AliasTable;

/// Configuration of the synthetic stream.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Namespace the user ids live in (paper: ~2.2e9).
    pub namespace: u64,
    /// Number of distinct users (paper: 7.2e6).
    pub users: usize,
    /// Number of hashtags / query sets (paper: 24 000).
    pub hashtags: usize,
    /// Zipf exponent of user activity (tweet volume per user).
    pub activity_exponent: f64,
    /// Zipf exponent of hashtag popularity (audience size across tags).
    pub popularity_exponent: f64,
    /// Audience size of the most popular hashtag.
    pub max_audience: usize,
    /// Minimum audience size (paper keeps tags with ≥1000 occurrences;
    /// audiences smaller than that are discarded upstream).
    pub min_audience: usize,
    /// Seed for all derived randomness.
    pub seed: u64,
}

impl SocialConfig {
    /// Paper-scale configuration (§8.1).
    pub fn paper() -> Self {
        SocialConfig {
            namespace: 2_200_000_000,
            users: 7_200_000,
            hashtags: 24_000,
            activity_exponent: 1.1,
            popularity_exponent: 1.0,
            max_audience: 50_000,
            min_audience: 1_000,
            seed: 0x50C1A1,
        }
    }

    /// Downscaled configuration (1/100 on every axis) for tests and the
    /// default benchmark scale.
    pub fn small() -> Self {
        SocialConfig {
            namespace: 22_000_000,
            users: 72_000,
            hashtags: 240,
            activity_exponent: 1.1,
            popularity_exponent: 1.0,
            max_audience: 5_000,
            min_audience: 100,
            seed: 0x50C1A1,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SocialConfig {
            namespace: 100_000,
            users: 2_000,
            hashtags: 20,
            activity_exponent: 1.1,
            popularity_exponent: 1.0,
            max_audience: 500,
            min_audience: 20,
            seed: 0x50C1A1,
        }
    }
}

/// A materialised synthetic stream: the occupied user-id set plus a
/// deterministic per-hashtag audience generator.
pub struct SocialStream {
    cfg: SocialConfig,
    /// Sorted distinct user ids within the occupied ranges.
    users: Vec<u64>,
    /// Activity-weighted sampler over user *indices*.
    activity: AliasTable,
}

impl SocialStream {
    /// Generates the user population inside `occupancy`'s ranges.
    ///
    /// # Panics
    /// Panics if the occupied span cannot hold `cfg.users` ids.
    pub fn generate(cfg: SocialConfig, occupancy: &OccupiedRanges) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let users = occupancy.sample_ids(&mut rng, cfg.users);
        // User activity ~ Zipf over a random rank permutation (so heavy
        // users are spread across the id space, not concentrated at low
        // ids). Weight of the user at sorted position i is
        // rank_i^{-activity_exponent}.
        let mut ranks: Vec<u32> = (1..=cfg.users as u32).collect();
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }
        let weights: Vec<f64> = ranks
            .iter()
            .map(|&r| (r as f64).powf(-cfg.activity_exponent))
            .collect();
        let activity = AliasTable::new(&weights);
        SocialStream {
            cfg,
            users,
            activity,
        }
    }

    /// The configuration this stream was generated from.
    pub fn config(&self) -> &SocialConfig {
        &self.cfg
    }

    /// All distinct user ids, sorted — the occupied namespace `M'`.
    pub fn users(&self) -> &[u64] {
        &self.users
    }

    /// Target audience size for hashtag `tag` (popularity-ranked: tag 0 is
    /// the most popular).
    pub fn audience_size(&self, tag: usize) -> usize {
        assert!(tag < self.cfg.hashtags, "hashtag {tag} out of range");
        let z = (tag + 1) as f64;
        let size = self.cfg.max_audience as f64 * z.powf(-self.cfg.popularity_exponent);
        (size as usize).clamp(self.cfg.min_audience, self.cfg.max_audience)
    }

    /// The audience (sorted distinct user ids) of hashtag `tag`,
    /// deterministic given the stream seed.
    ///
    /// Members are drawn by activity-weighted selection with replacement
    /// and deduplicated, so very heavy users appear in many audiences —
    /// the preferential-attachment shape of real hashtag adoption.
    pub fn audience(&self, tag: usize) -> Vec<u64> {
        let target = self.audience_size(tag);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ (0x9E3779B9 + tag as u64));
        let mut members: Vec<u64> = Vec::with_capacity(target);
        // Cap redraws: dedup loss is bounded, 4x oversampling suffices.
        let mut draws = 0usize;
        let max_draws = target * 4 + 64;
        while members.len() < target && draws < max_draws {
            let idx = self.activity.sample(&mut rng);
            members.push(self.users[idx]);
            draws += 1;
            if members.len() == target {
                members.sort_unstable();
                members.dedup();
            }
        }
        members.sort_unstable();
        members.dedup();
        members
    }

    /// Restricts an audience to ids inside `occupancy` — the §8.1 rule
    /// ("we simply ignore ids which do not belong in the namespace
    /// currently under consideration").
    pub fn restrict(audience: &[u64], occupancy: &OccupiedRanges) -> Vec<u64> {
        audience
            .iter()
            .copied()
            .filter(|&id| occupancy.contains(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::uniform_occupancy;

    fn tiny_stream() -> SocialStream {
        let cfg = SocialConfig::tiny();
        let mut rng = StdRng::seed_from_u64(9);
        let occ = uniform_occupancy(&mut rng, cfg.namespace, 64, 0.5);
        SocialStream::generate(cfg, &occ)
    }

    #[test]
    fn users_are_distinct_sorted_and_inside() {
        let cfg = SocialConfig::tiny();
        let mut rng = StdRng::seed_from_u64(9);
        let occ = uniform_occupancy(&mut rng, cfg.namespace, 64, 0.5);
        let stream = SocialStream::generate(cfg.clone(), &occ);
        assert_eq!(stream.users().len(), cfg.users);
        assert!(stream.users().windows(2).all(|w| w[0] < w[1]));
        assert!(stream.users().iter().all(|&u| occ.contains(u)));
    }

    #[test]
    fn audience_sizes_follow_popularity() {
        let stream = tiny_stream();
        assert_eq!(stream.audience_size(0), stream.config().max_audience);
        let mut last = usize::MAX;
        for tag in 0..stream.config().hashtags {
            let s = stream.audience_size(tag);
            assert!(s <= last, "sizes must be non-increasing");
            assert!(s >= stream.config().min_audience);
            last = s;
        }
    }

    #[test]
    fn audiences_are_valid_user_subsets() {
        let stream = tiny_stream();
        for tag in [0usize, 5, 19] {
            let a = stream.audience(tag);
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0] < w[1]));
            for id in &a {
                assert!(
                    stream.users().binary_search(id).is_ok(),
                    "audience member {id} is not a user"
                );
            }
        }
    }

    #[test]
    fn audiences_are_deterministic() {
        let a = tiny_stream().audience(3);
        let b = tiny_stream().audience(3);
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_users_overlap_audiences() {
        let stream = tiny_stream();
        let a0 = stream.audience(0);
        let a1 = stream.audience(1);
        let overlap = a0.iter().filter(|x| a1.binary_search(x).is_ok()).count();
        // Preferential attachment: popular tags share heavy users far more
        // than uniform audiences of these sizes would (~|a0||a1|/U).
        let uniform_expect = a0.len() as f64 * a1.len() as f64 / stream.users().len() as f64;
        assert!(
            overlap as f64 > 2.0 * uniform_expect,
            "overlap {overlap} vs uniform expectation {uniform_expect}"
        );
    }

    #[test]
    fn restrict_filters_to_occupancy() {
        let stream = tiny_stream();
        let audience = stream.audience(0);
        let mut rng = StdRng::seed_from_u64(11);
        let narrow = uniform_occupancy(&mut rng, stream.config().namespace, 64, 0.1);
        let restricted = SocialStream::restrict(&audience, &narrow);
        assert!(restricted.len() < audience.len());
        assert!(restricted.iter().all(|&id| narrow.contains(id)));
    }
}
