//! Fenwick (binary indexed) tree over `f64` weights with prefix-sum
//! inversion, the engine behind the paper's clustered query-set generator
//! (§7.1): the generator maintains an evolving pdf over the namespace and
//! must (a) draw an index proportionally to its weight and (b) move
//! probability mass between indices — both `O(log M)` here.

/// A 1-based Fenwick tree of non-negative `f64` weights.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<f64>,
    len: usize,
}

impl Fenwick {
    /// All-zero tree over `len` positions (indices `0..len`).
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "Fenwick tree must be non-empty");
        Fenwick {
            tree: vec![0.0; len + 1],
            len,
        }
    }

    /// Builds from explicit weights in `O(n)`.
    pub fn from_weights(weights: &[f64]) -> Self {
        let len = weights.len();
        assert!(len > 0, "Fenwick tree must be non-empty");
        let mut tree = vec![0.0; len + 1];
        tree[1..].copy_from_slice(weights);
        // In-place O(n) construction: push partial sums to parents.
        for i in 1..=len {
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                tree[parent] += tree[i];
            }
        }
        Fenwick { tree, len }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has zero positions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to position `i` (0-based).
    pub fn add(&mut self, i: usize, delta: f64) {
        debug_assert!(i < self.len);
        let mut idx = i + 1;
        while idx <= self.len {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Sum of weights at positions `0..=i`.
    pub fn prefix_sum(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        let mut idx = i + 1;
        let mut acc = 0.0;
        while idx > 0 {
            acc += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        acc
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.len - 1)
    }

    /// Weight at position `i`.
    pub fn get(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.prefix_sum(i - 1) };
        self.prefix_sum(i) - lo
    }

    /// Smallest index `i` with `prefix_sum(i) > target` — i.e. the position
    /// selected by inverse-transform sampling when `target` is drawn
    /// uniformly from `[0, total)`. Returns `None` when `target >=` total
    /// weight (possible through floating-point drift).
    pub fn find_by_prefix(&self, target: f64) -> Option<usize> {
        if target < 0.0 {
            return Some(0);
        }
        let mut remaining = target;
        let mut pos = 0usize; // 1-based cursor: largest power-of-two descend
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // pos is the count of positions whose cumulative weight is <= target.
        if pos >= self.len {
            None
        } else {
            Some(pos)
        }
    }

    /// Extracts all point weights in `O(n)` (used for renormalisation).
    pub fn to_weights(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.get(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_weights_matches_adds() {
        let w = [1.0, 2.0, 0.0, 4.0, 0.5];
        let built = Fenwick::from_weights(&w);
        let mut added = Fenwick::new(w.len());
        for (i, &x) in w.iter().enumerate() {
            added.add(i, x);
        }
        for i in 0..w.len() {
            assert!((built.prefix_sum(i) - added.prefix_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_sums_naive_equivalence() {
        let w: Vec<f64> = (0..100).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let f = Fenwick::from_weights(&w);
        let mut acc = 0.0;
        for (i, &wi) in w.iter().enumerate() {
            acc += wi;
            assert!((f.prefix_sum(i) - acc).abs() < 1e-9, "prefix {i}");
            assert!((f.get(i) - wi).abs() < 1e-9, "get {i}");
        }
        assert!((f.total() - acc).abs() < 1e-9);
    }

    #[test]
    fn add_updates() {
        let mut f = Fenwick::new(10);
        f.add(3, 5.0);
        f.add(7, 2.0);
        assert_eq!(f.prefix_sum(2), 0.0);
        assert_eq!(f.prefix_sum(3), 5.0);
        assert_eq!(f.prefix_sum(9), 7.0);
        f.add(3, -5.0);
        assert_eq!(f.prefix_sum(9), 2.0);
    }

    #[test]
    fn find_by_prefix_selects_correct_bins() {
        let f = Fenwick::from_weights(&[1.0, 0.0, 2.0, 1.0]);
        // Cumulative: [1, 1, 3, 4].
        assert_eq!(f.find_by_prefix(0.0), Some(0));
        assert_eq!(f.find_by_prefix(0.999), Some(0));
        assert_eq!(f.find_by_prefix(1.0), Some(2)); // zero-weight bin skipped
        assert_eq!(f.find_by_prefix(2.5), Some(2));
        assert_eq!(f.find_by_prefix(3.0), Some(3));
        assert_eq!(f.find_by_prefix(3.999), Some(3));
        assert_eq!(f.find_by_prefix(4.0), None);
    }

    #[test]
    fn find_by_prefix_non_power_of_two_len() {
        let w = [0.5f64; 7];
        let f = Fenwick::from_weights(&w);
        for i in 0..7 {
            let target = 0.5 * i as f64 + 0.25;
            assert_eq!(f.find_by_prefix(target), Some(i));
        }
    }

    #[test]
    fn sampling_distribution_is_proportional() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let f = Fenwick::from_weights(&[1.0, 3.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 3];
        let trials = 30_000;
        for _ in 0..trials {
            let t = rng.gen::<f64>() * f.total();
            counts[f.find_by_prefix(t).unwrap()] += 1;
        }
        let fr: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        assert!((fr[0] - 0.1).abs() < 0.01);
        assert!((fr[1] - 0.3).abs() < 0.015);
        assert!((fr[2] - 0.6).abs() < 0.015);
    }

    #[test]
    fn to_weights_roundtrip() {
        let w: Vec<f64> = (0..33).map(|i| (i % 5) as f64 * 0.5).collect();
        let f = Fenwick::from_weights(&w);
        let back = f.to_weights();
        for (a, b) in w.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tree_panics() {
        let _ = Fenwick::new(0);
    }
}
