#![forbid(unsafe_code)]
//! # bst-workloads — dataset and query-set generators
//!
//! Workload substrate for the evaluation (§7–8):
//!
//! * [`querysets`] — uniform and clustered query sets (the §7.1
//!   pdf-splitting process, default aggressiveness p = 10);
//! * [`occupancy`] — uniform / clustered namespace-fraction occupancy
//!   (§8.1, 256 hypothetical leaves);
//! * [`social`] — the synthetic Twitter-like stream substituting the
//!   paper's proprietary crawl;
//! * [`zipf`] — rejection-inversion Zipf sampling;
//! * [`fenwick`], [`skipset`], [`sampling`] — the data-structure substrate
//!   (prefix-sum trees, nearest-free-neighbour skips, distinct sampling,
//!   alias tables).
//!
//! ## Example
//!
//! Deterministic query-set generation, the input side of every
//! experiment (§7.1):
//!
//! ```
//! use bst_workloads::querysets::{clustered_set, uniform_set};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let uniform = uniform_set(&mut rng, 10_000, 50);
//! assert_eq!(uniform.len(), 50);
//! assert!(uniform.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
//!
//! // The pdf-splitting clustered process at the paper's p = 10%.
//! let clustered = clustered_set(&mut rng, 10_000, 50, 10.0);
//! assert!(clustered.iter().all(|&x| x < 10_000));
//! ```

#![warn(missing_docs)]

pub mod fenwick;
pub mod occupancy;
pub mod querysets;
pub mod sampling;
pub mod skipset;
pub mod social;
pub mod zipf;

pub use occupancy::OccupiedRanges;
pub use querysets::{clustered_set, uniform_set};
pub use social::{SocialConfig, SocialStream};
pub use zipf::Zipf;
