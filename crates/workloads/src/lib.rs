//! # bst-workloads — dataset and query-set generators
//!
//! Workload substrate for the evaluation (§7–8):
//!
//! * [`querysets`] — uniform and clustered query sets (the §7.1
//!   pdf-splitting process, default aggressiveness p = 10);
//! * [`occupancy`] — uniform / clustered namespace-fraction occupancy
//!   (§8.1, 256 hypothetical leaves);
//! * [`social`] — the synthetic Twitter-like stream substituting the
//!   paper's proprietary crawl;
//! * [`zipf`] — rejection-inversion Zipf sampling;
//! * [`fenwick`], [`skipset`], [`sampling`] — the data-structure substrate
//!   (prefix-sum trees, nearest-free-neighbour skips, distinct sampling,
//!   alias tables).

#![warn(missing_docs)]

pub mod fenwick;
pub mod occupancy;
pub mod querysets;
pub mod sampling;
pub mod skipset;
pub mod social;
pub mod zipf;

pub use occupancy::OccupiedRanges;
pub use querysets::{clustered_set, uniform_set};
pub use social::{SocialConfig, SocialStream};
pub use zipf::Zipf;
