//! Basic sampling utilities: distinct-value sampling over huge integer
//! ranges and Vose alias tables for O(1) weighted draws.

use std::collections::HashSet;

use rand::Rng;

/// Draws `n` distinct values uniformly from `[lo, hi)`, returned sorted.
///
/// Rejection sampling when `n` is small relative to the range; partial
/// Fisher–Yates over a materialised range otherwise.
///
/// # Panics
/// Panics if the range is empty or holds fewer than `n` values.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let range = hi - lo;
    assert!(
        (n as u64) <= range,
        "cannot draw {n} distinct values from a range of {range}"
    );
    let mut out: Vec<u64>;
    if (n as u64).saturating_mul(3) >= range {
        // Dense: materialise and partially shuffle.
        let mut all: Vec<u64> = (lo..hi).collect();
        for i in 0..n {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(n);
        out = all;
    } else {
        let mut seen = HashSet::with_capacity(n * 2);
        out = Vec::with_capacity(n);
        while out.len() < n {
            let x = rng.gen_range(lo..hi);
            if seen.insert(x) {
                out.push(x);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Vose alias table: O(n) build, O(1) weighted sampling with replacement.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds from non-negative weights (not necessarily normalised).
    ///
    /// # Panics
    /// Panics on empty input, negative weights, a zero total, or more than
    /// `u32::MAX` entries.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "too many entries");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small = Vec::new();
        let mut large = Vec::new();
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative weight");
                w * scale
            })
            .collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draws an index proportionally to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_small_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_distinct(&mut rng, 100, 1_000_000, 500);
        assert_eq!(s.len(), 500);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(s.iter().all(|&x| (100..1_000_000).contains(&x)));
    }

    #[test]
    fn distinct_dense_path() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_distinct(&mut rng, 0, 100, 90);
        assert_eq!(s.len(), 90);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distinct_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_distinct(&mut rng, 5, 15, 10);
        assert_eq!(s, (5..15).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn distinct_overdraw_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_distinct(&mut rng, 0, 5, 6);
    }

    #[test]
    fn distinct_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut low_half = 0usize;
        for _ in 0..200 {
            let s = sample_distinct(&mut rng, 0, 10_000, 50);
            low_half += s.iter().filter(|&&x| x < 5_000).count();
        }
        let frac = low_half as f64 / (200.0 * 50.0);
        assert!((frac - 0.5).abs() < 0.03, "low-half fraction {frac}");
    }

    #[test]
    fn alias_matches_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let table = AliasTable::new(&[1.0, 0.0, 3.0, 6.0]);
        let mut counts = [0u64; 4];
        let trials = 100_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        let f0 = counts[0] as f64 / trials as f64;
        let f2 = counts[2] as f64 / trials as f64;
        let f3 = counts[3] as f64 / trials as f64;
        assert!((f0 - 0.1).abs() < 0.01);
        assert!((f2 - 0.3).abs() < 0.01);
        assert!((f3 - 0.6).abs() < 0.01);
    }

    #[test]
    fn alias_single_entry() {
        let mut rng = StdRng::seed_from_u64(7);
        let table = AliasTable::new(&[42.0]);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn alias_zero_total_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
