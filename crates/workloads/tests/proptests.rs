//! Property-based tests for the workload generators.

use bst_workloads::fenwick::Fenwick;
use bst_workloads::occupancy::OccupiedRanges;
use bst_workloads::querysets::{adjacency_fraction, clustered_set, uniform_set};
use bst_workloads::sampling::{sample_distinct, AliasTable};
use bst_workloads::skipset::SkipSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fenwick_prefix_sums_match_naive(
        weights in prop::collection::vec(0.0f64..10.0, 1..200),
    ) {
        let f = Fenwick::from_weights(&weights);
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            prop_assert!((f.prefix_sum(i) - acc).abs() < 1e-9 * acc.max(1.0));
        }
    }

    #[test]
    fn fenwick_find_by_prefix_consistent(
        weights in prop::collection::vec(0.0f64..10.0, 1..100),
        frac in 0.0f64..1.0,
    ) {
        let f = Fenwick::from_weights(&weights);
        let total = f.total();
        prop_assume!(total > 0.0);
        let target = frac * total * 0.999_999;
        if let Some(idx) = f.find_by_prefix(target) {
            // prefix(idx) > target and prefix before idx <= target.
            prop_assert!(f.prefix_sum(idx) > target - 1e-9);
            if idx > 0 {
                prop_assert!(f.prefix_sum(idx - 1) <= target + 1e-9);
            }
            prop_assert!(f.get(idx) > 0.0, "selected a zero-weight bin");
        }
    }

    #[test]
    fn skipset_matches_naive(
        len in 2usize..150,
        occupations in prop::collection::vec(0usize..150, 0..100),
        queries in prop::collection::vec(0usize..150, 1..30),
    ) {
        let mut s = SkipSet::new(len);
        let mut occ = vec![false; len];
        for &o in &occupations {
            let o = o % len;
            s.occupy(o);
            occ[o] = true;
        }
        for &q in &queries {
            let q = q % len;
            let naive_next = (q..len).find(|&j| !occ[j]);
            let naive_prev = (0..=q).rev().find(|&j| !occ[j]);
            prop_assert_eq!(s.next_free(q), naive_next);
            prop_assert_eq!(s.prev_free(q), naive_prev);
        }
    }

    #[test]
    fn sample_distinct_properties(
        lo in 0u64..1000,
        width in 1u64..5000,
        n_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let hi = lo + width;
        let n = ((width as f64 * n_frac) as usize).min(width as usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_distinct(&mut rng, lo, hi, n);
        prop_assert_eq!(s.len(), n);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
        prop_assert!(s.iter().all(|&x| x >= lo && x < hi));
    }

    #[test]
    fn alias_table_never_selects_zero_weight(
        weights in prop::collection::vec(0.0f64..5.0, 1..50),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "drew zero-weight index {}", i);
        }
    }

    #[test]
    fn query_sets_are_valid(
        namespace in 100u64..20_000,
        n_frac in 0.01f64..0.5,
        seed in any::<u64>(),
    ) {
        let n = ((namespace as f64 * n_frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        for set in [
            uniform_set(&mut rng, namespace, n),
            clustered_set(&mut rng, namespace, n, 10.0),
        ] {
            prop_assert_eq!(set.len(), n);
            prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(set.iter().all(|&x| x < namespace));
        }
    }

    #[test]
    fn clustered_beats_uniform_adjacency(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let namespace = 50_000u64;
        let n = 800usize;
        let uni = uniform_set(&mut rng, namespace, n);
        let clu = clustered_set(&mut rng, namespace, n, 10.0);
        prop_assert!(
            adjacency_fraction(&clu) > adjacency_fraction(&uni),
            "clustered {} <= uniform {}",
            adjacency_fraction(&clu),
            adjacency_fraction(&uni)
        );
    }

    #[test]
    fn occupancy_sample_ids_inside_ranges(
        starts in prop::collection::btree_set(0u64..10_000, 1..10),
        count in 1usize..200,
        seed in any::<u64>(),
    ) {
        // Build disjoint ranges of width 400 from sorted, spaced starts.
        let mut ranges = Vec::new();
        let mut last_end = 0u64;
        for &s in &starts {
            let start = s.max(last_end);
            let end = start + 400;
            ranges.push(start..end);
            last_end = end + 1;
        }
        let namespace = last_end + 1000;
        let occ = OccupiedRanges::from_ranges(ranges, namespace);
        let count = count.min(occ.span() as usize);
        prop_assume!(count > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = occ.sample_ids(&mut rng, count);
        prop_assert_eq!(ids.len(), count);
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        for id in ids {
            prop_assert!(occ.contains(id), "id {} outside occupancy", id);
        }
    }
}
