#![forbid(unsafe_code)]
//! # bst-bloom — Bloom filter substrate
//!
//! The Bloom filter layer of the reproduction of *Sampling and
//! Reconstruction Using Bloom Filters* (Sengupta, Bagchi, Bedathur,
//! Ramanath; ICDE 2017). Everything the BloomSampleTree needs from filters
//! lives here:
//!
//! * [`bitvec::BitVec`] — word-packed bit storage with intersection
//!   popcounts and rank/select;
//! * [`hash`] — the three hash families the paper evaluates (Simple affine,
//!   Murmur3, MD5), including weak inversion for the affine family;
//! * [`filter::BloomFilter`] — the filter with union/intersection (§3.1);
//! * [`estimate`] — cardinality / intersection-size / FSO estimators;
//! * [`params`] — accuracy-driven sizing reproducing Tables 2–4;
//! * [`counting::CountingBloomFilter`] — deletion support for dynamic
//!   namespaces;
//! * [`codec`] — compact binary serialization.
//!
//! ## Example
//!
//! ```
//! use bst_bloom::filter::BloomFilter;
//! use bst_bloom::hash::HashKind;
//!
//! let mut filter = BloomFilter::with_params(HashKind::Murmur3, 3, 4096, 100_000, 42);
//! filter.insert(17);
//! assert!(filter.contains(17));
//! assert!(!filter.contains(18)); // whp
//! ```

#![warn(missing_docs)]

pub mod bitvec;
pub mod codec;
pub mod counting;
pub mod estimate;
pub mod filter;
pub mod hash;
pub mod params;

pub use bitvec::BitVec;
pub use counting::CountingBloomFilter;
pub use filter::BloomFilter;
pub use hash::{BlockProbe, BlockedFamily, BloomHasher, HashKind, MIN_BLOCKED_BITS};
pub use params::TreePlan;
