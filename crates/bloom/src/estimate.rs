//! Probabilistic estimators for Bloom filters.
//!
//! Implements every formula the paper relies on:
//!
//! * false-positive probability `(1 − e^{−kn/m})^k` (§3.1);
//! * cardinality from the zero-bit count, `n̂ = ln(ẑ/m)/(k·ln(1−1/m))`
//!   (proof of Prop. 5.2);
//! * the Papapetrou et al. intersection-size estimator `Ŝ⁻¹(t₁,t₂,t∧)`
//!   (§5.3, citation \[20\]);
//! * the false-set-overlap probability, Eq. (1);
//! * the sampling accuracy model `acc = n/(n + (M−n)·FP)` (§5.4).

/// False-positive probability of an `m`-bit, `k`-hash filter holding `n`
/// elements: `(1 − e^{−kn/m})^k`.
pub fn false_positive_rate(m: usize, k: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let exponent = -((k * n) as f64) / m as f64;
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Estimated cardinality from the number of zero bits `ẑ`:
/// `n̂ = ln(ẑ/m) / (k · ln(1 − 1/m))`.
///
/// A fully saturated filter (`ẑ = 0`) returns the theoretical ceiling
/// `m·ln m / k`-ish via `ẑ = 0.5` regularisation rather than infinity.
pub fn cardinality_from_zeros(m: usize, k: usize, zeros: usize) -> f64 {
    debug_assert!(zeros <= m);
    if zeros == m {
        return 0.0;
    }
    let z = if zeros == 0 { 0.5 } else { zeros as f64 };
    let m_f = m as f64;
    (z / m_f).ln() / (k as f64 * (-1.0 / m_f).ln_1p())
}

/// Estimated cardinality from the number of set bits `t`.
pub fn cardinality_from_ones(m: usize, k: usize, ones: usize) -> f64 {
    cardinality_from_zeros(m, k, m - ones)
}

/// Intersection-size estimate `Ŝ⁻¹(t₁, t₂, t∧)` (Papapetrou et al. \[20\]):
///
/// ```text
///            ln(m − (t∧·m − t₁·t₂)/(m − t₁ − t₂ + t∧)) − ln(m)
/// Ŝ⁻¹ =   ─────────────────────────────────────────────────────
///                         k · ln(1 − 1/m)
/// ```
///
/// `t₁`, `t₂` are the set-bit counts of the two filters and `t∧` the
/// popcount of their AND. Degenerate regimes fall back conservatively:
/// an all-AND of zero estimates 0; a saturated denominator falls back to the
/// cardinality estimate of the intersection bitmap itself.
pub fn intersection_estimate(m: usize, k: usize, t1: usize, t2: usize, t_and: usize) -> f64 {
    debug_assert!(t_and <= t1.min(t2));
    if t_and == 0 {
        return 0.0;
    }
    let m_f = m as f64;
    let denom = m_f - t1 as f64 - t2 as f64 + t_and as f64;
    if denom <= 0.0 {
        // Both filters nearly saturated; the formula's independence model
        // breaks down. Estimate from the AND bitmap alone (an upper bound).
        return cardinality_from_ones(m, k, t_and);
    }
    let inner = (t_and as f64 * m_f - t1 as f64 * t2 as f64) / denom;
    if inner <= 0.0 {
        // Overlap indistinguishable from hash noise under independence.
        return 0.0;
    }
    if inner >= m_f {
        return cardinality_from_ones(m, k, t_and);
    }
    let numerator = ((m_f - inner) / m_f).ln();
    let estimate = numerator / (k as f64 * (-1.0 / m_f).ln_1p());
    estimate.max(0.0)
}

/// Probability of a *false set overlap* (Eq. 1): for disjoint `S₁`, `S₂` of
/// the given sizes, the probability that `B(S₁) & B(S₂)` is nonetheless
/// non-empty:
/// `P[FSO∩] = 1 − (1 − 1/m)^(k²·|S₁|·|S₂|)`.
pub fn fso_probability(m: usize, k: usize, n1: u64, n2: u64) -> f64 {
    let exponent = (k as f64) * (k as f64) * n1 as f64 * n2 as f64;
    1.0 - (exponent * (-1.0 / m as f64).ln_1p()).exp()
}

/// Sampling accuracy (§5.4): the probability that a positive drawn uniformly
/// from `S ∪ S(B)` is a true element:
/// `acc = n / (n + (M − n) · FP)`.
pub fn accuracy(m: usize, k: usize, n: usize, namespace: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let fp = false_positive_rate(m, k, n);
    let n_f = n as f64;
    n_f / (n_f + (namespace as f64 - n_f) * fp)
}

/// Optimal hash count for an `m`-bit filter holding `n` keys:
/// `k* = (m/n)·ln 2`, clamped to at least 1.
pub fn optimal_k(m: usize, n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let k = (m as f64 / n as f64) * std::f64::consts::LN_2;
    (k.round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpp_zero_elements() {
        assert_eq!(false_positive_rate(1000, 3, 0), 0.0);
    }

    #[test]
    fn fpp_monotone_in_n() {
        let mut last = 0.0;
        for n in [1usize, 10, 100, 1000, 10_000] {
            let fpp = false_positive_rate(10_000, 3, n);
            assert!(fpp > last, "fpp should grow with n");
            last = fpp;
        }
        assert!(last <= 1.0);
    }

    #[test]
    fn fpp_known_value() {
        // m = 4096, k = 3, n = 300: (1 - e^{-900/4096})^3.
        let expected = (1.0 - (-900.0f64 / 4096.0).exp()).powi(3);
        assert!((false_positive_rate(4096, 3, 300) - expected).abs() < 1e-12);
    }

    #[test]
    fn cardinality_inverts_expected_fill() {
        // After inserting n elements the expected zero count is
        // m(1-1/m)^{kn}; the estimator must invert that exactly.
        let (m, k, n) = (10_000usize, 3usize, 700usize);
        let p = (1.0 - 1.0 / m as f64).powi((k * n) as i32);
        let zeros = (m as f64 * p).round() as usize;
        let est = cardinality_from_zeros(m, k, zeros);
        assert!((est - n as f64).abs() < 2.0, "estimate {est} vs n {n}");
    }

    #[test]
    fn cardinality_edges() {
        assert_eq!(cardinality_from_zeros(100, 3, 100), 0.0);
        let saturated = cardinality_from_zeros(100, 3, 0);
        assert!(saturated.is_finite());
        assert!(saturated > cardinality_from_zeros(100, 3, 1));
    }

    #[test]
    fn intersection_estimate_zero_when_no_overlap() {
        assert_eq!(intersection_estimate(1000, 3, 100, 100, 0), 0.0);
    }

    #[test]
    fn intersection_estimate_independence_is_zero() {
        // When t_and ≈ t1*t2/m (chance overlap), the estimate should be ~0.
        let m = 10_000usize;
        let (t1, t2) = (1000usize, 2000usize);
        let chance = t1 * t2 / m; // 200
        let est = intersection_estimate(m, 3, t1, t2, chance);
        assert!(est < 1.0, "chance-level overlap estimated as {est}");
    }

    #[test]
    fn intersection_estimate_full_overlap_recovers_cardinality() {
        // A == B: t1 == t2 == t_and; estimate should be ~cardinality.
        let (m, k) = (10_000usize, 3usize);
        let n = 500usize;
        let p = (1.0 - 1.0 / m as f64).powi((k * n) as i32);
        let t = m - (m as f64 * p).round() as usize;
        let est = intersection_estimate(m, k, t, t, t);
        assert!((est - n as f64).abs() < 5.0, "estimate {est} vs {n}");
    }

    #[test]
    fn intersection_estimate_saturated_fallback() {
        // t1 + t2 - t_and >= m triggers the saturation path; result must be
        // finite and non-negative.
        let est = intersection_estimate(100, 3, 90, 90, 80);
        assert!(est.is_finite());
        assert!(est >= 0.0);
    }

    #[test]
    fn fso_probability_bounds_and_monotonicity() {
        let p_small = fso_probability(10_000, 3, 10, 10);
        let p_large = fso_probability(10_000, 3, 100, 100);
        assert!(p_small > 0.0 && p_small < p_large && p_large < 1.0);
        // Bigger filters make FSO less likely.
        assert!(fso_probability(100_000, 3, 100, 100) < p_large);
        // Saturation: huge sets make an FSO essentially certain.
        assert!((fso_probability(10_000, 3, 1000, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fso_probability_eq1_value() {
        // Direct evaluation of Eq. (1).
        let (m, k, n1, n2) = (1000usize, 2usize, 5u64, 7u64);
        let direct = 1.0 - (1.0 - 1.0 / m as f64).powf((k * k) as f64 * (n1 * n2) as f64);
        assert!((fso_probability(m, k, n1, n2) - direct).abs() < 1e-12);
    }

    #[test]
    fn accuracy_paper_sizing_roundtrip() {
        // Table 2 row: M=10^6, n=10^3, acc 0.9 uses m=60870. Plugging that m
        // back into the accuracy model must return ≈0.9.
        let acc = accuracy(60_870, 3, 1000, 1_000_000);
        assert!((acc - 0.9).abs() < 0.005, "accuracy {acc}");
    }

    #[test]
    fn accuracy_edge_cases() {
        assert_eq!(accuracy(1000, 3, 0, 1_000_000), 1.0);
        // Tiny filter: accuracy collapses toward n/M.
        let acc = accuracy(8, 1, 100, 1_000_000);
        assert!(acc < 0.01);
    }

    #[test]
    fn optimal_k_values() {
        assert_eq!(optimal_k(1000, 0), 1);
        assert_eq!(optimal_k(1000, 10_000), 1); // m << n clamps to 1
        let k = optimal_k(9585, 1000); // m/n ln2 ≈ 6.64
        assert_eq!(k, 7);
    }
}
