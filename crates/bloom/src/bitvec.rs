//! Fixed-length bit vector backed by `u64` words.
//!
//! This is the storage substrate for every Bloom filter in the project. The
//! operations the paper's algorithms lean on — bitwise AND/OR, popcounts of
//! intersections without materialising them, iteration and rank/select over
//! set bits — are provided at word granularity.
//!
//! Invariant: bits at positions `>= len` in the last word are always zero, so
//! whole-word popcounts and comparisons are exact.

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits.
#[derive(Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BitVec(len={}, ones={}, fill={:.4})",
            self.len,
            self.count_ones(),
            self.fill_ratio()
        )
    }
}

#[inline]
fn word_index(bit: usize) -> (usize, u32) {
    (bit / WORD_BITS, (bit % WORD_BITS) as u32)
}

/// Mask selecting the valid bits of the final word of a `len`-bit vector.
#[inline]
fn tail_mask(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    ///
    /// # Panics
    /// Panics if `len == 0`; a zero-length filter is meaningless and would
    /// make every modulo-`m` hash ill-defined.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "BitVec length must be positive");
        let n_words = len.div_ceil(WORD_BITS);
        BitVec {
            words: vec![0u64; n_words],
            len,
        }
    }

    /// Reconstructs a bit vector from raw words; trailing bits past `len`
    /// are masked off to restore the tail invariant.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(len > 0, "BitVec length must be positive");
        let n_words = len.div_ceil(WORD_BITS);
        assert_eq!(words.len(), n_words, "word count does not match length");
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        BitVec { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw word storage.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used by the word storage.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Reads word `i` of the backing storage. The word-level probe fast
    /// path for blocked filters: one load answers up to 64 bit tests.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        debug_assert!(i < self.words.len(), "word index {i} out of range");
        self.words[i]
    }

    /// ORs `mask` into word `i`. Callers must not set bits past `len`
    /// (the blocked probe geometry guarantees this by construction);
    /// the tail invariant is checked in debug builds.
    #[inline]
    pub fn or_word(&mut self, i: usize, mask: u64) {
        debug_assert!(i < self.words.len(), "word index {i} out of range");
        debug_assert!(
            i + 1 < self.words.len() || mask & !tail_mask(self.len) == 0,
            "mask would set bits past len {}",
            self.len
        );
        self.words[i] |= mask;
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = word_index(i);
        (self.words[w] >> b) & 1 == 1
    }

    /// Sets bit `i` to one.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = word_index(i);
        self.words[w] |= 1u64 << b;
    }

    /// Sets bit `i` to zero.
    #[inline]
    pub fn reset(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = word_index(i);
        self.words[w] &= !(1u64 << b);
    }

    /// Writes `v` into bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        if v {
            self.set(i);
        } else {
            self.reset(i);
        }
    }

    /// Zeroes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True when no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fraction of bits set, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    fn check_same_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `self = other`, reusing this vector's allocation (the allocation-
    /// free sibling of `clone`, for hot rebuild paths).
    pub fn copy_from(&mut self, other: &BitVec) {
        self.check_same_len(other);
        self.words.copy_from_slice(&other.words);
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Flips every bit (respecting the tail invariant).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// Popcount of `self & other` without materialising the intersection.
    ///
    /// This is the hot operation of the BloomSampleTree traversal: every node
    /// visit estimates the intersection size from exactly this count.
    pub fn and_count(&self, other: &BitVec) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Popcount of `self | other`.
    pub fn or_count(&self, other: &BitVec) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True when `self & other` has no set bit (early-exits on first overlap).
    pub fn is_disjoint(&self, other: &BitVec) -> bool {
        self.check_same_len(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterator over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over the positions of zero bits, ascending.
    pub fn iter_zeros(&self) -> Zeros<'_> {
        let first = self.words.first().copied().unwrap_or(u64::MAX);
        Zeros {
            words: &self.words,
            len: self.len,
            word_idx: 0,
            current: !first,
        }
    }

    /// Position of the `rank`-th (0-based) set bit, or `None` if fewer than
    /// `rank + 1` bits are set. Used to draw a uniformly random set bit.
    pub fn select_one(&self, rank: usize) -> Option<usize> {
        let mut remaining = rank;
        for (wi, &w) in self.words.iter().enumerate() {
            let pc = w.count_ones() as usize;
            if remaining < pc {
                return Some(wi * WORD_BITS + select_in_word(w, remaining as u32) as usize);
            }
            remaining -= pc;
        }
        None
    }

    /// Position of the `rank`-th (0-based) zero bit, or `None`.
    pub fn select_zero(&self, rank: usize) -> Option<usize> {
        let mut remaining = rank;
        let last = self.words.len() - 1;
        for (wi, &w) in self.words.iter().enumerate() {
            let mut inv = !w;
            if wi == last {
                inv &= tail_mask(self.len);
            }
            let pc = inv.count_ones() as usize;
            if remaining < pc {
                return Some(wi * WORD_BITS + select_in_word(inv, remaining as u32) as usize);
            }
            remaining -= pc;
        }
        None
    }
}

/// Position of the `rank`-th (0-based) set bit within a single word.
/// Caller guarantees `rank < w.count_ones()`.
#[inline]
fn select_in_word(mut w: u64, rank: u32) -> u32 {
    debug_assert!(rank < w.count_ones());
    // Clear the lowest `rank` set bits, then the answer is the new lowest.
    for _ in 0..rank {
        w &= w - 1;
    }
    w.trailing_zeros()
}

/// Iterator over set-bit positions of a [`BitVec`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// Iterator over zero-bit positions of a [`BitVec`].
pub struct Zeros<'a> {
    words: &'a [u64],
    len: usize,
    word_idx: usize,
    current: u64,
}

impl Iterator for Zeros<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = !self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        let pos = self.word_idx * WORD_BITS + bit;
        // Tail bits of the final word lie past `len`: exhausted.
        (pos < self.len).then_some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bv = BitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.all_zero());
        assert_eq!(bv.count_zeros(), 130);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = BitVec::new(0);
    }

    #[test]
    fn set_get_reset_roundtrip() {
        let mut bv = BitVec::new(200);
        for &i in &[0usize, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!bv.get(i));
            bv.set(i);
            assert!(bv.get(i));
        }
        assert_eq!(bv.count_ones(), 8);
        bv.reset(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 7);
    }

    #[test]
    fn assign_writes_both_values() {
        let mut bv = BitVec::new(10);
        bv.assign(3, true);
        assert!(bv.get(3));
        bv.assign(3, false);
        assert!(!bv.get(3));
    }

    #[test]
    fn word_boundary_bits() {
        let mut bv = BitVec::new(128);
        bv.set(63);
        bv.set(64);
        assert!(bv.get(63));
        assert!(bv.get(64));
        assert!(!bv.get(62));
        assert!(!bv.get(65));
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![63, 64]);
    }

    #[test]
    fn non_word_aligned_length() {
        let mut bv = BitVec::new(70);
        bv.set(69);
        assert_eq!(bv.count_ones(), 1);
        assert_eq!(bv.count_zeros(), 69);
        bv.negate();
        // Tail invariant: bits 70..128 of word 1 stay zero.
        assert_eq!(bv.count_ones(), 69);
        assert!(!bv.get(69));
        assert!(bv.get(0));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1);
        a.set(70);
        b.set(70);
        b.set(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 70, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![70]);
        assert_eq!(a.and_count(&b), 1);
        assert_eq!(a.or_count(&b), 3);
    }

    #[test]
    fn difference() {
        let mut a = BitVec::new(64);
        let mut b = BitVec::new(64);
        a.set(5);
        a.set(6);
        b.set(6);
        a.difference_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn disjoint_and_subset() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(10);
        b.set(20);
        assert!(a.is_disjoint(&b));
        b.set(10);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BitVec::new(10);
        let b = BitVec::new(11);
        let _ = a.and_count(&b);
    }

    #[test]
    fn iter_zeros_respects_len() {
        let mut bv = BitVec::new(67);
        for i in 0..67 {
            bv.set(i);
        }
        bv.reset(0);
        bv.reset(66);
        assert_eq!(bv.iter_zeros().collect::<Vec<_>>(), vec![0, 66]);
    }

    #[test]
    fn select_one_matches_iter() {
        let mut bv = BitVec::new(300);
        let positions = [0usize, 3, 63, 64, 120, 128, 255, 299];
        for &p in &positions {
            bv.set(p);
        }
        for (rank, &p) in positions.iter().enumerate() {
            assert_eq!(bv.select_one(rank), Some(p), "rank {rank}");
        }
        assert_eq!(bv.select_one(positions.len()), None);
    }

    #[test]
    fn select_zero_matches_iter() {
        let mut bv = BitVec::new(70);
        for i in 0..70 {
            bv.set(i);
        }
        bv.reset(13);
        bv.reset(69);
        assert_eq!(bv.select_zero(0), Some(13));
        assert_eq!(bv.select_zero(1), Some(69));
        assert_eq!(bv.select_zero(2), None);
    }

    #[test]
    fn select_in_word_cases() {
        assert_eq!(select_in_word(0b1, 0), 0);
        assert_eq!(select_in_word(0b1010, 0), 1);
        assert_eq!(select_in_word(0b1010, 1), 3);
        assert_eq!(select_in_word(u64::MAX, 63), 63);
        assert_eq!(select_in_word(1u64 << 63, 0), 63);
    }

    #[test]
    fn from_words_masks_tail() {
        let bv = BitVec::from_words(vec![u64::MAX], 10);
        assert_eq!(bv.count_ones(), 10);
    }

    #[test]
    fn negate_is_involution() {
        let mut bv = BitVec::new(130);
        bv.set(0);
        bv.set(129);
        let orig = bv.clone();
        bv.negate();
        assert!(!bv.get(0));
        assert!(bv.get(1));
        bv.negate();
        assert_eq!(bv, orig);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut bv = BitVec::new(99);
        for i in (0..99).step_by(7) {
            bv.set(i);
        }
        bv.clear();
        assert!(bv.all_zero());
    }

    #[test]
    fn fill_ratio_half() {
        let mut bv = BitVec::new(64);
        for i in 0..32 {
            bv.set(i);
        }
        assert!((bv.fill_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn word_and_or_word() {
        let mut bv = BitVec::new(192);
        bv.or_word(1, 0b1010_0001);
        assert_eq!(bv.word(1), 0b1010_0001);
        assert_eq!(bv.word(0), 0);
        assert!(bv.get(64) && bv.get(69) && bv.get(71));
        assert_eq!(bv.count_ones(), 3);
        bv.or_word(1, 0b0100);
        assert_eq!(bv.word(1), 0b1010_0101);
        // Word reads agree with per-bit reads everywhere.
        bv.set(190);
        for w in 0..3 {
            let mut expect = 0u64;
            for b in 0..64 {
                if bv.get(w * 64 + b) {
                    expect |= 1 << b;
                }
            }
            assert_eq!(bv.word(w), expect, "word {w}");
        }
    }

    #[test]
    fn words_roundtrip() {
        let mut bv = BitVec::new(77);
        bv.set(5);
        bv.set(76);
        let back = BitVec::from_words(bv.words().to_vec(), 77);
        assert_eq!(bv, back);
    }
}
