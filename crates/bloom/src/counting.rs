//! Counting Bloom filter: 4-bit counters instead of bits, supporting
//! deletions.
//!
//! The paper's Pruned-BloomSampleTree (§5.2) is motivated by namespaces
//! whose occupancy *changes over time* ("either we need to insert this new
//! element into already existing nodes in the tree, or we need to create a
//! new node"). Deletion support — users leaving the namespace — needs
//! counters; this extension substrate backs the dynamic-namespace features
//! and the `dynamic_namespace` example.
//!
//! Counters saturate at 15 and become sticky: once saturated, neither
//! inserts nor removes change them, trading (rare, bounded) residual bits
//! for the guarantee of no false negatives.

use std::sync::Arc;

use crate::bitvec::BitVec;
use crate::filter::{BloomFilter, MAX_K};
use crate::hash::BloomHasher;

const COUNTER_MAX: u8 = 15;

/// A Bloom filter with 4-bit counters per position.
#[derive(Clone, Debug)]
pub struct CountingBloomFilter {
    /// Two 4-bit counters per byte; position `i` lives in nibble `i & 1` of
    /// byte `i >> 1`.
    counters: Vec<u8>,
    m: usize,
    hasher: Arc<BloomHasher>,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter with `hasher`'s parameters.
    pub fn new(hasher: Arc<BloomHasher>) -> Self {
        let m = hasher.m();
        CountingBloomFilter {
            counters: vec![0u8; m.div_ceil(2)],
            m,
            hasher,
        }
    }

    /// Creates a counting filter with `hasher`'s parameters over `keys`.
    pub fn from_keys<I: IntoIterator<Item = u64>>(hasher: Arc<BloomHasher>, keys: I) -> Self {
        let mut f = Self::new(hasher);
        for x in keys {
            f.insert(x);
        }
        f
    }

    /// Reassembles a counting filter from a raw counter array (as exposed
    /// by [`Self::counter_bytes`]) and its hash family — the codec's
    /// constructor.
    ///
    /// # Panics
    /// Panics if `counters` does not hold exactly `ceil(m/2)` bytes.
    pub fn from_parts(counters: Vec<u8>, hasher: Arc<BloomHasher>) -> Self {
        let m = hasher.m();
        assert_eq!(
            counters.len(),
            m.div_ceil(2),
            "counter array length does not match filter width"
        );
        CountingBloomFilter {
            counters,
            m,
            hasher,
        }
    }

    /// The raw nibble-packed counter array (two counters per byte).
    #[inline]
    pub fn counter_bytes(&self) -> &[u8] {
        &self.counters
    }

    /// Disassembles the filter into its counter array and hash family
    /// (the inverse of [`Self::from_parts`], without copying).
    pub fn into_parts(self) -> (Vec<u8>, Arc<BloomHasher>) {
        (self.counters, self.hasher)
    }

    /// The shared hash family.
    #[inline]
    pub fn hasher(&self) -> &Arc<BloomHasher> {
        &self.hasher
    }

    /// Filter width in positions.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn counter(&self, i: usize) -> u8 {
        let byte = self.counters[i >> 1];
        if i & 1 == 0 {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    #[inline]
    fn set_counter(&mut self, i: usize, v: u8) {
        debug_assert!(v <= COUNTER_MAX);
        let byte = &mut self.counters[i >> 1];
        if i & 1 == 0 {
            *byte = (*byte & 0xf0) | v;
        } else {
            *byte = (*byte & 0x0f) | (v << 4);
        }
    }

    /// Inserts key `x`, incrementing its `k` counters (saturating).
    pub fn insert(&mut self, x: u64) {
        let mut pos = [0usize; MAX_K];
        let k = self.hasher.k();
        self.hasher.positions(x, &mut pos[..k]);
        for &p in &pos[..k] {
            let c = self.counter(p);
            if c < COUNTER_MAX {
                self.set_counter(p, c + 1);
            }
        }
    }

    /// Removes key `x`, decrementing its counters. Saturated counters stay
    /// saturated (sticky), preserving the no-false-negative guarantee for
    /// the remaining keys at the cost of possible residual positives.
    ///
    /// Removing a key that was never inserted is an unchecked logical error
    /// (as in all counting Bloom filters) and can introduce false negatives.
    pub fn remove(&mut self, x: u64) {
        let mut pos = [0usize; MAX_K];
        let k = self.hasher.k();
        self.hasher.positions(x, &mut pos[..k]);
        for &p in &pos[..k] {
            let c = self.counter(p);
            if c > 0 && c < COUNTER_MAX {
                self.set_counter(p, c - 1);
            }
        }
    }

    /// Membership query.
    pub fn contains(&self, x: u64) -> bool {
        let mut pos = [0usize; MAX_K];
        let k = self.hasher.k();
        self.hasher.positions(x, &mut pos[..k]);
        pos[..k].iter().all(|&p| self.counter(p) > 0)
    }

    /// Number of positions with nonzero counters.
    pub fn count_nonzero(&self) -> usize {
        (0..self.m).filter(|&i| self.counter(i) > 0).count()
    }

    /// Projects to a plain [`BloomFilter`] (bit set ⇔ counter nonzero),
    /// compatible with BloomSampleTree operations.
    pub fn to_bloom(&self) -> BloomFilter {
        let mut bits = BitVec::new(self.m);
        for i in 0..self.m {
            if self.counter(i) > 0 {
                bits.set(i);
            }
        }
        // Rebuild through from_keys-free path: construct empty then splice
        // bits via union of a crafted filter. BloomFilter's fields are
        // private to this crate, so a direct constructor is provided.
        BloomFilter::from_parts(bits, Arc::clone(&self.hasher))
    }

    /// Heap bytes used by the counter array.
    pub fn heap_bytes(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashKind;

    fn cbf() -> CountingBloomFilter {
        CountingBloomFilter::new(Arc::new(BloomHasher::new(
            HashKind::Murmur3,
            3,
            2048,
            100_000,
            5,
        )))
    }

    #[test]
    fn insert_then_contains() {
        let mut f = cbf();
        for x in 0..100u64 {
            f.insert(x);
        }
        for x in 0..100u64 {
            assert!(f.contains(x));
        }
    }

    #[test]
    fn remove_clears_membership() {
        let mut f = cbf();
        f.insert(7);
        assert!(f.contains(7));
        f.remove(7);
        assert!(!f.contains(7));
    }

    #[test]
    fn remove_keeps_other_keys() {
        let mut f = cbf();
        for x in 0..200u64 {
            f.insert(x);
        }
        for x in 0..100u64 {
            f.remove(x);
        }
        // No false negatives for the survivors.
        for x in 100..200u64 {
            assert!(f.contains(x), "lost key {x}");
        }
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut f = cbf();
        f.insert(42);
        f.insert(42);
        f.remove(42);
        assert!(f.contains(42), "one remove must not clear two inserts");
        f.remove(42);
        assert!(!f.contains(42));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = cbf();
        for _ in 0..100 {
            f.insert(1);
        }
        for _ in 0..100 {
            f.remove(1);
        }
        // Counter saturated at 15; removals do not clear it.
        assert!(f.contains(1));
    }

    #[test]
    fn nibble_packing_is_isolated() {
        let mut f = cbf();
        // Directly exercise adjacent nibbles.
        f.set_counter(10, 9);
        f.set_counter(11, 4);
        assert_eq!(f.counter(10), 9);
        assert_eq!(f.counter(11), 4);
        f.set_counter(10, 0);
        assert_eq!(f.counter(11), 4);
    }

    #[test]
    fn to_bloom_matches_membership() {
        let mut f = cbf();
        for x in (0..500u64).step_by(7) {
            f.insert(x);
        }
        let b = f.to_bloom();
        for x in 0..500u64 {
            assert_eq!(f.contains(x), b.contains(x), "mismatch at {x}");
        }
        assert_eq!(b.count_ones(), f.count_nonzero());
    }

    #[test]
    fn odd_width_filter() {
        let h = Arc::new(BloomHasher::new(HashKind::Murmur3, 2, 101, 1000, 1));
        let mut f = CountingBloomFilter::new(h);
        for x in 0..50u64 {
            f.insert(x);
        }
        for x in 0..50u64 {
            assert!(f.contains(x));
        }
    }
}
