//! Compact binary serialization for Bloom filters.
//!
//! The framework (§3.2) assumes a database `D̄` of *millions* of sets, each
//! stored only as a Bloom filter, so a dense storage format matters. The
//! hash family is reconstructed deterministically from
//! `(kind, k, m, namespace, seed)` rather than serialised coefficient by
//! coefficient.
//!
//! Layouts (little-endian):
//!
//! ```text
//! plain:    magic "BSBF" | version u8 | kind u8 | k u16 | m u64
//!           | namespace u64 | seed u64 | word count u64 | words [u64]
//! counting: magic "BSCB" | version u8 | kind u8 | k u16 | m u64
//!           | namespace u64 | seed u64 | byte count u64
//!           | nibble-packed counters [u8]
//! ```

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitvec::BitVec;
use crate::counting::CountingBloomFilter;
use crate::filter::{BloomFilter, MAX_K};
use crate::hash::{BloomHasher, HashKind};

const MAGIC: &[u8; 4] = b"BSBF";
const COUNTING_MAGIC: &[u8; 4] = b"BSCB";
const VERSION: u8 = 1;

/// Errors arising when decoding a serialized filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown hash-kind tag.
    BadKind(u8),
    /// Word payload shorter than the declared count.
    BadLength,
    /// Header parameters outside the representable range (`k` not in
    /// `1..=MAX_K`, or `m` too small to hash into).
    BadParams(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown hash kind tag {k}"),
            CodecError::BadLength => write!(f, "word payload length mismatch"),
            CodecError::BadParams(what) => write!(f, "header parameters invalid: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn kind_tag(kind: HashKind) -> u8 {
    match kind {
        HashKind::Simple => 0,
        HashKind::Murmur3 => 1,
        HashKind::Md5 => 2,
        HashKind::DeltaBlocked => 3,
    }
}

fn kind_from_tag(tag: u8) -> Result<HashKind, CodecError> {
    match tag {
        0 => Ok(HashKind::Simple),
        1 => Ok(HashKind::Murmur3),
        2 => Ok(HashKind::Md5),
        3 => Ok(HashKind::DeltaBlocked),
        other => Err(CodecError::BadKind(other)),
    }
}

/// Rejects `(kind, k, m)` values the hash families cannot represent, so
/// corrupt headers fail with a typed error here instead of panicking (or
/// dividing by zero) on first use of the decoded filter.
fn check_params(kind: HashKind, k: usize, m: usize) -> Result<(), CodecError> {
    if k == 0 || k > MAX_K {
        return Err(CodecError::BadParams("k outside 1..=MAX_K"));
    }
    if m < 2 {
        return Err(CodecError::BadParams("m below 2"));
    }
    if kind == HashKind::DeltaBlocked && m < crate::hash::MIN_BLOCKED_BITS {
        return Err(CodecError::BadParams("m below one block for DeltaBlocked"));
    }
    Ok(())
}

/// Serializes `filter` into a compact byte buffer.
pub fn encode(filter: &BloomFilter) -> Bytes {
    let h = filter.hasher();
    let namespace = h.namespace().unwrap_or(1);
    let seed = h.seed();
    let words = filter.bits().words();
    let mut buf = BytesMut::with_capacity(4 + 1 + 1 + 2 + 8 * 4 + words.len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind_tag(h.kind()));
    buf.put_u16_le(h.k() as u16);
    buf.put_u64_le(h.m() as u64);
    buf.put_u64_le(namespace);
    buf.put_u64_le(seed);
    buf.put_u64_le(words.len() as u64);
    for &w in words {
        buf.put_u64_le(w);
    }
    buf.freeze()
}

/// Decodes a filter previously produced by [`encode`], rebuilding the hash
/// family deterministically from the header.
pub fn decode(mut input: &[u8]) -> Result<BloomFilter, CodecError> {
    if input.len() < 4 + 1 + 1 + 2 + 8 * 4 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    input.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = input.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = kind_from_tag(input.get_u8())?;
    let k = input.get_u16_le() as usize;
    let m = input.get_u64_le() as usize;
    check_params(kind, k, m)?;
    let namespace = input.get_u64_le();
    let seed = input.get_u64_le();
    let n_words = input.get_u64_le() as usize;
    // Validate the claimed word count against `m` *before* sizing any
    // allocation from it: `m.div_ceil(64)` fits in usize/8, so the
    // byte-length product below cannot overflow either.
    if n_words != m.div_ceil(64) {
        return Err(CodecError::BadLength);
    }
    if input.remaining() < n_words * 8 {
        return Err(CodecError::BadLength);
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(input.get_u64_le());
    }
    let bits = BitVec::from_words(words, m);
    let hasher = Arc::new(BloomHasher::new(kind, k, m, namespace.max(1), seed));
    Ok(BloomFilter::from_parts(bits, hasher))
}

/// Serializes a counting filter (nibble-packed counters plus the hash
/// family's defining parameters) into a compact byte buffer.
pub fn encode_counting(filter: &CountingBloomFilter) -> Bytes {
    let h = filter.hasher();
    let counters = filter.counter_bytes();
    let mut buf = BytesMut::with_capacity(4 + 1 + 1 + 2 + 8 * 4 + counters.len());
    buf.put_slice(COUNTING_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind_tag(h.kind()));
    buf.put_u16_le(h.k() as u16);
    buf.put_u64_le(h.m() as u64);
    buf.put_u64_le(h.namespace().unwrap_or(1));
    buf.put_u64_le(h.seed());
    buf.put_u64_le(counters.len() as u64);
    buf.put_slice(counters);
    buf.freeze()
}

/// Decodes a counting filter previously produced by [`encode_counting`],
/// rebuilding the hash family deterministically from the header.
pub fn decode_counting(mut input: &[u8]) -> Result<CountingBloomFilter, CodecError> {
    if input.len() < 4 + 1 + 1 + 2 + 8 * 4 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    input.copy_to_slice(&mut magic);
    if &magic != COUNTING_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = input.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = kind_from_tag(input.get_u8())?;
    let k = input.get_u16_le() as usize;
    let m = input.get_u64_le() as usize;
    check_params(kind, k, m)?;
    let namespace = input.get_u64_le();
    let seed = input.get_u64_le();
    let n_bytes = input.get_u64_le() as usize;
    if n_bytes != m.div_ceil(2) {
        return Err(CodecError::BadLength);
    }
    if input.remaining() < n_bytes {
        return Err(CodecError::BadLength);
    }
    let counters = input[..n_bytes].to_vec();
    let hasher = Arc::new(BloomHasher::new(kind, k, m, namespace.max(1), seed));
    Ok(CountingBloomFilter::from_parts(counters, hasher))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in HashKind::ALL {
            let mut f = BloomFilter::with_params(kind, 3, 1234, 50_000, 77);
            for x in (0..500u64).step_by(3) {
                f.insert(x);
            }
            let bytes = encode(&f);
            let back = decode(&bytes).unwrap();
            assert_eq!(back.bits(), f.bits(), "{kind}: bits differ");
            assert!(back.compatible_with(&f), "{kind}: hasher differs");
            for x in 0..500u64 {
                assert_eq!(back.contains(x), f.contains(x), "{kind}: key {x}");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), CodecError::Truncated);
        let mut junk = vec![0u8; 64];
        junk[..4].copy_from_slice(b"XXXX");
        assert_eq!(decode(&junk).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn rejects_bad_version_and_kind() {
        let f = BloomFilter::with_params(HashKind::Murmur3, 3, 128, 1000, 1);
        let bytes = encode(&f);
        let mut v = bytes.to_vec();
        v[4] = 99;
        assert_eq!(decode(&v).unwrap_err(), CodecError::BadVersion(99));
        let mut v2 = bytes.to_vec();
        v2[5] = 9;
        assert_eq!(decode(&v2).unwrap_err(), CodecError::BadKind(9));
    }

    #[test]
    fn rejects_truncated_payload() {
        let f = BloomFilter::with_params(HashKind::Murmur3, 3, 4096, 1000, 1);
        let bytes = encode(&f);
        let v = &bytes[..bytes.len() - 8];
        assert_eq!(decode(v).unwrap_err(), CodecError::BadLength);
    }

    #[test]
    fn counting_roundtrip_preserves_counters_and_membership() {
        for kind in HashKind::ALL {
            let hasher = Arc::new(BloomHasher::new(kind, 3, 2049, 60_000, 13));
            let mut f = CountingBloomFilter::from_keys(Arc::clone(&hasher), 0..300u64);
            // Build non-trivial counter values: duplicates and removals.
            for x in 0..100u64 {
                f.insert(x);
            }
            for x in 200..250u64 {
                f.remove(x);
            }
            let bytes = encode_counting(&f);
            let back = decode_counting(&bytes).unwrap();
            assert_eq!(
                back.counter_bytes(),
                f.counter_bytes(),
                "{kind}: counters differ"
            );
            assert_eq!(back.hasher(), f.hasher(), "{kind}: hash family differs");
            for x in 0..300u64 {
                assert_eq!(back.contains(x), f.contains(x), "{kind}: key {x}");
            }
            // The decoded filter stays mutable: removes keep working.
            let mut back = back;
            back.remove(0);
            back.remove(0); // inserted twice above
            assert!(!back.contains(0));
        }
    }

    #[test]
    fn rejects_unrepresentable_header_params() {
        // Corrupt k/m must fail with a typed error at decode time, not
        // panic (or divide by zero) on the decoded filter's first use.
        let f = BloomFilter::with_params(HashKind::Murmur3, 3, 512, 1000, 1);
        let plain = encode(&f).to_vec();
        let counting = encode_counting(&CountingBloomFilter::new(Arc::clone(f.hasher()))).to_vec();
        // k u16 lives at offset 6..8; m u64 at offset 8..16 (LE).
        type DecodeErr = fn(&[u8]) -> Option<CodecError>;
        let cases: [(&[u8], DecodeErr); 2] = [
            (&plain, |v| decode(v).err()),
            (&counting, |v| decode_counting(v).err()),
        ];
        for (buf, decode_err) in cases {
            let mut big_k = buf.to_vec();
            big_k[6..8].copy_from_slice(&1000u16.to_le_bytes());
            assert!(matches!(decode_err(&big_k), Some(CodecError::BadParams(_))));
            let mut zero_k = buf.to_vec();
            zero_k[6..8].copy_from_slice(&0u16.to_le_bytes());
            assert!(matches!(
                decode_err(&zero_k),
                Some(CodecError::BadParams(_))
            ));
            let mut zero_m = buf.to_vec();
            zero_m[8..16].copy_from_slice(&0u64.to_le_bytes());
            assert!(matches!(
                decode_err(&zero_m),
                Some(CodecError::BadParams(_))
            ));
        }
    }

    #[test]
    fn rejects_sub_block_m_for_blocked_kind() {
        // A header claiming the blocked layout with fewer bits than one
        // two-word block is unrepresentable: typed error, no panic.
        let f = BloomFilter::with_params(HashKind::Murmur3, 3, 64, 1000, 1);
        let mut v = encode(&f).to_vec();
        v[5] = 3; // kind tag: DeltaBlocked
        assert!(matches!(decode(&v), Err(CodecError::BadParams(_))));
        let c = CountingBloomFilter::new(Arc::clone(f.hasher()));
        let mut v = encode_counting(&c).to_vec();
        v[5] = 3;
        assert!(matches!(decode_counting(&v), Err(CodecError::BadParams(_))));
    }

    #[test]
    fn counting_rejects_garbage_and_mismatches() {
        assert_eq!(decode_counting(b"nope").unwrap_err(), CodecError::Truncated);
        let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 512, 1000, 1));
        let f = CountingBloomFilter::from_keys(hasher, 0..20u64);
        let bytes = encode_counting(&f);
        // Plain-filter decoder must refuse a counting payload and vice versa.
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadMagic);
        let plain = encode(&f.to_bloom());
        assert_eq!(decode_counting(&plain).unwrap_err(), CodecError::BadMagic);
        let mut v = bytes.to_vec();
        v[4] = 9;
        assert_eq!(decode_counting(&v).unwrap_err(), CodecError::BadVersion(9));
        assert_eq!(
            decode_counting(&bytes[..bytes.len() - 4]).unwrap_err(),
            CodecError::BadLength
        );
    }

    #[test]
    fn encoding_is_compact() {
        let f = BloomFilter::with_params(HashKind::Simple, 3, 64_000, 1_000_000, 5);
        let bytes = encode(&f);
        // Header is 40 bytes; payload exactly ceil(m/64)*8.
        assert_eq!(bytes.len(), 40 + 64_000usize.div_ceil(64) * 8);
    }
}
