//! Parameter planning (§5.4): sizing filters for a desired sampling
//! accuracy, and choosing the BloomSampleTree depth / leaf capacity `M⊥`
//! from the relative cost of intersections vs membership queries.
//!
//! The sizing chain, verified against the paper's Tables 2–4:
//!
//! 1. target accuracy `a` → tolerable false-positive rate
//!    `FP* = n(1−a) / (a(M−n))` (inverting `acc = n/(n+(M−n)FP)`);
//! 2. `FP*` → filter size `m = ⌈−kn / ln(1 − FP*^{1/k})⌉`
//!    (inverting `FP = (1−e^{−kn/m})^k`).
//!
//! The paper's `a = 1.0` rows are reproduced at `a = 0.99` (`m = 137230`
//! for `M=10⁶`, `m = 297485` for `M=10⁷`, matching the published tables);
//! exact accuracy 1.0 would need an infinite filter.

use crate::estimate;
use crate::hash::{BloomHasher, HashKind};

/// The paper's default hash-function count (§7.1: "we kept the number of
/// hash functions to 3").
pub const DEFAULT_K: usize = 3;

/// Accuracy used for rows labelled `1.0` in the paper's tables.
pub const MAX_PLANNABLE_ACCURACY: f64 = 0.99;

/// Tolerable false-positive rate for sampling accuracy `a` over a query set
/// of size `n` in a namespace of `M` elements.
///
/// # Panics
/// Panics unless `0 < a <= 1`, `0 < n < M`.
pub fn fp_for_accuracy(accuracy: f64, n: u64, namespace: u64) -> f64 {
    assert!(
        accuracy > 0.0 && accuracy <= 1.0,
        "accuracy must be in (0, 1], got {accuracy}"
    );
    assert!(n > 0, "query set size must be positive");
    assert!(n < namespace, "query set cannot exceed the namespace");
    let a = accuracy.min(MAX_PLANNABLE_ACCURACY);
    let n = n as f64;
    n * (1.0 - a) / (a * (namespace as f64 - n))
}

/// Minimum filter size `m` (bits) for a false-positive rate `fp` with `k`
/// hashes and `n` stored keys: `m = ⌈−kn / ln(1 − fp^{1/k})⌉`.
pub fn m_for_fp(fp: f64, n: u64, k: usize) -> usize {
    assert!(fp > 0.0 && fp < 1.0, "fp must be in (0,1), got {fp}");
    assert!(n > 0 && k > 0);
    let root = fp.powf(1.0 / k as f64);
    let m = -((k as u64 * n) as f64) / (1.0 - root).ln();
    m.ceil() as usize
}

/// Filter size for a target sampling accuracy (composition of
/// [`fp_for_accuracy`] and [`m_for_fp`]).
pub fn m_for_accuracy(accuracy: f64, n: u64, namespace: u64, k: usize) -> usize {
    m_for_fp(fp_for_accuracy(accuracy, n, namespace), n, k)
}

/// Largest leaf capacity `N⊥` satisfying the §5.4 rule
/// `N⊥ / log₂(N⊥) ≤ icost/mcost`, for a measured cost ratio.
///
/// Below `N = 2` the rule is vacuous; the returned value is at least 2.
pub fn leaf_capacity_for_cost_ratio(cost_ratio: f64) -> u64 {
    assert!(cost_ratio.is_finite() && cost_ratio > 0.0);
    // N / log2(N) is increasing for N >= 3; binary search the crossover.
    let f = |n: u64| n as f64 / (n as f64).log2();
    if f(3) > cost_ratio {
        return 2;
    }
    let (mut lo, mut hi) = (3u64, 3u64);
    while f(hi) <= cost_ratio {
        lo = hi;
        match hi.checked_mul(2) {
            Some(next) => hi = next,
            None => return lo,
        }
    }
    // Invariant: f(lo) <= ratio < f(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if f(mid) <= cost_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Tree depth (number of edge levels) so that leaves hold at most
/// `leaf_capacity` namespace elements: `⌈log₂(M / leaf_capacity)⌉`.
pub fn depth_for(namespace: u64, leaf_capacity: u64) -> u32 {
    assert!(namespace > 0 && leaf_capacity > 0);
    if leaf_capacity >= namespace {
        return 0;
    }
    let ratio = namespace.div_ceil(leaf_capacity);
    // ceil(log2(ratio))
    64 - (ratio - 1).leading_zeros()
}

/// Elements per leaf for a namespace split into `2^depth` leaves.
pub fn leaf_size(namespace: u64, depth: u32) -> u64 {
    namespace.div_ceil(1u64 << depth)
}

/// A fully resolved plan for one BloomSampleTree deployment: filter
/// parameters plus tree shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TreePlan {
    /// Namespace size `M`.
    pub namespace: u64,
    /// Filter size in bits (shared by tree nodes and query filters).
    pub m: usize,
    /// Number of hash functions.
    pub k: usize,
    /// Hash family.
    pub kind: HashKind,
    /// Seed for the shared hash family.
    pub seed: u64,
    /// Tree depth: leaves sit at this level; level 0 is the root.
    pub depth: u32,
    /// Elements covered by each leaf (`M⊥`).
    pub leaf_capacity: u64,
    /// Target accuracy this plan was derived for (informational).
    pub target_accuracy: f64,
}

impl TreePlan {
    /// Plans a tree for `namespace`, expecting query sets around `n`
    /// elements, at the given target accuracy, with an
    /// intersection/membership cost ratio (see `bst-core::costmodel` for
    /// runtime measurement; 128 is a reasonable default for Murmur3 on
    /// commodity hardware at the filter sizes these accuracies produce).
    pub fn for_accuracy(
        namespace: u64,
        n: u64,
        accuracy: f64,
        k: usize,
        kind: HashKind,
        seed: u64,
        cost_ratio: f64,
    ) -> Self {
        let m = m_for_accuracy(accuracy, n, namespace, k);
        let cap = leaf_capacity_for_cost_ratio(cost_ratio);
        let depth = depth_for(namespace, cap);
        TreePlan {
            namespace,
            m,
            k,
            kind,
            seed,
            depth,
            leaf_capacity: leaf_size(namespace, depth),
            target_accuracy: accuracy,
        }
    }

    /// Builds the shared hash family for this plan.
    pub fn build_hasher(&self) -> BloomHasher {
        BloomHasher::new(self.kind, self.k, self.m, self.namespace, self.seed)
    }

    /// Number of nodes in the complete tree (all levels, root included).
    pub fn node_count(&self) -> u64 {
        (1u64 << (self.depth + 1)) - 1
    }

    /// Analytic memory of the complete tree's bit arrays, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.node_count() * (self.m as u64).div_ceil(8)
    }

    /// Memory under the paper's Tables 2/3 node-count convention
    /// (`m · (2^depth − 1)` bits), for verbatim table reproduction.
    pub fn memory_bytes_paper_convention(&self) -> u64 {
        ((1u64 << self.depth) - 1) * (self.m as u64).div_ceil(8)
    }

    /// Expected sampling accuracy of this plan for query sets of size `n`.
    pub fn expected_accuracy(&self, n: usize) -> f64 {
        estimate::accuracy(self.m, self.k, n, self.namespace)
    }
}

/// One row of the paper's Tables 2/3, pinned so experiments can regenerate
/// those tables verbatim even where the cost-ratio inputs behind the
/// published `M⊥` values are unknown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Target sampling accuracy of the row.
    pub accuracy: f64,
    /// Published filter size in bits.
    pub m: usize,
    /// Published tree depth.
    pub depth: u32,
    /// Published leaf capacity `M⊥`.
    pub leaf_capacity: u64,
}

/// Table 2: `M = 10⁶`, `n = 10³`, `k = 3`.
pub const PAPER_TABLE2: [PaperRow; 6] = [
    PaperRow {
        accuracy: 0.5,
        m: 28_465,
        depth: 10,
        leaf_capacity: 976,
    },
    PaperRow {
        accuracy: 0.6,
        m: 32_808,
        depth: 10,
        leaf_capacity: 976,
    },
    PaperRow {
        accuracy: 0.7,
        m: 38_259,
        depth: 10,
        leaf_capacity: 976,
    },
    PaperRow {
        accuracy: 0.8,
        m: 46_000,
        depth: 9,
        leaf_capacity: 1953,
    },
    PaperRow {
        accuracy: 0.9,
        m: 60_870,
        depth: 9,
        leaf_capacity: 1953,
    },
    PaperRow {
        accuracy: 1.0,
        m: 137_230,
        depth: 6,
        leaf_capacity: 15_625,
    },
];

/// Table 3: `M = 10⁷`, `n = 10³`, `k = 3`.
pub const PAPER_TABLE3: [PaperRow; 6] = [
    PaperRow {
        accuracy: 0.5,
        m: 63_120,
        depth: 13,
        leaf_capacity: 1220,
    },
    PaperRow {
        accuracy: 0.6,
        m: 72_475,
        depth: 13,
        leaf_capacity: 1220,
    },
    PaperRow {
        accuracy: 0.7,
        m: 84_215,
        depth: 13,
        leaf_capacity: 1220,
    },
    PaperRow {
        accuracy: 0.8,
        m: 101_090,
        depth: 13,
        leaf_capacity: 1220,
    },
    PaperRow {
        accuracy: 0.9,
        m: 132_933,
        depth: 12,
        leaf_capacity: 2441,
    },
    PaperRow {
        accuracy: 1.0,
        m: 297_485,
        depth: 10,
        leaf_capacity: 9765,
    },
];

/// A plan pinned to a published table row, when one exists for
/// `(namespace, accuracy)`.
pub fn paper_plan(namespace: u64, accuracy: f64, kind: HashKind, seed: u64) -> Option<TreePlan> {
    let table: &[PaperRow] = match namespace {
        1_000_000 => &PAPER_TABLE2,
        10_000_000 => &PAPER_TABLE3,
        _ => return None,
    };
    table
        .iter()
        .find(|row| (row.accuracy - accuracy).abs() < 1e-9)
        .map(|row| TreePlan {
            namespace,
            m: row.m,
            k: DEFAULT_K,
            kind,
            seed,
            depth: row.depth,
            leaf_capacity: leaf_size(namespace, row.depth),
            target_accuracy: accuracy,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sizing chain must reproduce every `m` in Tables 2 and 3 to
    /// within rounding (±2 bits).
    #[test]
    fn m_reproduces_paper_tables() {
        for row in PAPER_TABLE2 {
            let m = m_for_accuracy(row.accuracy, 1000, 1_000_000, 3);
            // The paper's Table 2 lists m = 46000 for accuracy 0.8 but its
            // own Table 4 lists 46090 for the identical configuration; the
            // sizing formula yields 46090, so Table 2's value is treated as
            // a typo.
            let paper_m = if (row.accuracy - 0.8).abs() < 1e-9 {
                46_090
            } else {
                row.m as i64
            };
            assert!(
                (m as i64 - paper_m).abs() <= 2,
                "Table2 acc {}: got {m}, paper {}",
                row.accuracy,
                paper_m
            );
        }
        for row in PAPER_TABLE3 {
            let m = m_for_accuracy(row.accuracy, 1000, 10_000_000, 3);
            assert!(
                (m as i64 - row.m as i64).abs() <= 2,
                "Table3 acc {}: got {m}, paper {}",
                row.accuracy,
                row.m
            );
        }
    }

    #[test]
    fn fp_for_accuracy_inverts_accuracy() {
        let fp = fp_for_accuracy(0.8, 1000, 1_000_000);
        // acc = n/(n+(M-n)fp) must give back 0.8.
        let acc = 1000.0 / (1000.0 + 999_000.0 * fp);
        assert!((acc - 0.8).abs() < 1e-12);
    }

    #[test]
    fn accuracy_one_is_clamped() {
        let fp1 = fp_for_accuracy(1.0, 1000, 1_000_000);
        let fp99 = fp_for_accuracy(0.99, 1000, 1_000_000);
        assert_eq!(fp1, fp99);
    }

    #[test]
    fn m_for_fp_monotone() {
        let m_loose = m_for_fp(0.1, 1000, 3);
        let m_tight = m_for_fp(0.001, 1000, 3);
        assert!(m_tight > m_loose);
    }

    #[test]
    fn leaf_capacity_rule() {
        // N/log2(N): 976 -> ~99.2, 1953 -> ~178.3.
        let cap = leaf_capacity_for_cost_ratio(100.0);
        assert!(cap as f64 / (cap as f64).log2() <= 100.0);
        assert!((cap + 1) as f64 / ((cap + 1) as f64).log2() > 100.0);
        assert!((976..1953).contains(&cap), "cap {cap}");
        assert_eq!(leaf_capacity_for_cost_ratio(0.5), 2);
    }

    #[test]
    fn depth_examples() {
        // 10^6 / 976 = 1024.6 -> depth 11? ceil(log2(1025)) = 11.
        // The paper's Table 2 pairs depth 10 with M_bot 976 = floor(1e6/2^10);
        // our depth_for computes from capacity: 1e6/977 -> 1024 leaves.
        assert_eq!(depth_for(1_000_000, 977), 10);
        assert_eq!(depth_for(1_000_000, 15_625), 6);
        assert_eq!(depth_for(1024, 1), 10);
        assert_eq!(depth_for(1024, 1024), 0);
        assert_eq!(depth_for(1025, 1024), 1);
    }

    #[test]
    fn leaf_size_roundtrip() {
        assert_eq!(leaf_size(1_000_000, 10), 977);
        assert_eq!(leaf_size(1_000_000, 6), 15_625);
        assert_eq!(leaf_size(10_000_000, 13), 1221);
        // depth 0: one leaf holds everything
        assert_eq!(leaf_size(42, 0), 42);
    }

    #[test]
    fn tree_plan_construction() {
        let plan = TreePlan::for_accuracy(1_000_000, 1000, 0.9, 3, HashKind::Murmur3, 1, 128.0);
        assert_eq!(plan.k, 3);
        assert!((plan.m as i64 - 60_870).abs() <= 2);
        assert!(plan.depth >= 8 && plan.depth <= 11, "depth {}", plan.depth);
        assert_eq!(plan.leaf_capacity, leaf_size(1_000_000, plan.depth));
        let h = plan.build_hasher();
        assert_eq!(h.m(), plan.m);
        let acc = plan.expected_accuracy(1000);
        assert!((acc - 0.9).abs() < 0.01, "acc {acc}");
    }

    #[test]
    fn paper_plan_lookup() {
        let plan = paper_plan(1_000_000, 0.9, HashKind::Murmur3, 0).unwrap();
        assert_eq!(plan.m, 60_870);
        assert_eq!(plan.depth, 9);
        assert!(paper_plan(1_000_000, 0.85, HashKind::Murmur3, 0).is_none());
        assert!(paper_plan(12345, 0.9, HashKind::Murmur3, 0).is_none());
        let plan3 = paper_plan(10_000_000, 1.0, HashKind::Simple, 0).unwrap();
        assert_eq!(plan3.m, 297_485);
    }

    #[test]
    fn memory_accounting() {
        let plan = paper_plan(1_000_000, 0.5, HashKind::Murmur3, 0).unwrap();
        // Paper convention: 28465 bits * (2^10 - 1) nodes ≈ 3.64 MB
        // (published: 3.467 MB).
        let mb = plan.memory_bytes_paper_convention() as f64 / 1e6;
        assert!((mb - 3.64).abs() < 0.1, "paper-convention memory {mb} MB");
        assert!(plan.memory_bytes() > plan.memory_bytes_paper_convention());
    }

    #[test]
    #[should_panic(expected = "accuracy must be")]
    fn bad_accuracy_panics() {
        let _ = fp_for_accuracy(0.0, 10, 100);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn n_exceeding_namespace_panics() {
        let _ = fp_for_accuracy(0.9, 100, 100);
    }
}
