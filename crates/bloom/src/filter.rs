//! The Bloom filter (§3.1): an `m`-bit array with `k` hash functions,
//! supporting membership, union (bitwise OR) and intersection (bitwise AND).

use std::sync::Arc;

use crate::bitvec::BitVec;
use crate::estimate;
use crate::hash::{BloomHasher, HashKind};

/// Maximum supported number of hash functions; lets position scratch live on
/// the stack.
pub const MAX_K: usize = 32;

/// A Bloom filter storing a set of `u64` keys.
///
/// The hasher is shared via [`Arc`]: every filter in a BloomSampleTree — the
/// thousands of node filters and all query filters — must use the same
/// `(m, H)` so that intersections are meaningful (§5.1), and sharing makes
/// that relationship explicit and cheap.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    hasher: Arc<BloomHasher>,
}

impl BloomFilter {
    /// Creates an empty filter using `hasher`'s parameters.
    pub fn new(hasher: Arc<BloomHasher>) -> Self {
        let m = hasher.m();
        BloomFilter {
            bits: BitVec::new(m),
            hasher,
        }
    }

    /// Convenience constructor building a fresh hasher.
    pub fn with_params(kind: HashKind, k: usize, m: usize, namespace: u64, seed: u64) -> Self {
        Self::new(Arc::new(BloomHasher::new(kind, k, m, namespace, seed)))
    }

    /// Builds a filter containing every key yielded by `keys`.
    pub fn from_keys<I: IntoIterator<Item = u64>>(hasher: Arc<BloomHasher>, keys: I) -> Self {
        let mut f = Self::new(hasher);
        for x in keys {
            f.insert(x);
        }
        f
    }

    /// Assembles a filter from a raw bit vector and a hash family.
    ///
    /// # Panics
    /// Panics if the bit vector length differs from the hasher's `m`.
    pub fn from_parts(bits: BitVec, hasher: Arc<BloomHasher>) -> Self {
        assert_eq!(
            bits.len(),
            hasher.m(),
            "bit vector length must equal the hash family's m"
        );
        BloomFilter { bits, hasher }
    }

    /// The shared hash family.
    #[inline]
    pub fn hasher(&self) -> &Arc<BloomHasher> {
        &self.hasher
    }

    /// Filter size in bits.
    #[inline]
    pub fn m(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    #[inline]
    pub fn k(&self) -> usize {
        self.hasher.k()
    }

    /// Raw bit storage.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Inserts key `x` (sets its `k` bit positions). Blocked layouts OR
    /// at most two whole words; classic layouts set `k` individual bits.
    pub fn insert(&mut self, x: u64) {
        if let Some(p) = self.hasher.block_probe(x) {
            self.bits.or_word(p.word0, p.mask0);
            self.bits.or_word(p.word1, p.mask1);
            return;
        }
        let mut pos = [0usize; MAX_K];
        let k = self.k();
        self.hasher.positions(x, &mut pos[..k]);
        for &p in &pos[..k] {
            self.bits.set(p);
        }
    }

    /// Membership query: true when all `k` positions of `x` are set.
    /// May be a false positive; never a false negative. Blocked layouts
    /// answer with one or two masked word loads from a single cache
    /// line; classic layouts probe `k` scattered bits.
    pub fn contains(&self, x: u64) -> bool {
        if let Some(p) = self.hasher.block_probe(x) {
            return self.bits.word(p.word0) & p.mask0 == p.mask0
                && self.bits.word(p.word1) & p.mask1 == p.mask1;
        }
        let mut pos = [0usize; MAX_K];
        let k = self.k();
        self.hasher.positions(x, &mut pos[..k]);
        pos[..k].iter().all(|&p| self.bits.get(p))
    }

    /// Bulk-membership kernel: probes every candidate in order, calling
    /// `visit(x)` for each member, and returns the number of candidates
    /// probed. Hoists the hasher-layout dispatch out of the loop; for
    /// blocked layouts the inner loop is two masked word loads per key.
    /// For classic layouts this is exactly a [`Self::contains`] loop, so
    /// results (and visit order) are bit-identical to the naive scan.
    pub fn for_each_member<I, F>(&self, candidates: I, mut visit: F) -> u64
    where
        I: IntoIterator<Item = u64>,
        F: FnMut(u64),
    {
        let mut probed = 0u64;
        match self.hasher.as_ref() {
            BloomHasher::Blocked(fam) => {
                for x in candidates {
                    probed += 1;
                    let p = fam.block_probe(x);
                    if self.bits.word(p.word0) & p.mask0 == p.mask0
                        && self.bits.word(p.word1) & p.mask1 == p.mask1
                    {
                        visit(x);
                    }
                }
            }
            _ => {
                for x in candidates {
                    probed += 1;
                    if self.contains(x) {
                        visit(x);
                    }
                }
            }
        }
        probed
    }

    /// True when no bit is set (the empty-set filter).
    pub fn is_empty(&self) -> bool {
        self.bits.all_zero()
    }

    /// Clears every bit, returning the filter to the empty-set state.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Number of set bits `t`.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Number of zero bits `ẑ`.
    pub fn count_zeros(&self) -> usize {
        self.bits.count_zeros()
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Whether two filters share parameters (same `m` and hash family), the
    /// precondition for union/intersection semantics.
    pub fn compatible_with(&self, other: &BloomFilter) -> bool {
        self.m() == other.m()
            && (Arc::ptr_eq(&self.hasher, &other.hasher) || self.hasher == other.hasher)
    }

    fn assert_compatible(&self, other: &BloomFilter) {
        assert!(
            self.compatible_with(other),
            "Bloom filters must share m and hash family for set operations"
        );
    }

    /// Whether `x` probes `k` **distinct** bit positions under this
    /// filter's hash family (see [`BloomHasher::probes_distinct_bits`]).
    pub fn probes_distinct_bits(&self, x: u64) -> bool {
        self.hasher.probes_distinct_bits(x)
    }

    /// Overwrites this filter's bit array with `other`'s, reusing the
    /// existing allocation — the hot-path sibling of `clone` for exact
    /// filter rebuilds (e.g. pruned-tree removals).
    pub fn copy_bits_from(&mut self, other: &BloomFilter) {
        self.assert_compatible(other);
        self.bits.copy_from(&other.bits);
    }

    /// `self ∪= other`: `B(A ∪ B) = B(A) | B(B)` (§3.1).
    pub fn union_with(&mut self, other: &BloomFilter) {
        self.assert_compatible(other);
        self.bits.union_with(&other.bits);
    }

    /// `self ∩= other`: `B(A) & B(B)`, a superset approximation of
    /// `B(A ∩ B)` (§3.1).
    pub fn intersect_with(&mut self, other: &BloomFilter) {
        self.assert_compatible(other);
        self.bits.intersect_with(&other.bits);
    }

    /// New filter holding `a & b`.
    pub fn intersection(a: &BloomFilter, b: &BloomFilter) -> BloomFilter {
        a.assert_compatible(b);
        let mut out = a.clone();
        out.bits.intersect_with(&b.bits);
        out
    }

    /// New filter holding `a | b`.
    pub fn union(a: &BloomFilter, b: &BloomFilter) -> BloomFilter {
        a.assert_compatible(b);
        let mut out = a.clone();
        out.bits.union_with(&b.bits);
        out
    }

    /// Popcount of `self & other` without materialising the intersection —
    /// the `t∧` input of the intersection-size estimator, and the single
    /// hottest operation of BST traversal.
    pub fn and_count(&self, other: &BloomFilter) -> usize {
        self.assert_compatible(other);
        self.bits.and_count(&other.bits)
    }

    /// True when `self & other` has no set bit.
    pub fn is_disjoint(&self, other: &BloomFilter) -> bool {
        self.assert_compatible(other);
        self.bits.is_disjoint(&other.bits)
    }

    /// Estimated number of stored elements, `n̂ = ln(ẑ/m) / (k·ln(1−1/m))`.
    pub fn estimate_cardinality(&self) -> f64 {
        estimate::cardinality_from_ones(self.m(), self.k(), self.count_ones())
    }

    /// Estimated `|A ∩ B|` from this filter and `other` via the
    /// Papapetrou et al. estimator (§5.3).
    pub fn estimate_intersection(&self, other: &BloomFilter) -> f64 {
        self.assert_compatible(other);
        let t1 = self.count_ones();
        let t2 = other.count_ones();
        let t_and = self.and_count(other);
        estimate::intersection_estimate(self.m(), self.k(), t1, t2, t_and)
    }

    /// Expected false-positive probability if this filter holds `n` keys.
    pub fn expected_fpp(&self, n: usize) -> f64 {
        estimate::false_positive_rate(self.m(), self.k(), n)
    }

    /// Heap bytes used by the bit array (hasher excluded; it is shared).
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher(kind: HashKind) -> Arc<BloomHasher> {
        Arc::new(BloomHasher::new(kind, 3, 4096, 100_000, 42))
    }

    #[test]
    fn no_false_negatives_all_kinds() {
        for kind in HashKind::ALL {
            let mut f = BloomFilter::new(hasher(kind));
            let keys: Vec<u64> = (0..500).map(|i| i * 17 + 3).collect();
            for &x in &keys {
                f.insert(x);
            }
            for &x in &keys {
                assert!(f.contains(x), "false negative for {x} under {kind}");
            }
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(hasher(HashKind::Murmur3));
        assert!(f.is_empty());
        for x in 0..1000 {
            assert!(!f.contains(x));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        // m=4096, k=3, n=300 -> fpp = (1 - e^{-900/4096})^3 ≈ 0.0077
        let mut f = BloomFilter::new(hasher(HashKind::Murmur3));
        for x in 0..300u64 {
            f.insert(x);
        }
        let theory = f.expected_fpp(300);
        let mut fp = 0usize;
        let trials = 50_000usize;
        for x in 0..trials as u64 {
            if f.contains(1_000_000 + x) {
                fp += 1;
            }
        }
        let measured = fp as f64 / trials as f64;
        assert!(
            (measured - theory).abs() < 0.01,
            "measured {measured}, theory {theory}"
        );
    }

    #[test]
    fn union_equals_filter_of_union() {
        let h = hasher(HashKind::Murmur3);
        let a_keys: Vec<u64> = (0..100).collect();
        let b_keys: Vec<u64> = (50..150).collect();
        let a = BloomFilter::from_keys(h.clone(), a_keys.iter().copied());
        let b = BloomFilter::from_keys(h.clone(), b_keys.iter().copied());
        let u = BloomFilter::union(&a, &b);
        let direct = BloomFilter::from_keys(h, a_keys.into_iter().chain(b_keys));
        assert_eq!(u.bits(), direct.bits(), "B(A∪B) == B(A)|B(B)");
    }

    #[test]
    fn intersection_superset_of_true_intersection() {
        let h = hasher(HashKind::Simple);
        let a = BloomFilter::from_keys(h.clone(), 0..100);
        let b = BloomFilter::from_keys(h.clone(), 50..150);
        let i = BloomFilter::intersection(&a, &b);
        // Every true intersection element must pass membership on the
        // intersected filter.
        for x in 50..100u64 {
            assert!(i.contains(x), "intersection lost {x}");
        }
    }

    #[test]
    fn and_count_matches_materialised_intersection() {
        let h = hasher(HashKind::Murmur3);
        let a = BloomFilter::from_keys(h.clone(), (0..200).map(|i| i * 3));
        let b = BloomFilter::from_keys(h, (0..200).map(|i| i * 5));
        let i = BloomFilter::intersection(&a, &b);
        assert_eq!(a.and_count(&b), i.count_ones());
    }

    #[test]
    fn cardinality_estimate_accurate() {
        let mut f = BloomFilter::with_params(HashKind::Murmur3, 3, 60_000, 1_000_000, 7);
        for x in 0..1000u64 {
            f.insert(x * 7 + 1);
        }
        let est = f.estimate_cardinality();
        assert!(
            (est - 1000.0).abs() < 30.0,
            "cardinality estimate {est} too far from 1000"
        );
    }

    #[test]
    fn intersection_estimate_accurate() {
        let h = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 60_000, 1 << 30, 7));
        // |A| = 1000, |B| = 1000, |A ∩ B| = 300.
        let a = BloomFilter::from_keys(h.clone(), 0..1000);
        let b = BloomFilter::from_keys(h, 700..1700);
        let est = a.estimate_intersection(&b);
        assert!(
            (est - 300.0).abs() < 40.0,
            "intersection estimate {est} too far from 300"
        );
    }

    #[test]
    fn disjoint_filters_estimate_near_zero() {
        let h = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 60_000, 1 << 30, 7));
        let a = BloomFilter::from_keys(h.clone(), 0..500);
        let b = BloomFilter::from_keys(h, 10_000..10_500);
        let est = a.estimate_intersection(&b);
        assert!(est < 20.0, "disjoint estimate {est} should be near zero");
    }

    #[test]
    #[should_panic(expected = "share m and hash family")]
    fn incompatible_filters_panic() {
        let a = BloomFilter::with_params(HashKind::Murmur3, 3, 1024, 1000, 1);
        let mut b = BloomFilter::with_params(HashKind::Murmur3, 3, 2048, 1000, 1);
        b.union_with(&a);
    }

    #[test]
    #[should_panic(expected = "share m and hash family")]
    fn different_seeds_are_incompatible() {
        let a = BloomFilter::with_params(HashKind::Murmur3, 3, 1024, 1000, 1);
        let mut b = BloomFilter::with_params(HashKind::Murmur3, 3, 1024, 1000, 2);
        b.union_with(&a);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::with_params(HashKind::Simple, 3, 512, 10_000, 0);
        f.insert(42);
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(42));
    }

    #[test]
    fn blocked_word_paths_match_positions_reference() {
        // The word-mask insert/contains fast paths must agree exactly
        // with a per-bit implementation driven by `positions()`.
        let h = hasher(HashKind::DeltaBlocked);
        let mut fast = BloomFilter::new(h.clone());
        let mut reference = crate::bitvec::BitVec::new(4096);
        let keys: Vec<u64> = (0..400).map(|i| i * 13 + 1).collect();
        for &x in &keys {
            fast.insert(x);
            let mut pos = [0usize; MAX_K];
            h.positions(x, &mut pos[..h.k()]);
            for &p in &pos[..h.k()] {
                reference.set(p);
            }
        }
        assert_eq!(fast.bits(), &reference, "insert fast path diverged");
        for x in 0..2000u64 {
            let mut pos = [0usize; MAX_K];
            h.positions(x, &mut pos[..h.k()]);
            let naive = pos[..h.k()].iter().all(|&p| reference.get(p));
            assert_eq!(fast.contains(x), naive, "contains diverged for {x}");
        }
    }

    #[test]
    fn for_each_member_matches_contains_loop() {
        for kind in HashKind::ALL {
            let f = BloomFilter::from_keys(hasher(kind), (0..300).map(|i| i * 11));
            let candidates: Vec<u64> = (0..5000).collect();
            let mut kernel = Vec::new();
            let probed = f.for_each_member(candidates.iter().copied(), |x| kernel.push(x));
            assert_eq!(probed, candidates.len() as u64);
            let naive: Vec<u64> = candidates
                .iter()
                .copied()
                .filter(|&x| f.contains(x))
                .collect();
            assert_eq!(kernel, naive, "kernel diverged under {kind}");
        }
    }

    #[test]
    fn codec_roundtrip_preserves_contents() {
        let mut f = BloomFilter::with_params(HashKind::Md5, 2, 256, 5000, 9);
        f.insert(17);
        f.insert(4999);
        let bytes = crate::codec::encode(&f);
        let back = crate::codec::decode(&bytes).unwrap();
        assert!(back.contains(17));
        assert!(back.contains(4999));
        assert!(back.compatible_with(&f));
    }
}
