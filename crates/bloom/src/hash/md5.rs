//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! MD5 is cryptographically broken but the paper evaluates it purely as an
//! *expensive* hash family for Bloom filters (Figure 7): the point of the
//! experiment is that DictionaryAttack pays the hash cost `M` times per
//! sample while the BloomSampleTree defers membership queries until most of
//! the namespace is pruned. The implementation is verified against the full
//! RFC 1321 test suite.

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of |sin(i+1)| * 2^32 (RFC 1321 T table).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// Streaming MD5 state. Feed bytes with [`Md5::update`] and finish with
/// [`Md5::finalize`].
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh digest state.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads and produces the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // 0x80 then zeros until 56 mod 64, then the 8-byte little-endian
        // bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual: update() would count these bytes into len, but len was
        // already captured.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);

        let mut out = [0u8; 16];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&s.to_le_bytes());
        }
        out
    }
}

fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
    let mut m = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }

    let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// One-shot digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Digests a seed and a `u64` key, returning the digest as two `u64` halves
/// — the form consumed by the double-hashing Bloom family.
#[inline]
pub fn md5_u64(key: u64, seed: u32) -> (u64, u64) {
    let mut input = [0u8; 12];
    input[..4].copy_from_slice(&seed.to_le_bytes());
    input[4..].copy_from_slice(&key.to_le_bytes());
    let d = md5(&input);
    let mut lo = [0u8; 8];
    let mut hi = [0u8; 8];
    lo.copy_from_slice(&d[..8]);
    hi.copy_from_slice(&d[8..]);
    (u64::from_le_bytes(lo), u64::from_le_bytes(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 16]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The full RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_suite() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(
                hex(md5(input)),
                *expected,
                "MD5 mismatch for {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = md5(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 100] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn length_padding_boundaries() {
        // Inputs of length 55, 56, 57, 63, 64, 65 hit all padding branches.
        // Cross-check a few against values computed with the reference
        // implementation.
        let a55 = md5(&[b'a'; 55]);
        assert_eq!(hex(a55), "ef1772b6dff9a122358552954ad0df65");
        let a56 = md5(&[b'a'; 56]);
        assert_eq!(hex(a56), "3b0c8ac703f828b04c6c197006d17218");
        let a64 = md5(&[b'a'; 64]);
        assert_eq!(hex(a64), "014842d480b571495a4a0363793f7367");
    }

    #[test]
    fn md5_u64_varies_with_seed_and_key() {
        assert_ne!(md5_u64(1, 0), md5_u64(1, 1));
        assert_ne!(md5_u64(1, 0), md5_u64(2, 0));
        assert_eq!(md5_u64(99, 7), md5_u64(99, 7));
    }
}
