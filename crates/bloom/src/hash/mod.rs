//! Hash families for Bloom filters.
//!
//! The paper evaluates three families (Table 1, Figure 7):
//!
//! * **Simple** — the weakly invertible affine family `((a·x + b) mod p) mod m`
//!   ([`AffineFamily`]). Cheap to evaluate, and the only family supporting
//!   the HashInvert baseline because bit positions can be inverted back to
//!   candidate namespace elements.
//! * **Murmur3** — MurmurHash3 x64-128 ([`murmur3`]) combined with
//!   Kirsch–Mitzenmacher double hashing: `h_i = h1 + i·h2 (mod m)`.
//! * **MD5** — RFC 1321 MD5 ([`md5`]), also via double hashing; deliberately
//!   expensive, used to show how hash cost shifts the BST/DictionaryAttack
//!   trade-off.

pub mod affine;
pub mod blocked;
pub mod md5;
pub mod murmur3;
pub mod prime;

pub use affine::{AffineFamily, Preimages};
pub use blocked::{BlockProbe, BlockedFamily, BLOCK_WORDS, MIN_BLOCKED_BITS};

/// Which base hash a family uses. Runtime-selectable because the experiments
/// sweep over families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HashKind {
    /// Weakly invertible affine family (the paper's "Simple").
    Simple,
    /// MurmurHash3 x64-128 with double hashing.
    Murmur3,
    /// MD5 with double hashing.
    Md5,
    /// Cache-line-blocked murmur3 delta double hashing: all `k` probes
    /// of a key land in one 64-byte block ([`BlockedFamily`]). Not in
    /// the paper's family sweep; requires `m >=` [`MIN_BLOCKED_BITS`].
    DeltaBlocked,
}

impl HashKind {
    /// All supported kinds: the paper's three families in the order the
    /// paper lists them, then the blocked layout.
    pub const ALL: [HashKind; 4] = [
        HashKind::Simple,
        HashKind::Murmur3,
        HashKind::Md5,
        HashKind::DeltaBlocked,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Simple => "Simple",
            HashKind::Murmur3 => "Murmur3",
            HashKind::Md5 => "MD5",
            HashKind::DeltaBlocked => "DeltaBlocked",
        }
    }
}

impl std::fmt::Display for HashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for HashKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "simple" | "affine" => Ok(HashKind::Simple),
            "murmur" | "murmur3" => Ok(HashKind::Murmur3),
            "md5" => Ok(HashKind::Md5),
            "blocked" | "delta-blocked" | "deltablocked" => Ok(HashKind::DeltaBlocked),
            other => Err(format!("unknown hash kind: {other}")),
        }
    }
}

/// Kirsch–Mitzenmacher double-hashing family over a 128-bit base hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoubleHashFamily {
    kind: HashKind,
    k: usize,
    m: usize,
    seed: u32,
}

impl DoubleHashFamily {
    /// Creates a `k`-function family onto `[0, m)` from `seed`.
    ///
    /// # Panics
    /// Panics if `k` is outside `1..=32`, `m < 2`, or `kind` is not a
    /// plain double-hash family ([`HashKind::Simple`] carries affine
    /// state, [`HashKind::DeltaBlocked`] carries block geometry;
    /// construct both via [`BloomHasher::new`]).
    pub fn new(kind: HashKind, k: usize, m: usize, seed: u32) -> Self {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        assert!(m >= 2, "filter size must be at least 2 bits, got {m}");
        assert!(
            matches!(kind, HashKind::Murmur3 | HashKind::Md5),
            "use AffineFamily / BlockedFamily for the {kind} kind"
        );
        DoubleHashFamily { kind, k, m, seed }
    }

    #[inline]
    fn base(&self, x: u64) -> (u64, u64) {
        match self.kind {
            HashKind::Murmur3 => murmur3::murmur3_u64(x, self.seed),
            HashKind::Md5 => md5::md5_u64(x, self.seed),
            // bst-lint: allow(L001) — constructor admits only the two plain kinds
            _ => unreachable!("checked at construction"),
        }
    }

    /// Bit position of key `x` under hash `i`.
    #[inline]
    pub fn position(&self, x: u64, i: usize) -> usize {
        let (h1, h2) = self.base(x);
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m as u64) as usize
    }

    /// The seed the family was derived from.
    #[inline]
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// All `k` positions of `x`, computed from a single base-hash evaluation.
    #[inline]
    pub fn positions(&self, x: u64, out: &mut [usize]) {
        debug_assert!(out.len() >= self.k);
        let (h1, h2) = self.base(x);
        let m = self.m as u64;
        let mut acc = h1;
        for slot in out.iter_mut().take(self.k) {
            *slot = (acc % m) as usize;
            acc = acc.wrapping_add(h2);
        }
    }
}

/// A runtime-selected Bloom filter hash family.
///
/// Every filter participating in a BloomSampleTree — tree nodes and query
/// filters alike — must share one `BloomHasher` (same `m`, same functions),
/// because the tree constantly intersects them (§5.1).
#[derive(Clone, Debug, PartialEq)]
pub enum BloomHasher {
    /// The paper's "Simple" weakly invertible family.
    Affine(AffineFamily),
    /// Murmur3 or MD5 double hashing.
    Double(DoubleHashFamily),
    /// Cache-line-blocked delta double hashing.
    Blocked(BlockedFamily),
}

impl BloomHasher {
    /// Builds a family of `kind` with `k` functions onto `[0, m)` for keys in
    /// `[0, namespace)`, deterministically seeded.
    pub fn new(kind: HashKind, k: usize, m: usize, namespace: u64, seed: u64) -> Self {
        match kind {
            HashKind::Simple => BloomHasher::Affine(AffineFamily::new(k, m, namespace, seed)),
            HashKind::DeltaBlocked => BloomHasher::Blocked(BlockedFamily::new(k, m, seed as u32)),
            other => BloomHasher::Double(DoubleHashFamily::new(other, k, m, seed as u32)),
        }
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        match self {
            BloomHasher::Affine(f) => f.k(),
            BloomHasher::Double(f) => f.k,
            BloomHasher::Blocked(f) => f.k(),
        }
    }

    /// Filter size `m` in bits.
    #[inline]
    pub fn m(&self) -> usize {
        match self {
            BloomHasher::Affine(f) => f.m(),
            BloomHasher::Double(f) => f.m,
            BloomHasher::Blocked(f) => f.m(),
        }
    }

    /// Which family this is.
    #[inline]
    pub fn kind(&self) -> HashKind {
        match self {
            BloomHasher::Affine(_) => HashKind::Simple,
            BloomHasher::Double(f) => f.kind,
            BloomHasher::Blocked(_) => HashKind::DeltaBlocked,
        }
    }

    /// Bit position of key `x` under hash function `i < k`.
    #[inline]
    pub fn position(&self, x: u64, i: usize) -> usize {
        match self {
            BloomHasher::Affine(f) => f.position(x, i),
            BloomHasher::Double(f) => f.position(x, i),
            BloomHasher::Blocked(f) => f.position(x, i),
        }
    }

    /// All `k` positions of `x` into `out[..k]`.
    #[inline]
    pub fn positions(&self, x: u64, out: &mut [usize]) {
        match self {
            BloomHasher::Affine(f) => f.positions(x, out),
            BloomHasher::Double(f) => f.positions(x, out),
            BloomHasher::Blocked(f) => f.positions(x, out),
        }
    }

    /// The word-level probe footprint of `x`, when the layout supports
    /// it (only the blocked family does). Fast paths branch on this
    /// once and fall back to per-bit probes for classic layouts.
    #[inline]
    pub fn block_probe(&self, x: u64) -> Option<BlockProbe> {
        match self {
            BloomHasher::Blocked(f) => Some(f.block_probe(x)),
            _ => None,
        }
    }

    /// Whether `x` probes `k` **distinct** bit positions. Double hashing
    /// (`h1 + i·h2 mod m`) can collide within one key's probes (e.g.
    /// `h2 ≡ 0 (mod m)`); such a key sets fewer than `k` bits in any
    /// filter holding it, which weakens `t∧ ≥ k` soundness arguments
    /// for that key. Allocation-free for `k ≤ 16` (the practical range;
    /// the paper uses `k = 3`).
    pub fn probes_distinct_bits(&self, x: u64) -> bool {
        // The blocked family's odd offset stride is a permutation mod
        // 128: its probes are distinct by construction, for every key.
        if matches!(self, BloomHasher::Blocked(_)) {
            return true;
        }
        let k = self.k();
        if k <= 16 {
            let mut buf = [0usize; 16];
            let pos = &mut buf[..k];
            self.positions(x, pos);
            // O(k²) pairwise scan over the stack buffer: cheaper than a
            // sort at these sizes and allocation-free.
            for i in 1..k {
                if pos[..i].contains(&pos[i]) {
                    return false;
                }
            }
            true
        } else {
            let mut pos = vec![0usize; k];
            self.positions(x, &mut pos);
            pos.sort_unstable();
            pos.windows(2).all(|w| w[0] != w[1])
        }
    }

    /// The seed the family was derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        match self {
            BloomHasher::Affine(f) => f.seed(),
            BloomHasher::Double(f) => f.seed() as u64,
            BloomHasher::Blocked(f) => f.seed() as u64,
        }
    }

    /// The namespace size the family was built for, where it matters
    /// (affine families are namespace-aware; double-hash families are not).
    #[inline]
    pub fn namespace(&self) -> Option<u64> {
        match self {
            BloomHasher::Affine(f) => Some(f.namespace()),
            BloomHasher::Double(_) | BloomHasher::Blocked(_) => None,
        }
    }

    /// Whether the family is weakly invertible (only the affine family is).
    #[inline]
    pub fn is_invertible(&self) -> bool {
        matches!(self, BloomHasher::Affine(_))
    }

    /// Enumerates the namespace preimages of `bit` under hash `i`, if the
    /// family is invertible.
    pub fn invert(&self, i: usize, bit: usize) -> Option<Preimages> {
        match self {
            BloomHasher::Affine(f) => Some(f.invert(i, bit)),
            BloomHasher::Double(_) | BloomHasher::Blocked(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct_and_hash() {
        for kind in HashKind::ALL {
            let h = BloomHasher::new(kind, 3, 1000, 100_000, 1);
            assert_eq!(h.k(), 3);
            assert_eq!(h.m(), 1000);
            assert_eq!(h.kind(), kind);
            let mut out = [0usize; 3];
            h.positions(12345, &mut out);
            for (i, &pos) in out.iter().enumerate() {
                assert!(pos < 1000);
                assert_eq!(pos, h.position(12345, i), "kind {kind}, i {i}");
            }
        }
    }

    #[test]
    fn only_affine_inverts() {
        let simple = BloomHasher::new(HashKind::Simple, 2, 100, 10_000, 5);
        assert!(simple.is_invertible());
        assert!(simple.invert(0, 7).is_some());
        for kind in [HashKind::Murmur3, HashKind::Md5] {
            let h = BloomHasher::new(kind, 2, 100, 10_000, 5);
            assert!(!h.is_invertible());
            assert!(h.invert(0, 7).is_none());
        }
        let h = BloomHasher::new(HashKind::DeltaBlocked, 2, 128, 10_000, 5);
        assert!(!h.is_invertible());
        assert!(h.invert(0, 7).is_none());
        assert!(h.namespace().is_none());
    }

    #[test]
    fn blocked_hasher_dispatch_is_consistent() {
        let h = BloomHasher::new(HashKind::DeltaBlocked, 5, 4096, 100_000, 21);
        assert_eq!(h.kind(), HashKind::DeltaBlocked);
        assert_eq!(h.seed(), 21);
        let mut out = [0usize; 5];
        h.positions(777, &mut out);
        for (i, &pos) in out.iter().enumerate() {
            assert_eq!(pos, h.position(777, i));
        }
        // Probes are distinct for every key, and the word footprint
        // matches the enumerated positions.
        let p = h.block_probe(777).expect("blocked exposes word probes");
        assert_eq!(
            p.mask0.count_ones() + p.mask1.count_ones(),
            5,
            "k distinct bits"
        );
        for x in 0u64..200 {
            assert!(h.probes_distinct_bits(x));
        }
        // Classic layouts expose no word probe.
        let classic = BloomHasher::new(HashKind::Murmur3, 5, 4096, 100_000, 21);
        assert!(classic.block_probe(777).is_none());
    }

    #[test]
    fn inverted_preimages_hash_back() {
        let h = BloomHasher::new(HashKind::Simple, 3, 257, 50_000, 9);
        for i in 0..3 {
            for bit in [0usize, 100, 256] {
                for x in h.invert(i, bit).unwrap().take(50) {
                    assert_eq!(h.position(x, i), bit);
                    assert!(x < 50_000);
                }
            }
        }
    }

    #[test]
    fn double_hash_positions_use_single_base_eval() {
        let f = DoubleHashFamily::new(HashKind::Murmur3, 5, 997, 3);
        let mut out = [0usize; 5];
        f.positions(777, &mut out);
        for (i, &pos) in out.iter().enumerate() {
            assert_eq!(pos, f.position(777, i));
        }
    }

    #[test]
    fn kind_parsing() {
        assert_eq!("simple".parse::<HashKind>().unwrap(), HashKind::Simple);
        assert_eq!("Murmur3".parse::<HashKind>().unwrap(), HashKind::Murmur3);
        assert_eq!("MD5".parse::<HashKind>().unwrap(), HashKind::Md5);
        assert_eq!(
            "blocked".parse::<HashKind>().unwrap(),
            HashKind::DeltaBlocked
        );
        assert_eq!(
            "delta-blocked".parse::<HashKind>().unwrap(),
            HashKind::DeltaBlocked
        );
        assert!("sha1".parse::<HashKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "use AffineFamily")]
    fn double_rejects_simple_kind() {
        let _ = DoubleHashFamily::new(HashKind::Simple, 3, 100, 0);
    }

    #[test]
    fn rebuild_from_params_is_identical() {
        let h = BloomHasher::new(HashKind::Murmur3, 4, 2048, 1 << 20, 77);
        let back = BloomHasher::new(HashKind::Murmur3, 4, 2048, 1 << 20, 77);
        assert_eq!(h, back);
        assert_eq!(h.position(555, 2), back.position(555, 2));
    }
}
