//! The "Simple" weakly invertible hash family from the paper:
//! `h_i(x) = ((a_i · x + b_i) mod p) mod m`.
//!
//! The paper (§4) defines a hash `h` as *weakly invertible* when, given
//! `h(x)`, one can enumerate the set of values that hash to `h(x)`. With
//! `p` prime and `a_i` nonzero, `x ↦ (a_i·x + b_i) mod p` is a bijection on
//! `[0, p)`, so the preimages of a bit position `s` are exactly
//! `{ a_i⁻¹ (v − b_i) mod p : v ≡ s (mod m), v < p }` — about `p/m ≈ M/m`
//! values, matching the paper's `O(M/m)` inversion cost.
//!
//! `p` is chosen as the smallest prime at least `max(M, m+1)` so that every
//! namespace element is in the bijection's domain and the outer `mod m` is
//! non-degenerate.

use super::prime::{inv_mod, mul_mod, next_prime};

/// One affine coefficient pair with its precomputed inverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Coeff {
    a: u64,
    b: u64,
    a_inv: u64,
}

/// A family of `k` weakly invertible affine hash functions onto `[0, m)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineFamily {
    m: usize,
    /// Prime modulus `>= max(namespace, m + 1)`.
    p: u64,
    /// Namespace size `M`: valid keys are `0..namespace`.
    namespace: u64,
    coeffs: Vec<Coeff>,
    seed: u64,
}

/// Deterministic splitmix64 step, used to derive coefficients from the seed
/// without tying the on-disk format to any RNG crate's stream stability.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl AffineFamily {
    /// Builds `k` affine hash functions for filters of `m` bits over the
    /// namespace `[0, namespace)`, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 32`, `m < 2`, or `namespace == 0`.
    pub fn new(k: usize, m: usize, namespace: u64, seed: u64) -> Self {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        assert!(m >= 2, "filter size must be at least 2 bits, got {m}");
        assert!(namespace > 0, "namespace must be non-empty");
        let p = next_prime(namespace.max(m as u64 + 1));
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let coeffs = (0..k)
            .map(|_| {
                // a in [1, p), b in [0, p). Rejection keeps the draw uniform.
                let a = loop {
                    let cand = splitmix64(&mut state) % p;
                    if cand != 0 {
                        break cand;
                    }
                };
                let b = splitmix64(&mut state) % p;
                Coeff {
                    a,
                    b,
                    a_inv: inv_mod(a, p),
                }
            })
            .collect();
        AffineFamily {
            m,
            p,
            namespace,
            coeffs,
            seed,
        }
    }

    /// Number of hash functions.
    #[inline]
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Filter size in bits.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Namespace size `M`.
    #[inline]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// The prime modulus.
    #[inline]
    pub fn prime(&self) -> u64 {
        self.p
    }

    /// The seed the coefficients were derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bit position of key `x` under hash `i`.
    #[inline]
    pub fn position(&self, x: u64, i: usize) -> usize {
        let c = &self.coeffs[i];
        let v = (mul_mod(c.a, x, self.p) + c.b) % self.p;
        (v % self.m as u64) as usize
    }

    /// All `k` bit positions of key `x`, written into `out[..k]`.
    #[inline]
    pub fn positions(&self, x: u64, out: &mut [usize]) {
        debug_assert!(out.len() >= self.coeffs.len());
        for (i, slot) in out.iter_mut().take(self.coeffs.len()).enumerate() {
            *slot = self.position(x, i);
        }
    }

    /// Iterator over every namespace element `y` with `h_i(y) == bit`.
    ///
    /// Cost: `O(p/m)` iterations regardless of how many preimages land in
    /// the namespace.
    pub fn invert(&self, i: usize, bit: usize) -> Preimages {
        assert!(i < self.coeffs.len(), "hash index {i} out of range");
        assert!((bit as u64) < self.m as u64, "bit {bit} out of range");
        let c = self.coeffs[i];
        Preimages {
            v: bit as u64,
            step: self.m as u64,
            p: self.p,
            b: c.b,
            a_inv: c.a_inv,
            namespace: self.namespace,
        }
    }
}

/// Iterator over the namespace preimages of one bit position under one
/// affine hash function. Yields values in no particular order of magnitude
/// (they follow the inverse-image sequence).
pub struct Preimages {
    /// Next candidate value in `[0, p)` congruent to the bit mod `m`.
    v: u64,
    step: u64,
    p: u64,
    b: u64,
    a_inv: u64,
    namespace: u64,
}

impl Iterator for Preimages {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.v < self.p {
            let diff = (self.v + self.p - self.b % self.p) % self.p;
            let x = mul_mod(self.a_inv, diff, self.p);
            self.v += self.step;
            if x < self.namespace {
                return Some(x);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_in_range() {
        let fam = AffineFamily::new(3, 1000, 100_000, 42);
        let mut out = [0usize; 3];
        for x in (0..100_000u64).step_by(997) {
            fam.positions(x, &mut out);
            for &pos in &out {
                assert!(pos < 1000);
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = AffineFamily::new(3, 500, 10_000, 7);
        let b = AffineFamily::new(3, 500, 10_000, 7);
        assert_eq!(a, b);
        let c = AffineFamily::new(3, 500, 10_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn inversion_is_complete_and_sound() {
        // Exhaustively check: for every bit, invert() returns exactly the
        // set of namespace elements hashing there.
        let namespace = 5000u64;
        let m = 97usize;
        let fam = AffineFamily::new(2, m, namespace, 3);
        for i in 0..2 {
            let mut by_bit: Vec<Vec<u64>> = vec![Vec::new(); m];
            for x in 0..namespace {
                by_bit[fam.position(x, i)].push(x);
            }
            for (bit, expected) in by_bit.iter().enumerate() {
                let mut got: Vec<u64> = fam.invert(i, bit).collect();
                got.sort_unstable();
                assert_eq!(&got, expected, "hash {i}, bit {bit}");
            }
        }
    }

    #[test]
    fn inversion_cost_is_p_over_m() {
        let fam = AffineFamily::new(1, 100, 1_000_000, 1);
        // p/m ≈ 10000; every preimage candidate is < p so the iterator
        // yields at most ceil(p/m) values.
        let count = fam.invert(0, 50).count();
        let upper = (fam.prime() / 100 + 1) as usize;
        assert!(count <= upper, "{count} > {upper}");
        assert!(count >= 9_000, "{count} suspiciously small");
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let m = 256usize;
        let fam = AffineFamily::new(1, m, 1_000_000, 99);
        let mut counts = vec![0usize; m];
        for x in 0..100_000u64 {
            counts[fam.position(x, 0)] += 1;
        }
        let expected = 100_000.0 / m as f64;
        for (bit, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.7..1.3).contains(&ratio),
                "bit {bit} count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn prime_exceeds_namespace_and_m() {
        let fam = AffineFamily::new(2, 1 << 20, 100, 0);
        assert!(fam.prime() > (1 << 20) as u64);
        let fam2 = AffineFamily::new(2, 100, 1 << 30, 0);
        assert!(fam2.prime() >= 1 << 30);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = AffineFamily::new(0, 100, 1000, 0);
    }

    #[test]
    fn rebuild_from_params_is_identical() {
        // Families rebuild deterministically from (k, m, namespace, seed) —
        // the property the binary codec relies on instead of serialising
        // coefficients.
        let fam = AffineFamily::new(3, 512, 65_536, 11);
        let back = AffineFamily::new(3, 512, 65_536, 11);
        assert_eq!(fam, back);
        assert_eq!(fam.position(1234, 2), back.position(1234, 2));
    }
}
