//! Cache-line-blocked Bloom probe family (`HashKind::DeltaBlocked`).
//!
//! The classic double-hash family scatters a key's `k` probes across the
//! whole `m`-bit filter, so a cold membership test costs up to `k` cache
//! misses. The blocked layout confines all `k` probes of a key to one
//! 64-byte-aligned region: the first hash half picks a *block* of up to
//! eight consecutive words, a second draw picks **two distinct words**
//! inside it, and odd-stride delta double hashing places the `k` bit
//! offsets inside that 128-bit word pair. Membership then reads one or
//! two `u64` words and compares masks; insertion ORs the same masks in.
//!
//! Two structural properties the rest of the tree relies on:
//!
//! * **Determinism across filters.** Like every family here, positions
//!   are a pure function of `(key, k, m, seed)`, so all filters in a tree
//!   agree on where a key lives — the `t∧ ≥ k` descent soundness argument
//!   (DESIGN.md "Filter layouts") carries over unchanged.
//! * **Probes are always distinct.** The offset stride is forced odd, so
//!   `i ↦ o₁ + i·o₂ (mod 128)` is a permutation and the `k ≤ 32` probes
//!   hit `k` distinct bits. `BloomHasher::probes_distinct_bits` is
//!   constantly `true` for this family, so the collision census that guards
//!   count-delta repairs stays empty for blocked trees.

use super::murmur3::murmur3_u64;

/// Words per block: 8 × 64 bits = one 64-byte cache line.
pub const BLOCK_WORDS: usize = 8;

/// Minimum filter size for the blocked layout: two full words, so a
/// block always holds a distinct word pair.
pub const MIN_BLOCKED_BITS: usize = 128;

/// The resolved probe footprint of one key: two word indices into the
/// filter's backing `u64` array and the bit masks to test/OR there.
/// `mask1` may be zero when every probe lands in the first word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockProbe {
    /// Index of the first probed word in the filter's word array.
    pub word0: usize,
    /// Index of the second probed word (distinct from `word0`).
    pub word1: usize,
    /// Bits of `word0` the key occupies.
    pub mask0: u64,
    /// Bits of `word1` the key occupies (possibly empty).
    pub mask1: u64,
}

/// Blocked delta-double-hash family onto `[0, m)`.
///
/// Blocks tile the first `⌊m/64⌋` full words in groups of
/// [`BLOCK_WORDS`] (fewer when the filter is smaller than one line);
/// trailing words that don't fill a block — and the partial tail word —
/// are simply never probed. All produced positions are `< m`, so the
/// [`crate::BitVec`] tail invariant is preserved by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedFamily {
    k: usize,
    m: usize,
    seed: u32,
    /// Words per block (`min(BLOCK_WORDS, full words)`, always ≥ 2).
    block_words: usize,
    /// Number of non-overlapping blocks.
    n_blocks: usize,
}

impl BlockedFamily {
    /// Creates a `k`-probe blocked family onto `[0, m)` from `seed`.
    ///
    /// # Panics
    /// Panics if `k` is outside `1..=32` or `m <` [`MIN_BLOCKED_BITS`]
    /// (the layout needs at least one two-word block). Fallible entry
    /// points (codec decode, system builders) check these bounds first
    /// and return typed errors.
    pub fn new(k: usize, m: usize, seed: u32) -> Self {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        assert!(
            m >= MIN_BLOCKED_BITS,
            "blocked layout needs m >= {MIN_BLOCKED_BITS} bits, got {m}"
        );
        let full_words = m / 64;
        let block_words = BLOCK_WORDS.min(full_words);
        let n_blocks = full_words / block_words;
        BlockedFamily {
            k,
            m,
            seed,
            block_words,
            n_blocks,
        }
    }

    /// Number of probes `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Filter size `m` in bits.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The seed the family was derived from.
    #[inline]
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// The block/word/offset draws for key `x`: absolute indices of the
    /// two distinct probed words plus the offset-generation parameters.
    /// One murmur3 evaluation feeds everything.
    #[inline]
    fn draws(&self, x: u64) -> (usize, usize, u64, u64) {
        let (h1, h2) = murmur3_u64(x, self.seed);
        // This runs once per key on the membership/weighing hot path, so
        // no runtime integer division is allowed anywhere in it (~20-40
        // cycles each would dominate the two word loads that follow):
        // the block index uses a Lemire multiply-shift range reduction,
        // and the word picks use constant divisors the compiler strength-
        // reduces to multiplies.
        let base = ((h1 as u128 * self.n_blocks as u128) >> 64) as usize * self.block_words;
        let (w0, w1) = if self.block_words == BLOCK_WORDS {
            // Full 8-word block: distinct second word via an offset in
            // 1..=7 from the first, everything constant-divisor.
            let w0 = h2 & 7;
            let w1 = (w0 + 1 + (h2 >> 8) % 7) & 7;
            (w0, w1)
        } else {
            // Narrow block (m < 512): runtime divisors, cold by
            // construction — such filters are a few cache lines total.
            let bw = self.block_words as u64;
            let w0 = h2 % bw;
            let w1 = (w0 + 1 + (h2 >> 8) % (bw - 1)) % bw;
            (w0, w1)
        };
        // Offsets into the 128-bit word pair: odd stride ⇒ the map
        // i ↦ o1 + i·o2 (mod 128) is a permutation, so all k ≤ 32
        // probes hit distinct bits.
        let o1 = (h1 >> 16) % 128;
        let o2 = ((h2 >> 16) % 128) | 1;
        (base + w0 as usize, base + w1 as usize, o1, o2)
    }

    /// The full word-level probe footprint of `x`.
    #[inline]
    pub fn block_probe(&self, x: u64) -> BlockProbe {
        let (word0, word1, o1, o2) = self.draws(x);
        // Branchless mask build: accumulate all k probes into one u128
        // (a variable 128-bit shift instead of a taken/not-taken split
        // on which word the bit lands in), then split into the word
        // pair's masks.
        let mut mask = 0u128;
        let mut off = o1;
        for _ in 0..self.k {
            mask |= 1u128 << (off % 128);
            off = off.wrapping_add(o2);
        }
        BlockProbe {
            word0,
            word1,
            mask0: mask as u64,
            mask1: (mask >> 64) as u64,
        }
    }

    /// Bit position of key `x` under probe `i`, consistent with
    /// [`Self::block_probe`]: probe `i` is bit `o1 + i·o2 (mod 128)` of
    /// the `(word0, word1)` pair.
    #[inline]
    pub fn position(&self, x: u64, i: usize) -> usize {
        let (word0, word1, o1, o2) = self.draws(x);
        let bit = (o1.wrapping_add((i as u64).wrapping_mul(o2)) % 128) as usize;
        if bit < 64 {
            word0 * 64 + bit
        } else {
            word1 * 64 + (bit - 64)
        }
    }

    /// All `k` positions of `x`, from a single base-hash evaluation.
    #[inline]
    pub fn positions(&self, x: u64, out: &mut [usize]) {
        debug_assert!(out.len() >= self.k);
        let (word0, word1, o1, o2) = self.draws(x);
        let mut off = o1;
        for slot in out.iter_mut().take(self.k) {
            let bit = (off % 128) as usize;
            *slot = if bit < 64 {
                word0 * 64 + bit
            } else {
                word1 * 64 + (bit - 64)
            };
            off = off.wrapping_add(o2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_agree_with_block_probe() {
        for m in [128usize, 192, 512, 4096, 60_000] {
            let f = BlockedFamily::new(7, m, 9);
            for x in 0u64..500 {
                let p = f.block_probe(x);
                let mut out = [0usize; 7];
                f.positions(x, &mut out);
                let (mut mask0, mut mask1) = (0u64, 0u64);
                for (i, &pos) in out.iter().enumerate() {
                    assert_eq!(pos, f.position(x, i), "x {x} probe {i}");
                    assert!(pos < m, "position {pos} out of range for m {m}");
                    if pos / 64 == p.word0 {
                        mask0 |= 1 << (pos % 64);
                    } else {
                        assert_eq!(pos / 64, p.word1, "x {x} probe {i} off-block");
                        mask1 |= 1 << (pos % 64);
                    }
                }
                assert_eq!((mask0, mask1), (p.mask0, p.mask1), "x {x}");
            }
        }
    }

    #[test]
    fn probes_always_distinct() {
        // Odd stride mod 128 is a permutation: even k = 32 probes are
        // all distinct, the property the census logic relies on.
        let f = BlockedFamily::new(32, 8192, 3);
        let mut out = [0usize; 32];
        for x in 0u64..2000 {
            f.positions(x, &mut out);
            let mut seen = out.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 32, "duplicate probe bits for key {x}");
        }
    }

    #[test]
    fn probe_words_stay_inside_one_block() {
        let f = BlockedFamily::new(5, 4096, 11);
        for x in 0u64..1000 {
            let p = f.block_probe(x);
            assert_ne!(p.word0, p.word1, "key {x} probes one word twice");
            assert_eq!(p.word0 / BLOCK_WORDS, p.word1 / BLOCK_WORDS, "key {x}");
            assert!(p.word1 < 4096 / 64);
        }
    }

    #[test]
    fn small_filters_use_narrow_blocks() {
        // 192 bits = 3 full words: one 3-word block, nothing probed in
        // any partial tail.
        let f = BlockedFamily::new(4, 192, 5);
        for x in 0u64..500 {
            let p = f.block_probe(x);
            assert!(p.word0 < 3 && p.word1 < 3, "key {x} outside block");
        }
    }

    #[test]
    fn unblocked_tail_words_never_probed() {
        // 1234 bits = 19 full words → two 8-word blocks; words 16..19
        // and the 18-bit tail are dead by construction.
        let f = BlockedFamily::new(6, 1234, 7);
        let mut out = [0usize; 6];
        for x in 0u64..2000 {
            f.positions(x, &mut out);
            assert!(out.iter().all(|&p| p < 16 * 64), "key {x}: {out:?}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = BlockedFamily::new(3, 2048, 1);
        let b = BlockedFamily::new(3, 2048, 1);
        let c = BlockedFamily::new(3, 2048, 2);
        assert_eq!(a.block_probe(42), b.block_probe(42));
        assert_ne!(a.block_probe(42), c.block_probe(42));
    }

    #[test]
    #[should_panic(expected = "blocked layout needs m >= 128")]
    fn rejects_sub_block_m() {
        let _ = BlockedFamily::new(3, 127, 0);
    }
}
