//! Prime-field arithmetic for the weakly invertible affine hash family.
//!
//! The affine family maps `x ↦ ((a·x + b) mod p) mod m` with `p` a prime just
//! above the namespace size, so inversion costs `O(p/m) ≈ O(M/m)` — exactly
//! the bound the paper claims for HashInvert (§4). This module provides
//! deterministic Miller–Rabin primality for `u64`, next-prime search, and
//! modular inverse.

/// `(a * b) mod p` without overflow.
#[inline]
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

/// `(base ^ exp) mod p`.
pub fn pow_mod(mut base: u64, mut exp: u64, p: u64) -> u64 {
    if p == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, p);
        }
        base = mul_mod(base, base, p);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin for `u64`.
///
/// The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is proven
/// sufficient for all `n < 3.317e24`, which covers the full `u64` range.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd.
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime `>= n`.
///
/// # Panics
/// Panics if no prime fits in `u64` above `n` (cannot happen for any
/// realistic namespace size; the largest u64 prime is 2^64 - 59).
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate = candidate
            .checked_add(1)
            // bst-lint: allow(L001) — 2^64 - 59 is prime, so the loop terminates first
            .expect("no prime found below u64::MAX");
    }
}

/// Modular inverse of `a` modulo prime `p` via extended Euclid.
///
/// # Panics
/// Panics when `a % p == 0` (no inverse exists).
pub fn inv_mod(a: u64, p: u64) -> u64 {
    let a = a % p;
    assert!(a != 0, "zero has no modular inverse");
    // Extended Euclid over i128: find x with a*x ≡ 1 (mod p).
    let (mut old_r, mut r) = (a as i128, p as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    debug_assert_eq!(old_r, 1, "inputs must be coprime (p prime, a nonzero)");
    let p = p as i128;
    (((old_s % p) + p) % p) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 7919];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 7917, 7921];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that defeat naive tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041] {
            assert!(!is_prime(c), "Carmichael number {c} misclassified");
        }
    }

    #[test]
    fn large_primes() {
        assert!(is_prime(4294967311)); // smallest prime > 2^32
        assert!(is_prime(2147483647)); // Mersenne 2^31 - 1
        assert!(is_prime(2305843009213693951)); // Mersenne 2^61 - 1
        assert!(is_prime(18446744073709551557)); // largest u64 prime
        assert!(!is_prime(4294967297)); // F5 = 641 * 6700417
        assert!(!is_prime(2305843009213693953));
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(1_000_000), 1_000_003);
        assert_eq!(next_prime(10_000_000), 10_000_019);
        assert_eq!(next_prime(2_200_000_000), 2_200_000_009);
    }

    #[test]
    fn pow_mod_matches_naive() {
        for base in 1u64..20 {
            let mut acc = 1u64;
            for e in 0u64..16 {
                assert_eq!(pow_mod(base, e, 1_000_003), acc);
                acc = acc * base % 1_000_003;
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let p = 1_000_003u64;
        for a in [1u64, 2, 3, 12345, 999_999, p - 1] {
            let inv = inv_mod(a, p);
            assert_eq!(mul_mod(a, inv, p), 1, "a={a}");
        }
    }

    #[test]
    fn inverse_large_prime() {
        let p = 2_200_000_027u64;
        for a in [7u64, 1_234_567_891, p - 2] {
            assert_eq!(mul_mod(a, inv_mod(a, p), p), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no modular inverse")]
    fn inverse_of_zero_panics() {
        let _ = inv_mod(0, 97);
    }

    #[test]
    fn mul_mod_no_overflow() {
        let p = 18446744073709551557u64;
        assert_eq!(mul_mod(p - 1, p - 1, p), 1); // (-1)^2 = 1
    }
}
