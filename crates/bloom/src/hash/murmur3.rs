//! MurmurHash3 (x64, 128-bit variant), implemented from scratch.
//!
//! This is Austin Appleby's public-domain `MurmurHash3_x64_128`, one of the
//! three hash families evaluated in Figure 7 of the paper. The implementation
//! is verified against SMHasher's canonical verification value (`0x6384BA69`)
//! in the test module, which exercises all input lengths 0..=255 and all the
//! tail-switch branches.

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

#[inline]
fn read_u64_le(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(buf)
}

/// Computes `MurmurHash3_x64_128(data, seed)`, returning the two 64-bit
/// halves `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    const C1: u64 = 0x87c37b91114253d5;
    const C2: u64 = 0x4cf5ad432745937f;

    let n_blocks = data.len() / 16;
    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    // Body: 16-byte blocks.
    for i in 0..n_blocks {
        let mut k1 = read_u64_le(&data[i * 16..]);
        let mut k2 = read_u64_le(&data[i * 16 + 8..]);

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dce729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x38495ab5);
    }

    // Tail: remaining 0..=15 bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    let t = tail.len();
    if t >= 9 {
        for i in (8..t).rev() {
            k2 ^= (tail[i] as u64) << ((i - 8) * 8);
        }
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if t >= 1 {
        for i in (0..t.min(8)).rev() {
            k1 ^= (tail[i] as u64) << (i * 8);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Hashes a `u64` key (little-endian bytes) with the given seed.
#[inline]
pub fn murmur3_u64(key: u64, seed: u32) -> (u64, u64) {
    murmur3_x64_128(&key.to_le_bytes(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SMHasher's VerificationTest: hash keys {0}, {0,1}, ... {0,..,254}
    /// with seed 256-len, concatenate the digests, hash that with seed 0,
    /// and compare the first four bytes against the published constant.
    #[test]
    fn smhasher_verification_value() {
        const HASH_BYTES: usize = 16;
        let mut key = [0u8; 256];
        let mut hashes = [0u8; 256 * HASH_BYTES];
        for i in 0..256 {
            key[i] = i as u8;
            let (h1, h2) = murmur3_x64_128(&key[..i], (256 - i) as u32);
            hashes[i * HASH_BYTES..i * HASH_BYTES + 8].copy_from_slice(&h1.to_le_bytes());
            hashes[i * HASH_BYTES + 8..(i + 1) * HASH_BYTES].copy_from_slice(&h2.to_le_bytes());
        }
        let (f1, _) = murmur3_x64_128(&hashes, 0);
        let verification = (f1 & 0xffff_ffff) as u32;
        assert_eq!(
            verification, 0x6384BA69,
            "MurmurHash3_x64_128 verification value mismatch: {verification:#x}"
        );
    }

    #[test]
    fn empty_input_seed_zero() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn seed_changes_output() {
        let a = murmur3_x64_128(b"hello", 0);
        let b = murmur3_x64_128(b"hello", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let a = murmur3_u64(0xdead_beef, 42);
        let b = murmur3_u64(0xdead_beef, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // 128-bit output: collisions among a few thousand keys would signal
        // a broken implementation.
        let mut seen = std::collections::HashSet::new();
        for key in 0u64..4096 {
            assert!(seen.insert(murmur3_u64(key, 7)), "collision at {key}");
        }
    }

    #[test]
    fn all_tail_lengths_exercise_branches() {
        // Lengths 0..=16 cover every tail-switch case plus one full block.
        let data: Vec<u8> = (0u8..32).collect();
        let mut outputs = std::collections::HashSet::new();
        for l in 0..=16 {
            assert!(outputs.insert(murmur3_x64_128(&data[..l], 3)));
        }
    }

    #[test]
    fn output_bits_roughly_balanced() {
        // Avalanche sanity: over many keys each output bit should be set
        // about half the time.
        let n = 2048u64;
        let mut counts = [0u32; 64];
        for key in 0..n {
            let (h1, _) = murmur3_u64(key, 0);
            for (b, count) in counts.iter_mut().enumerate() {
                *count += ((h1 >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (0.4..=0.6).contains(&frac),
                "bit {b} set fraction {frac} out of tolerance"
            );
        }
    }
}
