//! Property-based tests for the Bloom filter substrate.

use std::sync::Arc;

use bst_bloom::bitvec::BitVec;
use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::{BloomHasher, HashKind};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = HashKind> {
    prop_oneof![
        Just(HashKind::Simple),
        Just(HashKind::Murmur3),
        Just(HashKind::Md5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- BitVec ----------------

    #[test]
    fn bitvec_set_get_roundtrip(len in 1usize..500, bits in prop::collection::vec(0usize..500, 0..64)) {
        let mut bv = BitVec::new(len);
        let mut reference = std::collections::HashSet::new();
        for &b in &bits {
            let b = b % len;
            bv.set(b);
            reference.insert(b);
        }
        prop_assert_eq!(bv.count_ones(), reference.len());
        for i in 0..len {
            prop_assert_eq!(bv.get(i), reference.contains(&i));
        }
    }

    #[test]
    fn bitvec_iter_ones_matches_get(len in 1usize..300, seed in any::<u64>()) {
        let mut bv = BitVec::new(len);
        let mut state = seed;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state & 3 == 0 {
                bv.set(i);
            }
        }
        let from_iter: Vec<usize> = bv.iter_ones().collect();
        let from_get: Vec<usize> = (0..len).filter(|&i| bv.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
    }

    #[test]
    fn bitvec_zeros_complement_ones(len in 1usize..300, seed in any::<u64>()) {
        let mut bv = BitVec::new(len);
        let mut state = seed;
        for i in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state & 1 == 0 {
                bv.set(i);
            }
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        let zeros: Vec<usize> = bv.iter_zeros().collect();
        prop_assert_eq!(ones.len() + zeros.len(), len);
        let mut merged: Vec<usize> = ones.into_iter().chain(zeros).collect();
        merged.sort_unstable();
        prop_assert_eq!(merged, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn bitvec_select_is_inverse_of_rank(len in 1usize..300, seed in any::<u64>()) {
        let mut bv = BitVec::new(len);
        let mut state = seed | 1;
        for i in 0..len {
            state = state.wrapping_mul(0x9E3779B97F4A7C15);
            if state >> 62 == 0 {
                bv.set(i);
            }
        }
        for (rank, pos) in bv.iter_ones().enumerate() {
            prop_assert_eq!(bv.select_one(rank), Some(pos));
        }
        prop_assert_eq!(bv.select_one(bv.count_ones()), None);
    }

    #[test]
    fn bitvec_demorgan(len in 1usize..256, a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let fill = |seed: u64| {
            let mut bv = BitVec::new(len);
            let mut s = seed | 1;
            for i in 0..len {
                s = s.wrapping_mul(0x2545F4914F6CDD1D);
                if s & 1 == 1 {
                    bv.set(i);
                }
            }
            bv
        };
        let a = fill(a_seed);
        let b = fill(b_seed);
        // !(a | b) == !a & !b
        let mut lhs = a.clone();
        lhs.union_with(&b);
        lhs.negate();
        let mut na = a.clone();
        na.negate();
        let mut nb = b.clone();
        nb.negate();
        let mut rhs = na;
        rhs.intersect_with(&nb);
        prop_assert_eq!(lhs, rhs);
    }

    // ---------------- BloomFilter ----------------

    #[test]
    fn filter_never_false_negative(
        kind in arb_kind(),
        keys in prop::collection::hash_set(0u64..100_000, 1..200),
        m in 512usize..8192,
    ) {
        let mut f = BloomFilter::with_params(kind, 3, m, 100_000, 42);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k), "false negative for {} under {:?}", k, kind);
        }
    }

    #[test]
    fn filter_union_is_bitwise_or(
        kind in arb_kind(),
        a_keys in prop::collection::vec(0u64..50_000, 0..100),
        b_keys in prop::collection::vec(0u64..50_000, 0..100),
    ) {
        let hasher = Arc::new(BloomHasher::new(kind, 3, 4096, 50_000, 7));
        let a = BloomFilter::from_keys(hasher.clone(), a_keys.iter().copied());
        let b = BloomFilter::from_keys(hasher.clone(), b_keys.iter().copied());
        let union = BloomFilter::union(&a, &b);
        let direct = BloomFilter::from_keys(
            hasher,
            a_keys.iter().copied().chain(b_keys.iter().copied()),
        );
        prop_assert_eq!(union.bits(), direct.bits());
    }

    #[test]
    fn filter_intersection_supersets_common_keys(
        common in prop::collection::hash_set(0u64..50_000, 1..50),
        only_a in prop::collection::vec(0u64..50_000, 0..50),
        only_b in prop::collection::vec(0u64..50_000, 0..50),
    ) {
        let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 8192, 50_000, 9));
        let a = BloomFilter::from_keys(hasher.clone(), common.iter().copied().chain(only_a.iter().copied()));
        let b = BloomFilter::from_keys(hasher, common.iter().copied().chain(only_b.iter().copied()));
        let i = BloomFilter::intersection(&a, &b);
        for &k in &common {
            prop_assert!(i.contains(k), "intersection lost common key {}", k);
        }
    }

    #[test]
    fn filter_and_count_symmetric(
        a_keys in prop::collection::vec(0u64..10_000, 0..100),
        b_keys in prop::collection::vec(0u64..10_000, 0..100),
    ) {
        let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 2048, 10_000, 3));
        let a = BloomFilter::from_keys(hasher.clone(), a_keys.into_iter());
        let b = BloomFilter::from_keys(hasher, b_keys.into_iter());
        prop_assert_eq!(a.and_count(&b), b.and_count(&a));
        prop_assert!(a.and_count(&b) <= a.count_ones().min(b.count_ones()));
    }

    #[test]
    fn codec_roundtrip(
        kind in arb_kind(),
        keys in prop::collection::vec(0u64..20_000, 0..100),
        m in 256usize..4096,
    ) {
        let mut f = BloomFilter::with_params(kind, 3, m, 20_000, 11);
        for &k in &keys {
            f.insert(k);
        }
        let bytes = bst_bloom::codec::encode(&f);
        let back = bst_bloom::codec::decode(&bytes).unwrap();
        prop_assert_eq!(back.bits(), f.bits());
        prop_assert!(back.compatible_with(&f));
    }

    // ---------------- Blocked layout ----------------

    #[test]
    fn blocked_filter_never_false_negative(
        keys in prop::collection::hash_set(0u64..100_000, 1..200),
        k in 1usize..9,
        m in 512usize..8192,
        seed in any::<u64>(),
    ) {
        let mut f = BloomFilter::with_params(HashKind::DeltaBlocked, k, m, 100_000, seed);
        for &key in &keys {
            f.insert(key);
        }
        for &key in &keys {
            prop_assert!(f.contains(key), "blocked false negative for {key} (k={k}, m={m})");
        }
    }

    #[test]
    fn word_kernels_match_per_bit_reference(
        len in 1usize..500,
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
    ) {
        // Random lengths deliberately include non-word-aligned tails;
        // the word-level kernels must agree with a bit-at-a-time walk.
        let fill = |seed: u64| {
            let mut bv = BitVec::new(len);
            let mut s = seed | 1;
            for i in 0..len {
                s = s.wrapping_mul(0x2545F4914F6CDD1D);
                if s & 1 == 1 {
                    bv.set(i);
                }
            }
            bv
        };
        let a = fill(a_seed);
        let b = fill(b_seed);
        let and_ref = (0..len).filter(|&i| a.get(i) && b.get(i)).count();
        let or_ref = (0..len).filter(|&i| a.get(i) || b.get(i)).count();
        prop_assert_eq!(a.and_count(&b), and_ref);
        prop_assert_eq!(a.or_count(&b), or_ref);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        for i in 0..len {
            prop_assert_eq!(inter.get(i), a.get(i) && b.get(i));
        }
        prop_assert_eq!(inter.count_ones(), and_ref);
    }

    #[test]
    fn blocked_codec_roundtrip(
        keys in prop::collection::vec(0u64..20_000, 0..100),
        m in 512usize..4096,
        seed in any::<u64>(),
    ) {
        let mut f = BloomFilter::with_params(HashKind::DeltaBlocked, 3, m, 20_000, seed);
        for &k in &keys {
            f.insert(k);
        }
        let bytes = bst_bloom::codec::encode(&f);
        let back = bst_bloom::codec::decode(&bytes).unwrap();
        prop_assert_eq!(back.bits(), f.bits());
        prop_assert!(back.compatible_with(&f));
        prop_assert_eq!(back.hasher().kind(), HashKind::DeltaBlocked);
    }

    #[test]
    fn blocked_codec_rejects_mangled_bytes(
        keys in prop::collection::vec(0u64..20_000, 0..50),
        cut in 0usize..4096,
        garbage_byte in 1u64..256,
        garbage_pos in 0usize..4096,
    ) {
        let mut f = BloomFilter::with_params(HashKind::DeltaBlocked, 3, 2048, 20_000, 17);
        for &k in &keys {
            f.insert(k);
        }
        let bytes = bst_bloom::codec::encode(&f).to_vec();

        // Any strict prefix must fail with a typed error, never panic.
        let cut = cut % bytes.len();
        prop_assert!(bst_bloom::codec::decode(&bytes[..cut]).is_err());

        // An oversized word-count claim (header offset 32..40) must be
        // BadLength — and must be rejected *before* any allocation of
        // the claimed size (the L002 bounded-decode contract).
        let mut oversized = bytes.clone();
        oversized[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        prop_assert_eq!(
            bst_bloom::codec::decode(&oversized).unwrap_err(),
            bst_bloom::codec::CodecError::BadLength
        );

        // A flipped byte either still decodes (payload damage) or fails
        // with a typed error; decoding must never panic or misreport m/k.
        let pos = garbage_pos % bytes.len();
        let mut mangled = bytes.clone();
        mangled[pos] ^= garbage_byte as u8;
        if let Ok(g) = bst_bloom::codec::decode(&mangled) {
            prop_assert_eq!(g.m(), f.m());
        }
    }

    #[test]
    fn affine_inversion_sound_and_complete(
        bit in 0usize..997,
        seed in any::<u64>(),
    ) {
        let hasher = BloomHasher::new(HashKind::Simple, 2, 997, 30_000, seed);
        for i in 0..2 {
            let preimages: Vec<u64> = hasher.invert(i, bit).unwrap().collect();
            // Sound: every preimage hashes to the bit.
            for &x in &preimages {
                prop_assert_eq!(hasher.position(x, i), bit);
                prop_assert!(x < 30_000);
            }
            // Complete (spot-check a stride of the namespace).
            for x in (0..30_000u64).step_by(577) {
                if hasher.position(x, i) == bit {
                    prop_assert!(preimages.contains(&x), "missing preimage {}", x);
                }
            }
        }
    }

    #[test]
    fn counting_filter_tracks_multiset(
        inserts in prop::collection::vec(0u64..500, 1..100),
    ) {
        let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 8192, 500, 5));
        let mut cbf = bst_bloom::counting::CountingBloomFilter::new(hasher);
        for &k in &inserts {
            cbf.insert(k);
        }
        // Remove each key exactly as many times as inserted; the filter
        // must end up empty of all of them (counters stay below the
        // 15 saturation ceiling whp at these sizes, but duplicates in the
        // input could saturate: skip keys inserted 15+ times).
        let mut counts = std::collections::HashMap::new();
        for &k in &inserts {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        for (&k, &c) in &counts {
            prop_assert!(cbf.contains(k));
            for _ in 0..c {
                cbf.remove(k);
            }
        }
        if counts.values().all(|&c| c < 15) {
            for &k in counts.keys() {
                prop_assert!(!cbf.contains(k), "key {} survived removal", k);
            }
        }
    }

    #[test]
    fn estimators_stay_finite(
        m in 64usize..100_000,
        k in 1usize..8,
        t1 in 0usize..100_000,
        t2 in 0usize..100_000,
    ) {
        let t1 = t1 % (m + 1);
        let t2 = t2 % (m + 1);
        let t_and = t1.min(t2) / 2;
        let est = bst_bloom::estimate::intersection_estimate(m, k, t1, t2, t_and);
        prop_assert!(est.is_finite());
        prop_assert!(est >= 0.0);
        let card = bst_bloom::estimate::cardinality_from_ones(m, k, t1);
        prop_assert!(card.is_finite());
        prop_assert!(card >= 0.0);
    }
}
