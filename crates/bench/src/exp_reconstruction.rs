//! Figures 8–12: reconstruction operation counts and timings,
//! BloomSampleTree vs HashInvert vs DictionaryAttack.
//!
//! All three methods run with the weakly invertible "Simple" family
//! (HashInvert requires it). BST uses the paper's §5.6 pruning so the
//! operation counts are comparable to the published figures.

use std::time::Instant;

use bst_bloom::hash::HashKind;
use bst_core::baselines::dictionary::da_reconstruct;
use bst_core::baselines::hashinvert::hi_reconstruct;
use bst_core::metrics::OpStats;
use bst_core::reconstruct::{BstReconstructor, ReconstructConfig};

use crate::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use crate::scale::Scale;
use crate::table::{fmt_f64, Table};

/// Figures 8 (M=10⁵), 9 (M=10⁶), 10 (M=10⁷): average operation counts for
/// reconstructing query sets.
pub fn fig_recon_ops(namespace: u64, kind: SetKind, scale: &Scale) -> Table {
    let fig = match namespace {
        100_000 => "8",
        1_000_000 => "9",
        _ => "10",
    };
    let mut t = Table::new(
        format!(
            "Figure {fig} (M = {namespace}): reconstruction ops, {} query sets",
            kind.name()
        ),
        &[
            "accuracy",
            "n",
            "BST intersections",
            "BST memberships",
            "HI memberships",
            "DA memberships",
            "BST recall",
        ],
    );
    for &acc in &scale.accuracies {
        let plan = plan_for(namespace, acc, HashKind::Simple, crate::common::SEED);
        let tree = build_tree(&plan);
        let recon = BstReconstructor::with_config(&tree, ReconstructConfig::paper());
        for &n in &scale.set_sizes {
            if n as u64 >= namespace {
                continue;
            }
            let mut rng = rng_for(80 + namespace + n as u64);
            let keys = gen_set(&mut rng, kind, namespace, n);
            let q = build_query(&tree, &keys);

            let mut bst_stats = OpStats::new();
            let mut recall = 0.0;
            for _ in 0..scale.reconstruct_rounds {
                let rec = recon.reconstruct(&q, &mut bst_stats);
                let hit = keys.iter().filter(|x| rec.binary_search(x).is_ok()).count();
                recall = hit as f64 / n as f64;
            }
            let rounds = scale.reconstruct_rounds as f64;

            let mut hi_stats = OpStats::new();
            std::hint::black_box(hi_reconstruct(&q, &mut hi_stats));

            t.push_row(vec![
                format!("{acc}"),
                n.to_string(),
                fmt_f64(bst_stats.intersections as f64 / rounds),
                fmt_f64(bst_stats.memberships as f64 / rounds),
                hi_stats.memberships.to_string(),
                namespace.to_string(),
                fmt_f64(recall),
            ]);
        }
    }
    t
}

/// Figures 11 (M=10⁶) and 12 (M=10⁷): average reconstruction time for
/// `n ∈ {100, 10⁴}` (the published series).
pub fn fig_recon_time(namespace: u64, kind: SetKind, scale: &Scale) -> Table {
    let fig = if namespace >= 10_000_000 { "12" } else { "11" };
    let mut t = Table::new(
        format!(
            "Figure {fig} (M = {namespace}): reconstruction time (ms), {} query sets",
            kind.name()
        ),
        &["accuracy", "n", "BST ms", "HI ms", "DA ms"],
    );
    let sizes: Vec<usize> = scale
        .set_sizes
        .iter()
        .copied()
        .filter(|&n| n == 100 || n == 10_000)
        .collect();
    for &acc in &scale.accuracies {
        let plan = plan_for(namespace, acc, HashKind::Simple, crate::common::SEED);
        let tree = build_tree(&plan);
        let recon = BstReconstructor::with_config(&tree, ReconstructConfig::paper());
        for &n in &sizes {
            if n as u64 >= namespace {
                continue;
            }
            let mut rng = rng_for(110 + namespace + n as u64);
            let keys = gen_set(&mut rng, kind, namespace, n);
            let q = build_query(&tree, &keys);
            let rounds = scale.reconstruct_rounds as f64;
            let mut stats = OpStats::new();

            let start = Instant::now();
            for _ in 0..scale.reconstruct_rounds {
                std::hint::black_box(recon.reconstruct(&q, &mut stats));
            }
            let bst_ms = start.elapsed().as_secs_f64() * 1e3 / rounds;

            let start = Instant::now();
            for _ in 0..scale.reconstruct_rounds {
                std::hint::black_box(hi_reconstruct(&q, &mut stats));
            }
            let hi_ms = start.elapsed().as_secs_f64() * 1e3 / rounds;

            let start = Instant::now();
            for _ in 0..scale.reconstruct_rounds {
                std::hint::black_box(da_reconstruct(&q, namespace, &mut stats));
            }
            let da_ms = start.elapsed().as_secs_f64() * 1e3 / rounds;

            t.push_row(vec![
                format!("{acc}"),
                n.to_string(),
                fmt_f64(bst_ms),
                fmt_f64(hi_ms),
                fmt_f64(da_ms),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::smoke();
        s.accuracies = vec![0.9];
        s.set_sizes = vec![100];
        s.reconstruct_rounds = 1;
        s
    }

    #[test]
    fn fig8_shape() {
        let t = fig_recon_ops(100_000, SetKind::Uniform, &tiny_scale());
        assert_eq!(t.rows.len(), 1);
        let bst: f64 = t.rows[0][3].parse().unwrap();
        let hi: f64 = t.rows[0][4].parse().unwrap();
        let da: f64 = t.rows[0][5].parse().unwrap();
        assert!(hi < da, "HI memberships {hi} should undercut DA {da}");
        assert!(bst < da, "BST memberships {bst} should undercut DA {da}");
        // Recall is reported, not asserted: §5.6 threshold pruning is lossy
        // by design at these parameters (the central EXPERIMENTS.md
        // finding); the sound mode's recall is always 1.0.
        let recall: f64 = t.rows[0][6].parse().unwrap();
        assert!((0.0..=1.0).contains(&recall));
    }

    #[test]
    fn fig11_bst_fastest() {
        let mut s = tiny_scale();
        s.set_sizes = vec![100];
        let t = fig_recon_time(100_000, SetKind::Uniform, &s);
        let bst: f64 = t.rows[0][2].parse().unwrap();
        let da: f64 = t.rows[0][4].parse().unwrap();
        assert!(bst < da, "BST {bst} ms should beat DA {da} ms");
    }
}
