#![forbid(unsafe_code)]
//! # bst-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7–8) and
//! the DESIGN.md ablations. The `repro` binary drives the experiments; the
//! Criterion benches under `benches/` wrap the same kernels for
//! micro-benchmark tracking.
//!
//! Experiment ids (one per published artifact): `table2`, `table3`,
//! `table4`, `table5`, `table6`, `fig3`, `fig4`, `fig5`, `fig6`, `fig7`,
//! `fig8`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13` (covers 13–15),
//! plus `ablate-threshold`, `ablate-estimator`, `ablate-depth`,
//! `ablate-multisample`, `ablate-correction`.
//!
//! ## Example
//!
//! The shared plumbing every experiment builds on — deterministic RNG
//! streams and §7.1 query-set generation:
//!
//! ```
//! use bst_bench::common::{gen_set, rng_for, SetKind};
//!
//! let mut rng = rng_for(42);
//! let queries = gen_set(&mut rng, SetKind::Uniform, 100_000, 1_000);
//! assert_eq!(queries.len(), 1_000);
//! assert_eq!(SetKind::Clustered.name(), "clustered");
//!
//! // The same stream id always reproduces the same set.
//! let again = gen_set(&mut rng_for(42), SetKind::Uniform, 100_000, 1_000);
//! assert_eq!(queries, again);
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod exp_ablations;
pub mod exp_pruned;
pub mod exp_reconstruction;
pub mod exp_sampling;
pub mod exp_tables;
pub mod scale;
pub mod table;

use common::SetKind;
use scale::Scale;
use table::Table;

/// All experiment ids in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablate-threshold",
    "ablate-estimator",
    "ablate-depth",
    "ablate-multisample",
    "ablate-correction",
];

/// Runs one experiment by id, returning its result tables.
///
/// Experiments parameterised by namespace emit one table per namespace in
/// the scale; figure pairs with uniform/clustered variants emit both.
pub fn run_experiment(id: &str, scale: &Scale) -> Result<Vec<Table>, String> {
    let in_scale = |m: u64| scale.namespaces.contains(&m);
    let tables = match id {
        "table2" => vec![exp_tables::table_params(1_000_000, scale)],
        "table3" => vec![exp_tables::table_params(10_000_000, scale)],
        "table4" => vec![exp_tables::table4(scale)],
        "table5" => vec![exp_tables::table5(scale)],
        "table6" => vec![exp_tables::table6(scale)],
        "fig3" | "fig4" => {
            let kind = if id == "fig3" {
                SetKind::Uniform
            } else {
                SetKind::Clustered
            };
            scale
                .namespaces
                .iter()
                .map(|&m| exp_sampling::fig_ops(m, kind, scale))
                .collect()
        }
        "fig5" | "fig6" => {
            let m = if id == "fig5" { 10_000_000 } else { 1_000_000 };
            if !in_scale(m) {
                return Err(format!("{id} needs M = {m}; not in scale '{}'", scale.name));
            }
            vec![
                exp_sampling::fig_time(m, SetKind::Uniform, scale),
                exp_sampling::fig_time(m, SetKind::Clustered, scale),
            ]
        }
        "fig7" => vec![exp_sampling::fig7(scale)],
        "fig8" | "fig9" | "fig10" => {
            let m = match id {
                "fig8" => 100_000,
                "fig9" => 1_000_000,
                _ => 10_000_000,
            };
            if !in_scale(m) {
                return Err(format!("{id} needs M = {m}; not in scale '{}'", scale.name));
            }
            vec![
                exp_reconstruction::fig_recon_ops(m, SetKind::Uniform, scale),
                exp_reconstruction::fig_recon_ops(m, SetKind::Clustered, scale),
            ]
        }
        "fig11" | "fig12" => {
            let m = if id == "fig11" { 1_000_000 } else { 10_000_000 };
            if !in_scale(m) {
                return Err(format!("{id} needs M = {m}; not in scale '{}'", scale.name));
            }
            vec![
                exp_reconstruction::fig_recon_time(m, SetKind::Uniform, scale),
                exp_reconstruction::fig_recon_time(m, SetKind::Clustered, scale),
            ]
        }
        "fig13" | "fig14" | "fig15" => vec![exp_pruned::fig13_14_15(scale)],
        "ablate-threshold" => vec![exp_ablations::ablate_threshold(scale)],
        "ablate-estimator" => vec![exp_ablations::ablate_estimator(scale)],
        "ablate-depth" => vec![exp_ablations::ablate_depth(scale)],
        "ablate-multisample" => vec![exp_ablations::ablate_multisample(scale)],
        "ablate-correction" => vec![exp_ablations::ablate_correction(scale)],
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(tables)
}
