//! Ablations on the design choices DESIGN.md calls out: the emptiness
//! threshold τ (§5.6), the descent/pruning estimator, the depth/`M⊥`
//! trade-off, one-pass multi-sampling, and the rejection-correction γ.

use std::time::Instant;

use bst_bloom::hash::HashKind;
use bst_bloom::params::{leaf_size, TreePlan};
use bst_core::metrics::OpStats;
use bst_core::reconstruct::{BstReconstructor, ReconstructConfig};
use bst_core::sampler::{BstSampler, Correction, Liveness, RatioEstimator, SamplerConfig};
use bst_stats::chi2_uniform_test;

use crate::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use crate::scale::Scale;
use crate::table::{fmt_f64, Table};

const NAMESPACE: u64 = 1_000_000;
const N: usize = 1000;

/// τ sweep: reconstruction recall vs work under §5.6 threshold pruning.
pub fn ablate_threshold(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Ablation: emptiness threshold τ (reconstruction, M = 10^6, n = 10^3, acc 0.9)",
        &["tau", "recall", "memberships", "intersections", "nodes"],
    );
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, crate::common::SEED);
    let tree = build_tree(&plan);
    let mut rng = rng_for(900);
    let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, N);
    let q = build_query(&tree, &keys);
    let _ = scale;
    for tau in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let recon = BstReconstructor::with_config(
            &tree,
            ReconstructConfig {
                liveness: Liveness::EstimateThreshold(tau),
                carry_intersection: false,
            },
        );
        let mut stats = OpStats::new();
        let rec = recon.reconstruct(&q, &mut stats);
        let hits = keys.iter().filter(|x| rec.binary_search(x).is_ok()).count();
        t.push_row(vec![
            format!("{tau}"),
            fmt_f64(hits as f64 / N as f64),
            stats.memberships.to_string(),
            stats.intersections.to_string(),
            stats.nodes_visited.to_string(),
        ]);
    }
    // Sound mode reference row.
    let mut stats = OpStats::new();
    let rec = BstReconstructor::new(&tree).reconstruct(&q, &mut stats);
    let hits = keys.iter().filter(|x| rec.binary_search(x).is_ok()).count();
    t.push_row(vec![
        "sound".into(),
        fmt_f64(hits as f64 / N as f64),
        stats.memberships.to_string(),
        stats.intersections.to_string(),
        stats.nodes_visited.to_string(),
    ]);
    t
}

/// Estimator × liveness matrix: sampling uniformity (χ² p-value), zero-hit
/// keys, and cost.
pub fn ablate_estimator(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Ablation: descent estimator × liveness (sampling, M = 10^6, n = 10^3, acc 0.9)",
        &["ratio", "liveness", "p-value", "never-sampled", "ms/sample"],
    );
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, crate::common::SEED);
    let tree = build_tree(&plan);
    let mut rng = rng_for(910);
    let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, N);
    let q = build_query(&tree, &keys);
    let rounds = (130 * N).min(scale.chi2_cap).max(10 * N);
    for ratio in [
        RatioEstimator::MeanCorrectedBits,
        RatioEstimator::AndCardinality,
        RatioEstimator::Papapetrou,
    ] {
        for (lname, liveness) in [
            ("bit-overlap", Liveness::BitOverlap),
            ("tau=0.5", Liveness::EstimateThreshold(0.5)),
        ] {
            let cfg = SamplerConfig {
                liveness,
                ratio,
                carry_intersection: ratio == RatioEstimator::Papapetrou,
                proportional_descent: true,
                correction: Correction::None,
            };
            let sampler = BstSampler::with_config(&tree, cfg);
            let mut counts = vec![0u64; N];
            let start = Instant::now();
            let mut stats = OpStats::new();
            for _ in 0..rounds {
                if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                    if let Ok(i) = keys.binary_search(&s) {
                        counts[i] += 1;
                    }
                }
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
            let p = chi2_uniform_test(&counts).p_value;
            let zeros = counts.iter().filter(|&&c| c == 0).count();
            let rname = match ratio {
                RatioEstimator::MeanCorrectedBits => "mean-corrected",
                RatioEstimator::AndCardinality => "S&B-on-AND",
                RatioEstimator::Papapetrou => "Papapetrou",
            };
            t.push_row(vec![
                rname.into(),
                lname.into(),
                fmt_f64(p),
                zeros.to_string(),
                fmt_f64(ms),
            ]);
        }
    }
    t
}

/// Depth sweep: sampling time vs tree memory (the §5.4 trade-off).
pub fn ablate_depth(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Ablation: tree depth vs time and memory (M = 10^6, n = 10^3, acc 0.9)",
        &[
            "depth",
            "M_bot",
            "memory MB",
            "ms/sample",
            "memberships/sample",
        ],
    );
    let base = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, crate::common::SEED);
    for depth in [5u32, 7, 9, 11, 13] {
        let plan = TreePlan {
            depth,
            leaf_capacity: leaf_size(NAMESPACE, depth),
            ..base.clone()
        };
        let tree = build_tree(&plan);
        let sampler = BstSampler::new(&tree);
        let mut rng = rng_for(920 + depth as u64);
        let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, N);
        let q = build_query(&tree, &keys);
        let rounds = scale.time_rounds.max(50);
        let mut stats = OpStats::new();
        let start = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
        t.push_row(vec![
            depth.to_string(),
            plan.leaf_capacity.to_string(),
            fmt_f64(tree.memory_bytes() as f64 / 1e6),
            fmt_f64(ms),
            fmt_f64(stats.memberships as f64 / rounds as f64),
        ]);
    }
    t
}

/// One-pass multi-sampling vs repeated single samples (§5.3's claim).
pub fn ablate_multisample(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Ablation: one-pass multi-sampling vs repeated singles (M = 10^6, n = 10^3)",
        &["r", "one-pass ops", "repeated ops", "speedup"],
    );
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, crate::common::SEED);
    let tree = build_tree(&plan);
    let sampler = BstSampler::new(&tree);
    let mut rng = rng_for(930);
    let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, N);
    let q = build_query(&tree, &keys);
    let _ = scale;
    for r in [1usize, 10, 100, 1000] {
        let mut many = OpStats::new();
        std::hint::black_box(sampler.sample_many(&q, r, &mut rng, &mut many));
        let mut single = OpStats::new();
        for _ in 0..r {
            std::hint::black_box(sampler.sample(&q, &mut rng, &mut single));
        }
        t.push_row(vec![
            r.to_string(),
            many.total_ops().to_string(),
            single.total_ops().to_string(),
            fmt_f64(single.total_ops() as f64 / many.total_ops().max(1) as f64),
        ]);
    }
    t
}

/// γ sweep for the rejection correction: uniformity vs work.
pub fn ablate_correction(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Ablation: rejection-correction γ (M = 10^6, n = 10^3, acc 0.9)",
        &["gamma", "p-value", "ms/sample"],
    );
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, crate::common::SEED);
    let tree = build_tree(&plan);
    let mut rng = rng_for(940);
    let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, N);
    let q = build_query(&tree, &keys);
    let rounds = (130 * N).min(scale.chi2_cap).max(10 * N);
    for gamma in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let sampler = BstSampler::with_config(
            &tree,
            SamplerConfig {
                correction: Correction::Rejection { gamma },
                ..SamplerConfig::default()
            },
        );
        let mut counts = vec![0u64; N];
        let mut stats = OpStats::new();
        let start = Instant::now();
        for _ in 0..rounds {
            if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                if let Ok(i) = keys.binary_search(&s) {
                    counts[i] += 1;
                }
            }
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
        t.push_row(vec![
            format!("{gamma}"),
            fmt_f64(chi2_uniform_test(&counts).p_value),
            fmt_f64(ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multisample_ablation_shows_speedup() {
        let t = ablate_multisample(&Scale::smoke());
        // r = 1000 should show a clear one-pass advantage.
        let last = t.rows.last().unwrap();
        let speedup: f64 = last[3].parse().unwrap();
        assert!(speedup > 1.4, "one-pass speedup only {speedup}x");
    }
}
