#![forbid(unsafe_code)]
//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale smoke|small|paper] [--results DIR] [all | <id>...]
//! ```
//!
//! Ids: table2 table3 table4 table5 table6 fig3..fig13 ablate-*.
//! Results print as aligned tables and are written as CSV to the results
//! directory (default `results/`).

use std::path::PathBuf;
use std::time::Instant;

use bst_bench::scale::Scale;
use bst_bench::{run_experiment, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale smoke|small|paper] [--results DIR] [all | <id>...]\n\
         ids: {}",
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::small();
    let mut results_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--results" => {
                results_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }

    println!(
        "# repro: scale = {}, results -> {}\n",
        scale.name,
        results_dir.display()
    );
    let overall = Instant::now();
    let mut failures = 0;
    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &scale) {
            Ok(tables) => {
                for (i, table) in tables.iter().enumerate() {
                    table.print();
                    let file_id = if tables.len() == 1 {
                        id.clone()
                    } else {
                        format!("{id}-{i}")
                    };
                    if let Err(e) = table.write_csv(&results_dir, &file_id) {
                        eprintln!("warning: could not write {file_id}.csv: {e}");
                    }
                }
                println!("[{id} done in {:.1?}]\n", start.elapsed());
            }
            Err(e) => {
                println!("[{id} skipped: {e}]\n");
                failures += 1;
            }
        }
    }
    println!(
        "# finished {} experiment(s) ({failures} skipped) in {:.1?}",
        ids.len(),
        overall.elapsed()
    );
}
