//! Figures 13–15: the low-occupancy namespace experiments (§8) on the
//! synthetic social stream — sampling time, memory and accuracy of the
//! Pruned-BloomSampleTree across namespace fractions.

use std::time::Instant;

use bst_bloom::hash::HashKind;
use bst_bloom::params::{leaf_size, TreePlan};
use bst_core::metrics::OpStats;
use bst_core::pruned::PrunedBloomSampleTree;
use bst_core::sampler::BstSampler;
use bst_core::tree::SampleTree;
use bst_workloads::occupancy::{clustered_occupancy, uniform_occupancy, OccupiedRanges};
use bst_workloads::social::{SocialConfig, SocialStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scale::Scale;
use crate::table::{fmt_f64, Table};

/// The §8 configuration for a scale: social stream + pinned filter size.
///
/// The paper pins `m = 1.2·10⁶` bits over the 2.2·10⁹ namespace with 256
/// hypothetical leaves (accuracy target 0.8); the small scale shrinks both
/// by ~100× keeping the same shape.
pub fn social_setup(scale: &Scale) -> (SocialConfig, TreePlan) {
    let (cfg, m) = match scale.name {
        "paper" => (SocialConfig::paper(), 1_200_000),
        "small" => (SocialConfig::small(), 60_000),
        _ => (SocialConfig::tiny(), 12_000),
    };
    let depth = 8; // 256 leaves, as in §8.1
    let plan = TreePlan {
        namespace: cfg.namespace,
        m,
        k: 3,
        kind: HashKind::Murmur3,
        seed: crate::common::SEED,
        depth,
        leaf_capacity: leaf_size(cfg.namespace, depth),
        target_accuracy: 0.8,
    };
    (cfg, plan)
}

struct FractionResult {
    sample_ms: f64,
    memory_mb: f64,
    accuracy: f64,
}

fn run_fraction(
    cfg: &SocialConfig,
    plan: &TreePlan,
    occupancy: &OccupiedRanges,
    queries: usize,
) -> FractionResult {
    let stream = SocialStream::generate(cfg.clone(), occupancy);
    let tree = PrunedBloomSampleTree::build(plan, stream.users());
    let sampler = BstSampler::new(&tree);
    let mut rng = StdRng::seed_from_u64(77);

    // Query filters: hashtag audiences restricted to the current occupancy
    // (ids outside are "simply ignored", §8.1).
    let tags: Vec<usize> = (0..queries.min(cfg.hashtags)).collect();
    let mut total_time = 0.0f64;
    let mut draws = 0u64;
    let mut trues = 0u64;
    let mut stats = OpStats::new();
    for &tag in &tags {
        let audience = stream.audience(tag);
        if audience.is_empty() {
            continue;
        }
        let q = tree.query_filter(audience.iter().copied());
        let start = Instant::now();
        let s = sampler.sample(&q, &mut rng, &mut stats);
        total_time += start.elapsed().as_secs_f64();
        if let Some(x) = s {
            draws += 1;
            if audience.binary_search(&x).is_ok() {
                trues += 1;
            }
        }
    }
    FractionResult {
        sample_ms: total_time * 1e3 / tags.len().max(1) as f64,
        memory_mb: tree.memory_bytes() as f64 / 1e6,
        accuracy: trues as f64 / draws.max(1) as f64,
    }
}

/// Figures 13–15 in one sweep: per namespace fraction, sampling time (Fig
/// 13), pruned-tree memory (Fig 14) and measured accuracy (Fig 15), for
/// uniform and clustered occupancy.
pub fn fig13_14_15(scale: &Scale) -> Table {
    let (cfg, plan) = social_setup(scale);
    let full_tree_mb = ((1u64 << (plan.depth + 1)) - 1) as f64 * (plan.m as f64 / 8.0) / 1e6;
    let mut t = Table::new(
        format!(
            "Figures 13-15: pruned tree over synthetic social stream \
             (M = {}, users = {}, m = {}, 256 leaves; complete tree {:.1} MB)",
            cfg.namespace, cfg.users, plan.m, full_tree_mb
        ),
        &[
            "fraction",
            "occupancy",
            "sample ms (Fig13)",
            "memory MB (Fig14)",
            "accuracy (Fig15)",
        ],
    );
    for &fraction in &scale.fractions {
        for clustered in [false, true] {
            let mut rng = StdRng::seed_from_u64(42);
            let occ = if clustered {
                clustered_occupancy(&mut rng, cfg.namespace, 256, fraction)
            } else {
                uniform_occupancy(&mut rng, cfg.namespace, 256, fraction)
            };
            if (occ.span() as usize) < cfg.users {
                continue; // fraction too small to hold the population
            }
            let res = run_fraction(&cfg, &plan, &occ, scale.pruned_queries);
            t.push_row(vec![
                format!("{fraction}"),
                if clustered { "clustered" } else { "uniform" }.to_string(),
                fmt_f64(res.sample_ms),
                fmt_f64(res.memory_mb),
                fmt_f64(res.accuracy),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sweep_smoke() {
        let mut scale = Scale::smoke();
        scale.fractions = vec![0.3, 0.9];
        scale.pruned_queries = 5;
        let t = fig13_14_15(&scale);
        assert!(t.rows.len() >= 2, "rows: {}", t.rows.len());
        // Memory grows with fraction (Fig 14's shape).
        let mem_of = |frac: &str, kind: &str| -> Option<f64> {
            t.rows
                .iter()
                .find(|r| r[0] == frac && r[1] == kind)
                .map(|r| r[3].parse().unwrap())
        };
        if let (Some(lo), Some(hi)) = (mem_of("0.3", "uniform"), mem_of("0.9", "uniform")) {
            assert!(lo < hi, "memory {lo} at 0.3 should be below {hi} at 0.9");
        }
    }
}
