//! Tables 2–6: parameter settings, creation time, chi-squared sample
//! quality, and measured accuracy.

use std::time::Instant;

use bst_bloom::hash::HashKind;
use bst_bloom::params::{paper_plan, TreePlan};
use bst_core::metrics::OpStats;
use bst_core::sampler::{BstSampler, SamplerConfig};
use bst_stats::chi2_uniform_test;

use crate::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use crate::scale::Scale;
use crate::table::{fmt_f64, Table};

/// Tables 2 and 3: BST parameter settings for `n = 10³`.
///
/// Our `m` comes from the accuracy-sizing chain; our `depth`/`M⊥` from the
/// measured `icost/mcost` ratio. The published values are shown alongside.
pub fn table_params(namespace: u64, scale: &Scale) -> Table {
    let mut t = Table::new(
        format!(
            "Table {}: BloomSampleTree settings, M = {namespace}, n = 10^3",
            if namespace == 1_000_000 { "2" } else { "3" }
        ),
        &[
            "accuracy",
            "m",
            "depth",
            "M_bot",
            "mem MB (paper conv.)",
            "mem MB (all nodes)",
            "paper m",
            "paper depth",
            "paper M_bot",
        ],
    );
    for &acc in &scale.accuracies {
        let plan = TreePlan::for_accuracy(
            namespace,
            1000,
            acc,
            3,
            HashKind::Murmur3,
            crate::common::SEED,
            crate::common::measured_cost_ratio(),
        );
        let paper = paper_plan(namespace, acc, HashKind::Murmur3, 0);
        t.push_row(vec![
            format!("{acc}"),
            plan.m.to_string(),
            plan.depth.to_string(),
            plan.leaf_capacity.to_string(),
            fmt_f64(plan.memory_bytes_paper_convention() as f64 / 1e6),
            fmt_f64(plan.memory_bytes() as f64 / 1e6),
            paper.as_ref().map_or("-".into(), |p| p.m.to_string()),
            paper.as_ref().map_or("-".into(), |p| p.depth.to_string()),
            paper
                .as_ref()
                .map_or("-".into(), |p| p.leaf_capacity.to_string()),
        ]);
    }
    t
}

/// Table 4: BloomSampleTree creation time.
pub fn table4(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Table 4: creation time (ms), parallel build with all cores",
        &["M", "accuracy", "m", "depth", "build ms"],
    );
    for &m_ns in &scale.namespaces {
        for &acc in &scale.accuracies {
            if acc >= 1.0 {
                continue; // Table 4 sweeps 0.5..0.9
            }
            let plan = plan_for(m_ns, acc, HashKind::Murmur3, crate::common::SEED);
            let start = Instant::now();
            let tree = build_tree(&plan);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(tree.node_count());
            t.push_row(vec![
                m_ns.to_string(),
                format!("{acc}"),
                plan.m.to_string(),
                plan.depth.to_string(),
                fmt_f64(elapsed),
            ]);
        }
    }
    t
}

/// Table 5: chi-squared p-values for sample uniformity at `M = 10⁶`
/// (`T = 130·n` rounds, significance 0.08).
///
/// Reported for both the corrected sampler (our recommended mode — matches
/// the paper's conclusion that samples are near-uniform) and the
/// paper-literal estimator descent (see EXPERIMENTS.md for why the latter
/// fails at small `n`).
pub fn table5(scale: &Scale) -> Table {
    let namespace: u64 = 1_000_000;
    let mut t = Table::new(
        "Table 5: chi-squared p-values, M = 10^6 (corrected / paper-literal sampler)",
        &[
            "accuracy",
            "n",
            "T",
            "p (corrected)",
            "p (paper)",
            "acc measured",
        ],
    );
    for &acc in &scale.accuracies {
        let plan = plan_for(namespace, acc, HashKind::Murmur3, crate::common::SEED);
        let tree = build_tree(&plan);
        for &n in &scale.set_sizes {
            let mut rng = rng_for(500 + n as u64);
            let keys = gen_set(&mut rng, SetKind::Uniform, namespace, n);
            let q = build_query(&tree, &keys);
            let rounds = (130 * n).min(scale.chi2_cap);
            let mut row_p = Vec::new();
            let mut measured_acc = 0.0;
            for cfg in [SamplerConfig::corrected(), SamplerConfig::paper()] {
                let sampler = BstSampler::with_config(&tree, cfg);
                let mut counts = vec![0u64; n];
                let mut fp = 0u64;
                let mut stats = OpStats::new();
                for _ in 0..rounds {
                    if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                        match keys.binary_search(&s) {
                            Ok(i) => counts[i] += 1,
                            Err(_) => fp += 1,
                        }
                    }
                }
                let res = chi2_uniform_test(&counts);
                row_p.push(res.p_value);
                let trues: u64 = counts.iter().sum();
                measured_acc = trues as f64 / (trues + fp).max(1) as f64;
            }
            t.push_row(vec![
                format!("{acc}"),
                n.to_string(),
                rounds.to_string(),
                fmt_f64(row_p[0]),
                fmt_f64(row_p[1]),
                fmt_f64(measured_acc),
            ]);
        }
    }
    t
}

/// Table 6: measured accuracy for uniform query sets of `n = 10³`.
pub fn table6(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Table 6: measured accuracy, uniform query sets, n = 10^3",
        &["accuracy", "M", "measured"],
    );
    for &acc in &scale.accuracies {
        for &m_ns in &scale.namespaces {
            let plan = plan_for(m_ns, acc, HashKind::Murmur3, crate::common::SEED);
            let tree = build_tree(&plan);
            let mut rng = rng_for(600 + m_ns);
            let keys = gen_set(&mut rng, SetKind::Uniform, m_ns, 1000);
            let q = build_query(&tree, &keys);
            let sampler = BstSampler::new(&tree);
            let mut stats = OpStats::new();
            let rounds = scale.op_rounds.max(500);
            let (mut trues, mut total) = (0u64, 0u64);
            for _ in 0..rounds {
                if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                    total += 1;
                    if keys.binary_search(&s).is_ok() {
                        trues += 1;
                    }
                }
            }
            t.push_row(vec![
                format!("{acc}"),
                m_ns.to_string(),
                fmt_f64(trues as f64 / total.max(1) as f64),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smoke() {
        let mut scale = Scale::smoke();
        scale.accuracies = vec![0.9];
        let t = table_params(1_000_000, &scale);
        assert_eq!(t.rows.len(), 1);
        // Pinned column shows the published 60870.
        assert_eq!(t.rows[0][6], "60870");
    }

    #[test]
    fn table4_smoke() {
        let scale = Scale::smoke();
        let t = table4(&scale);
        assert_eq!(t.rows.len(), scale.namespaces.len() * 2);
        for row in &t.rows {
            assert!(row[4].parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn table6_smoke() {
        let mut scale = Scale::smoke();
        scale.accuracies = vec![0.9];
        scale.namespaces = vec![100_000];
        scale.op_rounds = 100;
        let t = table6(&scale);
        assert_eq!(t.rows.len(), 1);
        let measured: f64 = t.rows[0][2].parse().unwrap();
        assert!(measured > 0.5, "measured accuracy {measured}");
    }
}
