//! Shared experiment plumbing: plan construction, query-set generation and
//! filter building.

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::HashKind;
use bst_bloom::params::{paper_plan, TreePlan};
use bst_core::costmodel::CostModel;
use bst_core::tree::{BloomSampleTree, SampleTree};
use bst_workloads::querysets::{clustered_set, uniform_set, PAPER_CLUSTERING_PCT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Deterministic base seed for all experiments.
pub const SEED: u64 = 0xB100;

/// Query-set flavour (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetKind {
    /// Uniformly random without replacement.
    Uniform,
    /// The pdf-splitting clustered process, p = 10.
    Clustered,
}

impl SetKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SetKind::Uniform => "uniform",
            SetKind::Clustered => "clustered",
        }
    }
}

/// Generates a query set of the given kind.
pub fn gen_set(rng: &mut StdRng, kind: SetKind, namespace: u64, n: usize) -> Vec<u64> {
    match kind {
        SetKind::Uniform => uniform_set(rng, namespace, n),
        SetKind::Clustered => clustered_set(rng, namespace, n, PAPER_CLUSTERING_PCT),
    }
}

/// The machine's measured intersection/membership cost ratio (Murmur3 at a
/// representative filter size), measured once per process.
pub fn measured_cost_ratio() -> f64 {
    static RATIO: OnceLock<f64> = OnceLock::new();
    *RATIO.get_or_init(|| {
        let hasher = Arc::new(bst_bloom::hash::BloomHasher::new(
            HashKind::Murmur3,
            3,
            60_000,
            1 << 20,
            1,
        ));
        CostModel::measure(&hasher).ratio()
    })
}

/// Plan for `(namespace, accuracy)` pinned to the paper's Tables 2/3 where
/// published, otherwise derived with a fixed cost ratio of 128 — the ratio
/// implied by the paper's published `M⊥` values — so tree depths stay
/// comparable to the publication's across all experiments. (This machine's
/// *measured* ratio is lower, which would yield deeper trees; Tables 2/3
/// report both, and `ablate-depth` sweeps the trade-off.) Query sets of
/// `n = 1000` are the sizing reference, as in the paper.
pub fn plan_for(namespace: u64, accuracy: f64, kind: HashKind, seed: u64) -> TreePlan {
    if let Some(mut plan) = paper_plan(namespace, accuracy, kind, seed) {
        plan.seed = seed;
        return plan;
    }
    TreePlan::for_accuracy(namespace, 1000, accuracy, 3, kind, seed, 128.0)
}

/// Builds the tree for a plan with all cores.
pub fn build_tree(plan: &TreePlan) -> BloomSampleTree {
    BloomSampleTree::build_with_threads(plan, 0)
}

/// Builds a query filter over `keys` compatible with `tree`.
pub fn build_query(tree: &BloomSampleTree, keys: &[u64]) -> BloomFilter {
    tree.query_filter(keys.iter().copied())
}

/// A seeded RNG for experiment `tag`.
pub fn rng_for(tag: u64) -> StdRng {
    StdRng::seed_from_u64(SEED ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_for_pins_paper_rows() {
        let plan = plan_for(1_000_000, 0.9, HashKind::Murmur3, 1);
        assert_eq!(plan.m, 60_870);
        assert_eq!(plan.depth, 9);
        let plan2 = plan_for(1_000_000, 0.9, HashKind::Murmur3, 7);
        assert_eq!(plan2.seed, 7, "seed must override the pinned row");
    }

    #[test]
    fn plan_for_derives_unpublished_points() {
        let plan = plan_for(100_000, 0.9, HashKind::Murmur3, 1);
        assert!(plan.m > 10_000 && plan.m < 60_000, "m = {}", plan.m);
        assert!(plan.depth >= 4, "depth = {}", plan.depth);
    }

    #[test]
    fn set_kinds_generate() {
        let mut rng = rng_for(1);
        let u = gen_set(&mut rng, SetKind::Uniform, 10_000, 100);
        let c = gen_set(&mut rng, SetKind::Clustered, 10_000, 100);
        assert_eq!(u.len(), 100);
        assert_eq!(c.len(), 100);
    }
}
