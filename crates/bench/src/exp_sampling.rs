//! Figures 3–7: sampling operation counts, wall-clock timings and the
//! hash-family comparison.

use std::time::Instant;

use bst_bloom::hash::HashKind;
use bst_core::baselines::dictionary::da_sample;
use bst_core::metrics::OpStats;
use bst_core::sampler::{BstSampler, SamplerConfig};

use crate::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use crate::scale::Scale;
use crate::table::{fmt_f64, Table};

/// Figures 3 (uniform) and 4 (clustered): average number of intersections
/// and membership operations per sample, BST vs DictionaryAttack, for one
/// namespace size.
pub fn fig_ops(namespace: u64, kind: SetKind, scale: &Scale) -> Table {
    let fig = if kind == SetKind::Uniform { "3" } else { "4" };
    let mut t = Table::new(
        format!(
            "Figure {fig} (M = {namespace}): ops per sample, {} query sets",
            kind.name()
        ),
        &[
            "accuracy",
            "n",
            "BST intersections",
            "BST memberships",
            "DA memberships",
        ],
    );
    for &acc in &scale.accuracies {
        let plan = plan_for(namespace, acc, HashKind::Murmur3, crate::common::SEED);
        let tree = build_tree(&plan);
        let sampler = BstSampler::with_config(&tree, SamplerConfig::paper());
        for &n in &scale.set_sizes {
            if n as u64 >= namespace {
                continue;
            }
            let mut rng = rng_for(30 + namespace + n as u64);
            let keys = gen_set(&mut rng, kind, namespace, n);
            let q = build_query(&tree, &keys);
            let mut stats = OpStats::new();
            let rounds = scale.op_rounds;
            for _ in 0..rounds {
                std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
            }
            t.push_row(vec![
                format!("{acc}"),
                n.to_string(),
                fmt_f64(stats.intersections as f64 / rounds as f64),
                fmt_f64(stats.memberships as f64 / rounds as f64),
                namespace.to_string(), // DA scans the namespace, always
            ]);
        }
    }
    t
}

/// Figures 5 (M = 10⁷) and 6 (M = 10⁶): average wall-clock time per
/// sample, BST vs DictionaryAttack.
pub fn fig_time(namespace: u64, kind: SetKind, scale: &Scale) -> Table {
    let fig = if namespace >= 10_000_000 { "5" } else { "6" };
    let mut t = Table::new(
        format!(
            "Figure {fig} (M = {namespace}): avg sampling time (ms), {} query sets",
            kind.name()
        ),
        &["accuracy", "n", "BST ms", "DA ms"],
    );
    for &acc in &scale.accuracies {
        let plan = plan_for(namespace, acc, HashKind::Murmur3, crate::common::SEED);
        let tree = build_tree(&plan);
        let sampler = BstSampler::with_config(&tree, SamplerConfig::paper());
        for &n in &scale.set_sizes {
            if n as u64 >= namespace {
                continue;
            }
            let mut rng = rng_for(50 + namespace + n as u64);
            let keys = gen_set(&mut rng, kind, namespace, n);
            let q = build_query(&tree, &keys);

            let mut stats = OpStats::new();
            let start = Instant::now();
            for _ in 0..scale.time_rounds {
                std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
            }
            let bst_ms = start.elapsed().as_secs_f64() * 1e3 / scale.time_rounds as f64;

            let start = Instant::now();
            for _ in 0..scale.da_time_rounds {
                std::hint::black_box(da_sample(&q, namespace, &mut rng, &mut stats));
            }
            let da_ms = start.elapsed().as_secs_f64() * 1e3 / scale.da_time_rounds as f64;

            t.push_row(vec![
                format!("{acc}"),
                n.to_string(),
                fmt_f64(bst_ms),
                fmt_f64(da_ms),
            ]);
        }
    }
    t
}

/// Figure 7: effect of the hash family (Simple, Murmur3, MD5) on sampling
/// time, BST vs DictionaryAttack, `M = 10⁶`, `n = 10³`.
pub fn fig7(scale: &Scale) -> Table {
    let namespace: u64 = 1_000_000;
    let n = 1000usize;
    let mut t = Table::new(
        "Figure 7: hash families, avg sampling time (ms), M = 10^6, n = 10^3",
        &["accuracy", "family", "BST ms", "DA ms"],
    );
    for &acc in &scale.accuracies {
        for kind in HashKind::ALL {
            let plan = plan_for(namespace, acc, kind, crate::common::SEED);
            let tree = build_tree(&plan);
            let sampler = BstSampler::with_config(&tree, SamplerConfig::paper());
            let mut rng = rng_for(70 + kind as u64);
            let keys = gen_set(&mut rng, SetKind::Uniform, namespace, n);
            let q = build_query(&tree, &keys);

            let mut stats = OpStats::new();
            let start = Instant::now();
            for _ in 0..scale.time_rounds {
                std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
            }
            let bst_ms = start.elapsed().as_secs_f64() * 1e3 / scale.time_rounds as f64;

            let da_rounds = scale.da_time_rounds.max(1);
            let start = Instant::now();
            for _ in 0..da_rounds {
                std::hint::black_box(da_sample(&q, namespace, &mut rng, &mut stats));
            }
            let da_ms = start.elapsed().as_secs_f64() * 1e3 / da_rounds as f64;

            t.push_row(vec![
                format!("{acc}"),
                kind.name().to_string(),
                fmt_f64(bst_ms),
                fmt_f64(da_ms),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::smoke();
        s.accuracies = vec![0.9];
        s.set_sizes = vec![100];
        s.op_rounds = 10;
        s.time_rounds = 5;
        s.da_time_rounds = 1;
        s
    }

    #[test]
    fn fig3_shape() {
        let t = fig_ops(100_000, SetKind::Uniform, &tiny_scale());
        assert_eq!(t.rows.len(), 1);
        let bst_mem: f64 = t.rows[0][3].parse().unwrap();
        let da_mem: f64 = t.rows[0][4].parse().unwrap();
        assert!(
            bst_mem < da_mem / 5.0,
            "BST should use far fewer memberships: {bst_mem} vs {da_mem}"
        );
    }

    #[test]
    fn fig6_bst_beats_da() {
        let t = fig_time(100_000, SetKind::Uniform, &tiny_scale());
        let bst: f64 = t.rows[0][2].parse().unwrap();
        let da: f64 = t.rows[0][3].parse().unwrap();
        assert!(bst < da, "BST {bst} ms should beat DA {da} ms");
    }
}
