//! Result tables: aligned text output (the paper-shaped rows) plus CSV
//! files under `results/`.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Displayed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match headers"
        );
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut header = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            header.push_str(&format!("{h:>w$}  "));
        }
        out.push_str(header.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                line.push_str(&format!("{cell:>w$}  "));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV into `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path, id: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{id}.csv")))?;
        writeln!(f, "{}", csv_line(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", csv_line(row))?;
        }
        Ok(())
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_line(&["a,b".into(), "c".into()]), "\"a,b\",c");
        assert_eq!(csv_line(&["say \"hi\"".into()]), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_writes_file() {
        let dir = std::env::temp_dir().join("bst_table_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir, "demo").unwrap();
        let body = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(0.5), "0.500");
        assert_eq!(fmt_f64(0.0001), "1.00e-4");
    }
}
