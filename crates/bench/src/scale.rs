//! Experiment scales.
//!
//! Every experiment accepts a [`Scale`]: `paper` uses the publication's
//! exact parameters (namespaces up to 10⁷, 10 000 timing rounds, `T = 130n`
//! chi-squared rounds), `small` shrinks rounds and drops the largest
//! namespace so the full suite finishes in minutes, and `smoke` is a
//! seconds-level CI setting. Result *shapes* (who wins, crossovers,
//! trends) are preserved across scales.

/// Parameter set controlling experiment sizes.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Scale name for reporting.
    pub name: &'static str,
    /// Namespace sizes `M` to sweep (the paper uses 10⁵, 10⁶, 10⁷).
    pub namespaces: Vec<u64>,
    /// Query-set sizes `n` (paper: 100, 1 000, 10 000, 50 000).
    pub set_sizes: Vec<usize>,
    /// Sampling accuracies (paper: 0.5–1.0).
    pub accuracies: Vec<f64>,
    /// Rounds for operation-count averaging (paper: 10 000).
    pub op_rounds: usize,
    /// Rounds for BST timing measurements.
    pub time_rounds: usize,
    /// Rounds for DictionaryAttack timing (it is `O(M)` per sample).
    pub da_time_rounds: usize,
    /// Cap on chi-squared sample counts (`T = 130n` capped here).
    pub chi2_cap: usize,
    /// Reconstruction repetitions per configuration.
    pub reconstruct_rounds: usize,
    /// Namespace fractions for the §8 experiments.
    pub fractions: Vec<f64>,
    /// Query filters per fraction in the §8 experiments.
    pub pruned_queries: usize,
}

impl Scale {
    /// Seconds-level CI setting.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            namespaces: vec![100_000],
            set_sizes: vec![100, 1000],
            accuracies: vec![0.7, 0.9],
            op_rounds: 30,
            time_rounds: 30,
            da_time_rounds: 3,
            chi2_cap: 13_000,
            reconstruct_rounds: 2,
            fractions: vec![0.2, 0.6],
            pruned_queries: 20,
        }
    }

    /// Minutes-level default.
    pub fn small() -> Self {
        Scale {
            name: "small",
            namespaces: vec![100_000, 1_000_000],
            set_sizes: vec![100, 1000, 10_000],
            accuracies: vec![0.5, 0.7, 0.9, 1.0],
            op_rounds: 100,
            time_rounds: 50,
            da_time_rounds: 3,
            chi2_cap: 13_000,
            reconstruct_rounds: 1,
            fractions: vec![0.1, 0.3, 0.6, 0.9],
            pruned_queries: 30,
        }
    }

    /// The publication's parameters.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            namespaces: vec![100_000, 1_000_000, 10_000_000],
            set_sizes: vec![100, 1000, 10_000, 50_000],
            accuracies: vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            op_rounds: 10_000,
            time_rounds: 1_000,
            da_time_rounds: 20,
            chi2_cap: 6_500_000,
            reconstruct_rounds: 5,
            fractions: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            pruned_queries: 1000,
        }
    }

    /// Parses a scale name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "smoke" => Ok(Self::smoke()),
            "small" => Ok(Self::small()),
            "paper" => Ok(Self::paper()),
            other => Err(format!("unknown scale: {other} (smoke|small|paper)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all() {
        assert_eq!(Scale::parse("smoke").unwrap().name, "smoke");
        assert_eq!(Scale::parse("small").unwrap().name, "small");
        assert_eq!(Scale::parse("paper").unwrap().name, "paper");
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn scales_are_ordered() {
        let smoke = Scale::smoke();
        let small = Scale::small();
        let paper = Scale::paper();
        assert!(smoke.op_rounds < small.op_rounds);
        assert!(small.op_rounds < paper.op_rounds);
        assert!(paper.namespaces.contains(&10_000_000));
    }
}
