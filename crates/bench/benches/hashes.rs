//! Criterion benches for the hash families (Figure 7): raw hash cost,
//! membership cost per family, and affine inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::{md5::md5_u64, murmur3::murmur3_u64, BloomHasher, HashKind};
use std::sync::Arc;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw-hash");
    group.bench_function("murmur3_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            murmur3_u64(x, 7)
        })
    });
    group.bench_function("md5_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            md5_u64(x, 7)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("membership");
    for kind in HashKind::ALL {
        let hasher = Arc::new(BloomHasher::new(kind, 3, 60_000, 1 << 20, 1));
        let mut f = BloomFilter::new(Arc::clone(&hasher));
        for x in 0..1000u64 {
            f.insert(x * 7);
        }
        group.bench_with_input(BenchmarkId::new("contains", kind.name()), &f, |b, f| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(13);
                f.contains(x % (1 << 20))
            })
        });
    }
    group.finish();

    // Bulk-membership loop at a cache-exceeding filter size: the blocked
    // layout touches one 64-byte line per key (one or two masked word
    // loads), the classic layouts k scattered cache lines. The kernel
    // (`for_each_member`) hoists hasher dispatch out of the loop.
    // Memory-resident contains loop: the filter (2^32 bits = 512 MiB)
    // is far larger than the last-level cache, so every probe is a
    // memory access — the regime the blocked layout targets. k = 7 (the
    // high-accuracy end of the planner's range): a classic member test
    // must touch 7 scattered cache lines, a blocked one exactly 1.
    let mut group = c.benchmark_group("contains-loop");
    group.sample_size(20);
    for kind in [HashKind::Murmur3, HashKind::DeltaBlocked] {
        let hasher = Arc::new(BloomHasher::new(kind, 7, 1 << 32, 1 << 30, 1));
        let mut f = BloomFilter::new(Arc::clone(&hasher));
        let members: Vec<u64> = (0..8_000_000u64)
            .map(|x| x.wrapping_mul(0x9E37_79B9) % (1 << 30))
            .collect();
        for &x in &members {
            f.insert(x);
        }
        // Miss-heavy batch: classic short-circuits on the first unset
        // bit (fill ≈ 1.3%), so both layouts pay ~one line per key.
        let misses: Vec<u64> = (0..1_024u64)
            .map(|i| i.wrapping_mul(0x2545_F491) % (1 << 30))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("batch1024-misses", kind.name()),
            &f,
            |b, f| {
                b.iter(|| {
                    let mut found = 0u64;
                    f.for_each_member(misses.iter().copied(), |_| found += 1);
                    found
                })
            },
        );
        // Member-heavy batch: every key probes all k bits — 7 scattered
        // lines for the classic layout, one line for blocked.
        let hits: Vec<u64> = members.iter().copied().step_by(6011).take(1_024).collect();
        group.bench_with_input(
            BenchmarkId::new("batch1024-members", kind.name()),
            &f,
            |b, f| {
                b.iter(|| {
                    let mut found = 0u64;
                    f.for_each_member(hits.iter().copied(), |_| found += 1);
                    found
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("inversion");
    let hasher = BloomHasher::new(HashKind::Simple, 3, 60_000, 1 << 20, 1);
    group.bench_function("affine-invert-one-bit", |b| {
        let mut bit = 0usize;
        b.iter(|| {
            bit = (bit + 1) % 60_000;
            hasher.invert(0, bit).expect("invertible").count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hashes
}
criterion_main!(benches);
