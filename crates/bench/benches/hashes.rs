//! Criterion benches for the hash families (Figure 7): raw hash cost,
//! membership cost per family, and affine inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::{md5::md5_u64, murmur3::murmur3_u64, BloomHasher, HashKind};
use std::sync::Arc;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw-hash");
    group.bench_function("murmur3_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            murmur3_u64(x, 7)
        })
    });
    group.bench_function("md5_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            md5_u64(x, 7)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("membership");
    for kind in HashKind::ALL {
        let hasher = Arc::new(BloomHasher::new(kind, 3, 60_000, 1 << 20, 1));
        let mut f = BloomFilter::new(Arc::clone(&hasher));
        for x in 0..1000u64 {
            f.insert(x * 7);
        }
        group.bench_with_input(BenchmarkId::new("contains", kind.name()), &f, |b, f| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(13);
                f.contains(x % (1 << 20))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("inversion");
    let hasher = BloomHasher::new(HashKind::Simple, 3, 60_000, 1 << 20, 1);
    group.bench_function("affine-invert-one-bit", |b| {
        let mut bit = 0usize;
        b.iter(|| {
            bit = (bit + 1) % 60_000;
            hasher.invert(0, bit).expect("invertible").count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hashes
}
criterion_main!(benches);
