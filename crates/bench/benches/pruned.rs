//! Criterion benches for the low-occupancy experiments (Figures 13–15):
//! pruned-tree builds, dynamic insertion, and sampling across occupancy
//! fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bloom::hash::HashKind;
use bst_bloom::params::{leaf_size, TreePlan};
use bst_core::metrics::OpStats;
use bst_core::pruned::PrunedBloomSampleTree;
use bst_core::sampler::BstSampler;
use bst_core::tree::SampleTree;
use bst_workloads::occupancy::uniform_occupancy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn plan() -> TreePlan {
    let namespace = 1u64 << 22;
    TreePlan {
        namespace,
        m: 60_000,
        k: 3,
        kind: HashKind::Murmur3,
        seed: 5,
        depth: 8,
        leaf_capacity: leaf_size(namespace, 8),
        target_accuracy: 0.8,
    }
}

fn bench_pruned(c: &mut Criterion) {
    let plan = plan();
    let mut rng = StdRng::seed_from_u64(9);

    let mut group = c.benchmark_group("pruned-fraction");
    group.sample_size(10);
    for fraction in [0.1f64, 0.5, 0.9] {
        let occ = uniform_occupancy(&mut rng, plan.namespace, 256, fraction);
        let ids = occ.sample_ids(&mut rng, 20_000);
        let tree = PrunedBloomSampleTree::build(&plan, &ids);
        let members: Vec<u64> = ids.iter().copied().step_by(17).collect();
        let q = tree.query_filter(members.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("sample", format!("{fraction}")),
            &fraction,
            |b, _| {
                let sampler = BstSampler::new(&tree);
                let mut stats = OpStats::new();
                b.iter(|| sampler.sample(&q, &mut rng, &mut stats))
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("pruned-dynamic");
    group.bench_function("insert", |b| {
        let mut tree = PrunedBloomSampleTree::empty(&plan);
        b.iter(|| tree.insert(rng.gen_range(0..plan.namespace)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pruned
}
criterion_main!(benches);
