//! Classic vs blocked filter layout on the weighing-heavy paths: cold
//! phase-1 weighing of a 32-slot batch through the sharded engine (the
//! weight cache is bypassed so every batch re-runs phase 1 from
//! scratch), and a single-tree cold `live_weight` over a fresh handle.
//! The blocked layout answers each leaf membership probe with one or
//! two masked word loads instead of k scattered bit reads, which is
//! where the cold weighing time goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bloom::hash::HashKind;
use bst_core::system::BstSystem;
use bst_shard::ShardedBstSystem;

const NAMESPACE: u64 = 262_144;
const BATCH_SLOTS: u64 = 32;
const KEYS_PER_SLOT: u64 = 200;

/// Sparse occupancy shared by every engine under test.
fn occupancy() -> Vec<u64> {
    (0..NAMESPACE).step_by(4).collect()
}

fn layouts() -> [HashKind; 2] {
    [HashKind::Murmur3, HashKind::DeltaBlocked]
}

/// Cold phase-1 weighing of a 32-slot batch: the engine's weight cache
/// is disabled, so each `query_batch` call re-weighs every (slot,
/// shard) cell before sampling.
fn bench_batch_phase1(c: &mut Criterion) {
    let occ = occupancy();
    let mut group = c.benchmark_group("blocked-weigh");
    group.sample_size(20);
    for kind in layouts() {
        let engine = ShardedBstSystem::builder(NAMESPACE)
            .shards(4)
            .accuracy(0.9)
            .expected_set_size(1000)
            .seed(1)
            .hash_kind(kind)
            .weight_cache(false)
            .occupied(occ.iter().copied())
            .build();
        let filters: Vec<_> = (0..BATCH_SLOTS)
            .map(|i| {
                engine.store(
                    (0..KEYS_PER_SLOT).map(|j| occ[((i * 4_099 + j * 97) as usize) % occ.len()]),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("batch32-cold-phase1", kind.name()),
            &engine,
            |b, engine| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    engine.query_batch(&filters, seed, 1)
                })
            },
        );
    }
    group.finish();
}

/// Single-tree cold weighing: a fresh `Query` handle per iteration
/// forces the full descend-and-scan recount (no memoized leaves).
fn bench_single_cold_weigh(c: &mut Criterion) {
    let occ = occupancy();
    let mut group = c.benchmark_group("blocked-weigh");
    group.sample_size(20);
    for kind in layouts() {
        let sys = BstSystem::builder(NAMESPACE)
            .accuracy(0.9)
            .expected_set_size(1000)
            .seed(1)
            .hash_kind(kind)
            .pruned(occ.iter().copied())
            .build();
        let filter = sys.store((0..1_000u64).map(|j| occ[(j * 131) as usize % occ.len()]));
        group.bench_with_input(
            BenchmarkId::new("single-cold-live-weight", kind.name()),
            &sys,
            |b, sys| b.iter(|| sys.query(&filter).live_weight().expect("weight")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch_phase1, bench_single_cold_weigh
}
criterion_main!(benches);
