//! Criterion benches for the sampling experiments (Figures 3–6, Tables
//! 5–6): BSTSample vs DictionaryAttack per-sample cost, plus the one-pass
//! multi-sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use bst_bloom::hash::HashKind;
use bst_core::baselines::dictionary::da_sample;
use bst_core::metrics::OpStats;
use bst_core::sampler::{BstSampler, SamplerConfig};

const NAMESPACE: u64 = 100_000;

fn bench_sampling(c: &mut Criterion) {
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Murmur3, 1);
    let tree = build_tree(&plan);
    let mut rng = rng_for(1);

    let mut group = c.benchmark_group("sample");
    for n in [100usize, 1000, 10_000] {
        let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, n);
        let q = build_query(&tree, &keys);

        group.bench_with_input(BenchmarkId::new("bst", n), &n, |b, _| {
            let sampler = BstSampler::new(&tree);
            let mut stats = OpStats::new();
            b.iter(|| sampler.sample(&q, &mut rng, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("bst-paper", n), &n, |b, _| {
            let sampler = BstSampler::with_config(&tree, SamplerConfig::paper());
            let mut stats = OpStats::new();
            b.iter(|| sampler.sample(&q, &mut rng, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("bst-corrected", n), &n, |b, _| {
            let sampler = BstSampler::with_config(&tree, SamplerConfig::corrected());
            let mut stats = OpStats::new();
            b.iter(|| sampler.sample(&q, &mut rng, &mut stats))
        });
        if n == 1000 {
            group.sample_size(10);
            group.bench_function("dictionary-attack", |b| {
                let mut stats = OpStats::new();
                b.iter(|| da_sample(&q, NAMESPACE, &mut rng, &mut stats))
            });
            group.sample_size(100);
        }
    }
    group.finish();

    let mut group = c.benchmark_group("sample-many");
    let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, 1000);
    let q = build_query(&tree, &keys);
    for r in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("one-pass", r), &r, |b, &r| {
            let sampler = BstSampler::new(&tree);
            let mut stats = OpStats::new();
            b.iter(|| sampler.sample_many(&q, r, &mut rng, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("repeated", r), &r, |b, &r| {
            let sampler = BstSampler::new(&tree);
            let mut stats = OpStats::new();
            b.iter(|| {
                for _ in 0..r {
                    std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sampling
}
criterion_main!(benches);
