//! Durability overhead: the same acked mutation through the plain
//! sharded facade vs `DurableBstSystem` (log-before-ack) under both
//! fsync policies, plus the cost of a full checkpoint. The mutation
//! under test is an insert/remove key pair on one stored set — net
//! zero, so state stays constant across criterion's iterations and
//! the WAL is the only thing that grows.
//!
//! Numbers land in `results/wal.md`; the PR 9 acceptance bar is the
//! `--fsync never` durable path within 2× of the non-durable one.

use std::path::PathBuf;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bst_core::wal::FsyncPolicy;
use bst_shard::{DurableBstSystem, DurableConfig, ShardedBstSystem};

const NAMESPACE: u64 = 65_536;
const SHARDS: usize = 4;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bst-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build() -> ShardedBstSystem {
    ShardedBstSystem::builder(NAMESPACE)
        .shards(SHARDS)
        .expected_set_size(64)
        .seed(17)
        .build()
}

fn open_durable(tag: &str, fsync: FsyncPolicy) -> (DurableBstSystem, PathBuf) {
    let dir = scratch_dir(tag);
    let durable = DurableBstSystem::open(
        &dir,
        DurableConfig {
            fsync,
            checkpoint_every: 0, // no compactor: measure the append alone
        },
        build,
    )
    .expect("open durable scratch dir");
    (durable, dir)
}

/// One stored set per engine; the benched op churns a key in and out.
fn seed_set_plain(sys: &ShardedBstSystem) -> bst_core::store::FilterId {
    sys.create((0..64u64).map(|j| j * 131 % NAMESPACE))
        .expect("create")
}

/// The mutation the serving layer actually logs: a multi-key insert
/// followed by the matching remove (cf. `loadgen` / the e2e traffic —
/// 20-key creates, batched key churn). Net zero per iteration.
const CHURN: [u64; 16] = [
    101, 202, 303, 404, 505, 606, 707, 808, 909, 1_010, 1_111, 1_212, 1_313, 1_414, 1_515, 1_616,
];

fn bench_mutation_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal-mutation-ack");

    let plain = build();
    let id = seed_set_plain(&plain);
    group.bench_function("plain-16key-churn", |b| {
        b.iter(|| {
            plain.insert_keys(id, CHURN).expect("insert");
            plain.remove_keys(id, CHURN).expect("remove");
        })
    });
    group.bench_function("plain-1key-churn", |b| {
        b.iter(|| {
            plain.insert_keys(id, [4_242]).expect("insert");
            plain.remove_keys(id, [4_242]).expect("remove");
        })
    });
    group.bench_function("plain-create20-drop", |b| {
        b.iter(|| {
            let id = plain
                .create((0..20u64).map(|j| j * 257 % NAMESPACE))
                .expect("create");
            plain.drop_set(id).expect("drop");
        })
    });
    group.bench_function("plain-occ-churn", |b| {
        b.iter(|| {
            plain.remove_occupied(9_999).expect("occ remove");
            plain.insert_occupied(9_999).expect("occ insert");
        })
    });

    // Fresh WAL directory per benched case: criterion runs millions of
    // iterations, and letting one case's multi-hundred-MB log linger
    // into the next would measure page-writeback pressure, not the
    // append.
    {
        let (durable, dir) = open_durable("never-16", FsyncPolicy::Never);
        let id = durable
            .create((0..64u64).map(|j| j * 131 % NAMESPACE))
            .expect("create");
        group.bench_function("durable-16key-churn-fsync-never", |b| {
            b.iter(|| {
                durable.insert_keys(id, CHURN).expect("insert");
                durable.remove_keys(id, CHURN).expect("remove");
            })
        });
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let (durable, dir) = open_durable("never-1", FsyncPolicy::Never);
        let id = durable
            .create((0..64u64).map(|j| j * 131 % NAMESPACE))
            .expect("create");
        group.bench_function("durable-1key-churn-fsync-never", |b| {
            b.iter(|| {
                durable.insert_keys(id, [4_242]).expect("insert");
                durable.remove_keys(id, [4_242]).expect("remove");
            })
        });
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let (durable, dir) = open_durable("never-create", FsyncPolicy::Never);
        group.bench_function("durable-create20-drop-fsync-never", |b| {
            b.iter(|| {
                let id = durable
                    .create((0..20u64).map(|j| j * 257 % NAMESPACE))
                    .expect("create");
                durable.drop_set(id).expect("drop");
            })
        });
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let (durable, dir) = open_durable("never-occ", FsyncPolicy::Never);
        group.bench_function("durable-occ-churn-fsync-never", |b| {
            b.iter(|| {
                durable.remove_occupied(9_999).expect("occ remove");
                durable.insert_occupied(9_999).expect("occ insert");
            })
        });
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Per-record fsync is orders of magnitude slower; keep the sample
    // budget small so the run stays bounded.
    let (durable, dir) = open_durable("always", FsyncPolicy::Always);
    let id = durable
        .create((0..64u64).map(|j| j * 131 % NAMESPACE))
        .expect("create");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("durable-16key-churn-fsync-always", |b| {
        b.iter(|| {
            durable.insert_keys(id, CHURN).expect("insert");
            durable.remove_keys(id, CHURN).expect("remove");
        })
    });
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

/// A checkpoint = rotate to a fresh log segment + encode the whole
/// engine + tmp-write + rename + retire covered segments; benched over
/// a populated engine so the snapshot is not trivially empty.
fn bench_checkpoint(c: &mut Criterion) {
    let (durable, dir) = open_durable("checkpoint", FsyncPolicy::Never);
    for s in 0..64u64 {
        durable
            .create((0..64u64).map(|j| (s * 4_099 + j * 131) % NAMESPACE))
            .expect("create");
    }
    let mut group = c.benchmark_group("wal-checkpoint");
    group.sample_size(20);
    group.bench_function("checkpoint-64-sets", |b| {
        b.iter(|| durable.checkpoint().expect("checkpoint"))
    });
    group.finish();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_mutation_ack, bench_checkpoint);
criterion_main!(benches);
