//! The sharded engine: scatter-gather sample/reconstruct latency at
//! S ∈ {1, 4, 16} shards against the single-tree baseline, batch fan-out
//! across the crossbeam pool, and the occupancy-mutation invalidation
//! round-trip (insert_occupied → stale sharded handle → cold re-descend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::rng_for;
use bst_core::system::BstSystem;
use bst_shard::ShardedBstSystem;
use bst_workloads::querysets::uniform_set;

const NAMESPACE: u64 = 262_144;
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Sparse occupancy shared by every engine under test.
fn occupancy() -> Vec<u64> {
    (0..NAMESPACE).step_by(4).collect()
}

fn build_sharded(shards: usize) -> ShardedBstSystem {
    ShardedBstSystem::builder(NAMESPACE)
        .shards(shards)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .occupied(occupancy())
        .build()
}

fn build_single() -> BstSystem {
    BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .pruned(occupancy())
        .build()
}

/// Warm-handle scatter-gather sampling vs the single-tree baseline.
fn bench_sample_scaling(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(3);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("shard-sample");
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree", |b| {
        let query = single.query(&filter);
        let mut rng = rng_for(7);
        b.iter(|| query.sample(&mut rng))
    });
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            let query = engine.query(&filter);
            let mut rng = rng_for(7);
            b.iter(|| query.sample(&mut rng))
        });
    }
    group.finish();
}

/// Cold reconstruction (the scatter-gather path that visits every live
/// leaf once) vs the single-tree baseline.
fn bench_reconstruct_scaling(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(5);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("shard-reconstruct");
    group.sample_size(20);
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree", |b| {
        b.iter(|| single.query(&filter).reconstruct().expect("reconstruct"))
    });
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| engine.query(&filter).reconstruct().expect("reconstruct"))
        });
    }
    group.finish();
}

/// Batch fan-out across the crossbeam worker pool.
fn bench_batch_fanout(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(9);
    let mut group = c.benchmark_group("shard-batch-32");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        let filters: Vec<_> = (0..32)
            .map(|_| {
                let keys = uniform_set(&mut rng, occ.len() as u64, 200);
                engine.store(keys.into_iter().map(|i| occ[i as usize]))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| engine.query_batch(&filters, 17, 0))
        });
    }
    group.finish();
}

/// The occupancy-mutation invalidation round-trip: insert_occupied on
/// the owning shard, then the stale sharded handle's next sample (full
/// re-weight + cold re-descent on one shard).
fn bench_occupancy_invalidation(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(11);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("occupancy-invalidation");
    group.sample_size(20);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        let filter = engine.store(keys.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("insert+stale-sample", shards),
            &shards,
            |b, _| {
                let query = engine.query(&filter);
                let mut rng = rng_for(13);
                let mut key = 1u64;
                b.iter(|| {
                    // Toggle an id in and out of the occupancy so the
                    // engine keeps mutating without unbounded growth.
                    engine.insert_occupied(key).expect("insert");
                    engine.remove_occupied(key).expect("remove");
                    key = (key + 4) % NAMESPACE;
                    query.sample(&mut rng)
                })
            },
        );
    }
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree/insert+stale-sample", |b| {
        let query = single.query(&filter);
        let mut rng = rng_for(13);
        let mut key = 1u64;
        b.iter(|| {
            single.insert_occupied(key).expect("insert");
            single.remove_occupied(key).expect("remove");
            key = (key + 4) % NAMESPACE;
            query.sample(&mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_scaling,
    bench_reconstruct_scaling,
    bench_batch_fanout,
    bench_occupancy_invalidation
);
criterion_main!(benches);
