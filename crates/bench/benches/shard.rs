//! The sharded engine: scatter-gather sample/reconstruct latency at
//! S ∈ {1, 4, 16} shards against the single-tree baseline, batch fan-out
//! across the crossbeam pool, the occupancy-mutation invalidation
//! round-trip (insert_occupied → stale sharded handle → journal-repaired
//! re-weight), the weight-delta refresh vs the PR 3 full-recount
//! behaviour, the two-phase batch scatter vs a one-phase emulation, and
//! warm repeated batches against the engine's persistent weight cache vs
//! the cold (cache-bypassed) two-phase path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::rng_for;
use bst_bloom::filter::BloomFilter;
use bst_core::error::BstError;
use bst_core::system::BstSystem;
use bst_shard::ShardedBstSystem;
use bst_workloads::querysets::uniform_set;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAMESPACE: u64 = 262_144;
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Sparse occupancy shared by every engine under test.
fn occupancy() -> Vec<u64> {
    (0..NAMESPACE).step_by(4).collect()
}

fn build_sharded(shards: usize) -> ShardedBstSystem {
    ShardedBstSystem::builder(NAMESPACE)
        .shards(shards)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .occupied(occupancy())
        .build()
}

fn build_single() -> BstSystem {
    BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .pruned(occupancy())
        .build()
}

/// Warm-handle scatter-gather sampling vs the single-tree baseline.
fn bench_sample_scaling(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(3);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("shard-sample");
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree", |b| {
        let query = single.query(&filter);
        let mut rng = rng_for(7);
        b.iter(|| query.sample(&mut rng))
    });
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            let query = engine.query(&filter);
            let mut rng = rng_for(7);
            b.iter(|| query.sample(&mut rng))
        });
    }
    group.finish();
}

/// Cold reconstruction (the scatter-gather path that visits every live
/// leaf once) vs the single-tree baseline.
fn bench_reconstruct_scaling(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(5);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("shard-reconstruct");
    group.sample_size(20);
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree", |b| {
        b.iter(|| single.query(&filter).reconstruct().expect("reconstruct"))
    });
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| engine.query(&filter).reconstruct().expect("reconstruct"))
        });
    }
    group.finish();
}

/// Batch fan-out across the crossbeam worker pool (weight cache
/// bypassed: this group tracks the cold scatter cost itself — the
/// cached path has its own `batch-warm-cache` group).
fn bench_batch_fanout(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(9);
    let mut group = c.benchmark_group("shard-batch-32");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        engine.set_weight_cache(false);
        let filters: Vec<_> = (0..32)
            .map(|_| {
                let keys = uniform_set(&mut rng, occ.len() as u64, 200);
                engine.store(keys.into_iter().map(|i| occ[i as usize]))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| engine.query_batch(&filters, 17, 0))
        });
    }
    group.finish();
}

/// The occupancy-mutation invalidation round-trip: insert_occupied on
/// the owning shard, then the stale sharded handle's next sample (full
/// re-weight + cold re-descent on one shard).
fn bench_occupancy_invalidation(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(11);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("occupancy-invalidation");
    group.sample_size(20);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        let filter = engine.store(keys.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("insert+stale-sample", shards),
            &shards,
            |b, _| {
                let query = engine.query(&filter);
                let mut rng = rng_for(13);
                let mut key = 1u64;
                b.iter(|| {
                    // Toggle an id in and out of the occupancy so the
                    // engine keeps mutating without unbounded growth.
                    engine.insert_occupied(key).expect("insert");
                    engine.remove_occupied(key).expect("remove");
                    key = (key + 4) % NAMESPACE;
                    query.sample(&mut rng)
                })
            },
        );
    }
    let single = build_single();
    let filter = single.store(keys.iter().copied());
    group.bench_function("single-tree/insert+stale-sample", |b| {
        let query = single.query(&filter);
        let mut rng = rng_for(13);
        let mut key = 1u64;
        b.iter(|| {
            single.insert_occupied(key).expect("insert");
            single.remove_occupied(key).expect("remove");
            key = (key + 4) % NAMESPACE;
            query.sample(&mut rng)
        })
    });
    group.finish();
}

/// The weight-delta mutation round-trip in isolation: mutate, then
/// refresh `live_weight` on a **warm** handle (journal repair + O(k)
/// count delta) vs a **fresh** handle per call (the PR 3 behaviour — a
/// full cold recount of the mutated shard).
fn bench_weight_delta(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(15);
    let keys: Vec<u64> = uniform_set(&mut rng, occ.len() as u64, 1000)
        .into_iter()
        .map(|i| occ[i as usize])
        .collect();

    let mut group = c.benchmark_group("weight-delta");
    group.sample_size(20);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        let filter = engine.store(keys.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("mutate+delta-refresh", shards),
            &shards,
            |b, _| {
                let query = engine.query(&filter);
                query.live_weight().expect("prime");
                let mut key = 1u64;
                b.iter(|| {
                    engine.insert_occupied(key).expect("insert");
                    engine.remove_occupied(key).expect("remove");
                    key = (key + 4) % NAMESPACE;
                    query.live_weight().expect("weight")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutate+full-recount", shards),
            &shards,
            |b, _| {
                let mut key = 1u64;
                b.iter(|| {
                    engine.insert_occupied(key).expect("insert");
                    engine.remove_occupied(key).expect("remove");
                    key = (key + 4) % NAMESPACE;
                    // A fresh handle has no memo: its weight is the cold
                    // counting walk every time — PR 3's refresh cost.
                    engine.query(&filter).live_weight().expect("weight")
                })
            },
        );
    }
    group.finish();
}

/// The PR 3 one-phase scatter, reproduced for comparison: every
/// (shard, slot) cell computes its weight **and** a speculative sample,
/// workers chunk whole shards (capped at the shard count), and the
/// gather keeps one candidate per slot.
type OnePhaseCell = (u64, Result<u64, BstError>);

fn one_phase_batch(
    engine: &ShardedBstSystem,
    filters: &[BloomFilter],
    seed: u64,
) -> Vec<Result<u64, BstError>> {
    fn cell_seed(seed: u64, shard: u64, slot: u64) -> u64 {
        seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ slot.wrapping_add(1).wrapping_mul(0xD1B5_4A32_D192_ED03)
    }
    let shards = engine.shard_systems();
    let slots = filters.len();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(shards.len());
    let chunk = shards.len().div_ceil(workers);
    let mut rows: Vec<(usize, Vec<Vec<OnePhaseCell>>)> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (w, systems) in shards.chunks(chunk).enumerate() {
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::with_capacity(systems.len());
                for (offset, sys) in systems.iter().enumerate() {
                    let shard = w * chunk + offset;
                    let mut row = Vec::with_capacity(slots);
                    for (slot, filter) in filters.iter().enumerate() {
                        let q = sys.query(filter);
                        let weight = q.live_weight().unwrap_or(0);
                        let mut rng =
                            StdRng::seed_from_u64(cell_seed(seed, shard as u64, slot as u64));
                        row.push((weight, q.sample(&mut rng)));
                    }
                    out.push(row);
                }
                (w, out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");
    rows.sort_by_key(|(w, _)| *w);
    let grid: Vec<Vec<OnePhaseCell>> = rows.into_iter().flat_map(|(_, r)| r).collect();
    (0..slots)
        .map(|slot| {
            let total: u64 = grid.iter().map(|row| row[slot].0).sum();
            if total == 0 {
                return Err(BstError::NoLiveLeaf);
            }
            let mut rng = StdRng::seed_from_u64(cell_seed(seed, u64::MAX, slot as u64));
            let mut pick = rng.gen_range(0..total);
            for row in &grid {
                let (weight, result) = &row[slot];
                if pick < *weight {
                    return *result;
                }
                pick -= weight;
            }
            unreachable!()
        })
        .collect()
}

/// Two-phase batch scatter (weights first, sample only chosen cells,
/// cell-grid chunking) vs the PR 3 one-phase emulation above. Weight
/// cache bypassed on both arms: this group compares the scatter
/// *structures* at equal (cold) weighing cost.
fn bench_batch_two_phase(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(19);
    let mut group = c.benchmark_group("batch-two-phase-32");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        engine.set_weight_cache(false);
        let filters: Vec<_> = (0..32)
            .map(|_| {
                let keys = uniform_set(&mut rng, occ.len() as u64, 200);
                engine.store(keys.into_iter().map(|i| occ[i as usize]))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("two-phase", shards), &shards, |b, _| {
            b.iter(|| engine.query_batch(&filters, 17, 0))
        });
        group.bench_with_input(BenchmarkId::new("one-phase", shards), &shards, |b, _| {
            b.iter(|| one_phase_batch(&engine, &filters, 17))
        });
    }
    group.finish();
}

/// Repeated 32-slot batches against the engine-level persistent weight
/// cache vs the PR 4 cold two-phase path (cache bypassed): a warm batch
/// revalidates `S × 32` stamp pairs and samples the 32 chosen cells,
/// instead of re-walking every (shard, slot) weighing from scratch —
/// the near-pure-phase-2 floor. A third variant mutates the occupancy
/// between batches, so every warm entry must repair through the
/// mutation journal before serving (the stale-repair path).
fn bench_batch_warm_cache(c: &mut Criterion) {
    let occ = occupancy();
    let mut rng = rng_for(23);
    let mut group = c.benchmark_group("batch-warm-cache");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let engine = build_sharded(shards);
        let filters: Vec<_> = (0..32)
            .map(|_| {
                let keys = uniform_set(&mut rng, occ.len() as u64, 200);
                engine.store(keys.into_iter().map(|i| occ[i as usize]))
            })
            .collect();
        // Cold: exactly the PR 4 two-phase path (cache bypassed).
        engine.set_weight_cache(false);
        group.bench_with_input(
            BenchmarkId::new("cold-two-phase", shards),
            &shards,
            |b, _| b.iter(|| engine.query_batch(&filters, 17, 0)),
        );
        // Warm: cache enabled and primed — repeated identical batches
        // skip phase 1 entirely.
        engine.set_weight_cache(true);
        engine.query_batch(&filters, 17, 0);
        group.bench_with_input(BenchmarkId::new("warm-cached", shards), &shards, |b, _| {
            b.iter(|| engine.query_batch(&filters, 17, 0))
        });
        // Warm + churn: an occupancy toggle between batches forces the
        // journal-repair path on the mutated shard's 32 cells.
        group.bench_with_input(
            BenchmarkId::new("warm-repaired", shards),
            &shards,
            |b, _| {
                let mut key = 1u64;
                b.iter(|| {
                    engine.insert_occupied(key).expect("insert");
                    engine.remove_occupied(key).expect("remove");
                    key = (key + 4) % NAMESPACE;
                    engine.query_batch(&filters, 17, 0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_scaling,
    bench_reconstruct_scaling,
    bench_batch_fanout,
    bench_occupancy_invalidation,
    bench_weight_delta,
    bench_batch_two_phase,
    bench_batch_warm_cache
);
criterion_main!(benches);
