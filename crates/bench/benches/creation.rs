//! Criterion benches for tree construction (Tables 2–4): sequential vs
//! parallel BloomSampleTree builds and pruned-tree builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::plan_for;
use bst_bloom::hash::HashKind;
use bst_core::pruned::PrunedBloomSampleTree;
use bst_core::tree::BloomSampleTree;
use bst_workloads::querysets::uniform_set;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree-build");
    group.sample_size(10);
    for m_ns in [100_000u64, 1_000_000] {
        let plan = plan_for(m_ns, 0.9, HashKind::Murmur3, 1);
        group.bench_with_input(BenchmarkId::new("sequential", m_ns), &plan, |b, plan| {
            b.iter(|| BloomSampleTree::build(plan))
        });
        group.bench_with_input(BenchmarkId::new("parallel", m_ns), &plan, |b, plan| {
            b.iter(|| BloomSampleTree::build_with_threads(plan, 0))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pruned-build");
    group.sample_size(10);
    let plan = plan_for(1_000_000, 0.9, HashKind::Murmur3, 1);
    let mut rng = StdRng::seed_from_u64(3);
    for occupied_n in [1000usize, 10_000] {
        let occupied = uniform_set(&mut rng, 1_000_000, occupied_n);
        group.bench_with_input(
            BenchmarkId::new("batch", occupied_n),
            &occupied,
            |b, occ| b.iter(|| PrunedBloomSampleTree::build(&plan, occ)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_creation
}
criterion_main!(benches);
