//! Query-handle amortization: N repeated samples on one filter via the
//! old stateless per-call path vs. the cached `Query` handle.
//!
//! The per-call path re-evaluates child intersections on every descent
//! and re-scans leaf candidates on every arrival; the handle memoizes
//! both after the first walk, and (for the corrected sampler) builds the
//! frontier weight cache once instead of once per call. The printed
//! `ops-ratio` lines report the same comparison in the paper's own units
//! (intersections + memberships).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::rng_for;
use bst_core::metrics::OpStats;
use bst_core::sampler::BstSampler;
use bst_core::system::{BstConfig, BstSystem};
use bst_workloads::querysets::uniform_set;

const NAMESPACE: u64 = 100_000;
const OPS_PROBE_SAMPLES: usize = 1000;

fn build_system(cfg: BstConfig) -> BstSystem {
    BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .config(cfg)
        .build()
}

/// Paper-units comparison, printed once per configuration: total ops for
/// `OPS_PROBE_SAMPLES` samples, per-call vs. handle.
fn print_ops_ratio(label: &str, system: &BstSystem, filter: &bst_bloom::filter::BloomFilter) {
    let mut rng = rng_for(99);
    let mut per_call = OpStats::new();
    let view = system.tree().read();
    let sampler = BstSampler::with_config(&view, system.config().sampler);
    for _ in 0..OPS_PROBE_SAMPLES {
        let _ = sampler.sample(filter, &mut rng, &mut per_call);
    }
    let query = system.query(filter);
    for _ in 0..OPS_PROBE_SAMPLES {
        let _ = query.sample(&mut rng);
    }
    let handle = query.stats();
    println!(
        "ops-ratio/{label}: per-call {} ops, handle {} ops ({:.1}x fewer) over {OPS_PROBE_SAMPLES} samples",
        per_call.total_ops(),
        handle.total_ops(),
        per_call.total_ops() as f64 / handle.total_ops().max(1) as f64,
    );
}

fn bench_query_handle(c: &mut Criterion) {
    for (label, cfg) in [
        ("default", BstConfig::default()),
        ("corrected", BstConfig::corrected()),
    ] {
        let system = build_system(cfg);
        let mut rng = rng_for(3);
        let mut group = c.benchmark_group(format!("repeated-sample/{label}"));
        for n in [100usize, 1000] {
            let keys = uniform_set(&mut rng, NAMESPACE, n);
            let filter = system.store(keys.iter().copied());

            group.bench_with_input(BenchmarkId::new("per-call", n), &n, |b, _| {
                // The old facade shape: a stateless sampler invocation per
                // request, no reusable per-filter state.
                let view = system.tree().read();
                let sampler = BstSampler::with_config(&view, system.config().sampler);
                let mut rng = rng_for(7);
                let mut stats = OpStats::new();
                b.iter(|| sampler.sample(&filter, &mut rng, &mut stats))
            });
            group.bench_with_input(BenchmarkId::new("query-handle", n), &n, |b, _| {
                let query = system.query(&filter);
                let mut rng = rng_for(7);
                b.iter(|| query.sample(&mut rng))
            });

            if n == 1000 {
                print_ops_ratio(label, &system, &filter);
            }
        }
        group.finish();
    }

    // Reconstruction through a handle: the second pass is pure traversal.
    let system = build_system(BstConfig::default());
    let mut rng = rng_for(5);
    let keys = uniform_set(&mut rng, NAMESPACE, 1000);
    let filter = system.store(keys.iter().copied());
    let mut group = c.benchmark_group("repeated-reconstruct");
    group.sample_size(10);
    group.bench_function("per-call", |b| {
        let view = system.tree().read();
        let recon = bst_core::reconstruct::BstReconstructor::with_config(
            &view,
            system.config().reconstruct,
        );
        let mut stats = OpStats::new();
        b.iter(|| recon.reconstruct(&filter, &mut stats))
    });
    group.bench_function("query-handle", |b| {
        let query = system.query(&filter);
        b.iter(|| query.reconstruct())
    });
    group.finish();
}

criterion_group!(benches, bench_query_handle);
criterion_main!(benches);
