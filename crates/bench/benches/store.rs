//! The mutable filter database: store mutation throughput, the cost of a
//! generation-stamp check on the hot sampling path, the refresh penalty a
//! mutation imposes on an open handle, and whole-system snapshot
//! encode/decode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::rng_for;
use bst_core::system::BstSystem;
use bst_workloads::querysets::uniform_set;

const NAMESPACE: u64 = 100_000;

fn build_system() -> BstSystem {
    BstSystem::builder(NAMESPACE)
        .accuracy(0.9)
        .expected_set_size(1000)
        .seed(1)
        .build()
}

/// Warm-handle sampling, detached vs store-backed: the stamp check a
/// `query_id` handle pays per operation is one store read-lock + integer
/// compare, and this pair of benches prices it.
fn bench_stamp_check_overhead(c: &mut Criterion) {
    let system = build_system();
    let mut rng = rng_for(3);
    let keys = uniform_set(&mut rng, NAMESPACE, 1000);

    let mut group = c.benchmark_group("warm-sample");
    let filter = system.store(keys.iter().copied());
    group.bench_function("detached-handle", |b| {
        let query = system.query(&filter);
        let mut rng = rng_for(7);
        b.iter(|| query.sample(&mut rng))
    });
    let id = system.create(keys.iter().copied()).expect("create");
    group.bench_function("stored-handle", |b| {
        let query = system.query_id(id).expect("open");
        let mut rng = rng_for(7);
        b.iter(|| query.sample(&mut rng))
    });
    group.finish();
}

/// One mutation + the stale handle's next operation: the full
/// invalidation round-trip (bump, re-projection, cold re-descent).
fn bench_mutation_refresh(c: &mut Criterion) {
    let system = build_system();
    let mut rng = rng_for(5);
    let keys = uniform_set(&mut rng, NAMESPACE, 1000);
    let id = system.create(keys.iter().copied()).expect("create");

    let mut group = c.benchmark_group("mutate-then-sample");
    group.bench_function("insert+stale-refresh", |b| {
        let query = system.query_id(id).expect("open");
        let mut rng = rng_for(11);
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % NAMESPACE;
            system.insert_keys(id, [key]).expect("insert");
            query.sample(&mut rng)
        })
    });
    group.bench_function("mutation-only", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % NAMESPACE;
            system.insert_keys(id, [key]).expect("insert")
        })
    });
    group.finish();
}

/// Whole-system snapshot encode/decode at growing store sizes.
fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("system-snapshot");
    group.sample_size(10);
    for sets in [1usize, 32] {
        let system = build_system();
        let mut rng = rng_for(13);
        for _ in 0..sets {
            let keys = uniform_set(&mut rng, NAMESPACE, 500);
            system.create(keys.iter().copied()).expect("create");
        }
        let bytes = system.to_bytes();
        group.bench_with_input(BenchmarkId::new("to_bytes", sets), &sets, |b, _| {
            b.iter(|| system.to_bytes())
        });
        group.bench_with_input(BenchmarkId::new("from_bytes", sets), &sets, |b, _| {
            b.iter(|| BstSystem::from_bytes(&bytes).expect("decode"))
        });
        println!(
            "snapshot-size/{sets}-sets: {:.2} MB",
            bytes.len() as f64 / 1e6
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stamp_check_overhead,
    bench_mutation_refresh,
    bench_snapshot
);
criterion_main!(benches);
