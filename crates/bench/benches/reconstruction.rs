//! Criterion benches for the reconstruction experiments (Figures 8–12):
//! BloomSampleTree vs HashInvert vs DictionaryAttack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bst_bench::common::{build_query, build_tree, gen_set, plan_for, rng_for, SetKind};
use bst_bloom::hash::HashKind;
use bst_core::baselines::dictionary::da_reconstruct;
use bst_core::baselines::hashinvert::hi_reconstruct;
use bst_core::metrics::OpStats;
use bst_core::reconstruct::{BstReconstructor, ReconstructConfig};

const NAMESPACE: u64 = 100_000;

fn bench_reconstruction(c: &mut Criterion) {
    let plan = plan_for(NAMESPACE, 0.9, HashKind::Simple, 1);
    let tree = build_tree(&plan);
    let mut rng = rng_for(2);

    let mut group = c.benchmark_group("reconstruct");
    group.sample_size(10);
    for n in [100usize, 1000] {
        let keys = gen_set(&mut rng, SetKind::Uniform, NAMESPACE, n);
        let q = build_query(&tree, &keys);

        group.bench_with_input(BenchmarkId::new("bst-sound", n), &n, |b, _| {
            let recon = BstReconstructor::new(&tree);
            let mut stats = OpStats::new();
            b.iter(|| recon.reconstruct(&q, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("bst-paper", n), &n, |b, _| {
            let recon = BstReconstructor::with_config(&tree, ReconstructConfig::paper());
            let mut stats = OpStats::new();
            b.iter(|| recon.reconstruct(&q, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("hashinvert", n), &n, |b, _| {
            let mut stats = OpStats::new();
            b.iter(|| hi_reconstruct(&q, &mut stats))
        });
        group.bench_with_input(BenchmarkId::new("dictionary-attack", n), &n, |b, _| {
            let mut stats = OpStats::new();
            b.iter(|| da_reconstruct(&q, NAMESPACE, &mut stats))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_reconstruction
}
criterion_main!(benches);
