//! Observability overhead: the warm single-sample path and the warm
//! 32-slot batch path, measured three ways on the same engine state —
//! with tracing fully disabled (the default, and the cost every caller
//! pays), with a [`bst_obs::NoopRecorder`] installed (the facade's
//! dispatch cost alone), and with the server's real configuration (a
//! 1024-slot [`bst_obs::RingRecorder`] plus [`bst_shard::BatchObs`]
//! phase histograms).
//!
//! The acceptance bar is the *disabled* row: instrumented-but-off must
//! stay within 5% of the pre-instrumentation baseline, which here means
//! "disabled" and the other rows bracket a small, flat cost. Numbers
//! land in `results/obs_overhead.md`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bst_bench::common::rng_for;
use bst_core::store::FilterId;
use bst_obs::{NoopRecorder, Recorder, RingRecorder};
use bst_shard::{BatchObs, ShardedBstSystem};
use bst_workloads::querysets::uniform_set;

const NAMESPACE: u64 = 65_536;
const SHARDS: usize = 4;
const SET_SIZE: u64 = 1_000;
const BATCH_SLOTS: usize = 32;

/// Dense-ish occupancy shared by every configuration.
fn build_engine() -> ShardedBstSystem {
    ShardedBstSystem::builder(NAMESPACE)
        .shards(SHARDS)
        .accuracy(0.9)
        .expected_set_size(SET_SIZE)
        .seed(1)
        .occupied((0..NAMESPACE).step_by(4).collect::<Vec<u64>>())
        .build()
}

fn stored_keys(tag: u64) -> Vec<u64> {
    let mut rng = rng_for(tag);
    uniform_set(&mut rng, NAMESPACE / 4, SET_SIZE as usize)
        .into_iter()
        .map(|i| i * 4)
        .collect()
}

/// The three sink configurations under test, applied to a live engine.
enum Sinks {
    Disabled,
    Noop,
    Ring,
}

impl Sinks {
    fn name(&self) -> &'static str {
        match self {
            Sinks::Disabled => "disabled",
            Sinks::Noop => "noop-recorder",
            Sinks::Ring => "ring+batch-obs",
        }
    }

    fn install(&self, sys: &ShardedBstSystem) {
        match self {
            Sinks::Disabled => {
                sys.set_recorder(None);
                sys.set_batch_obs(None);
            }
            Sinks::Noop => {
                sys.set_recorder(Some(Arc::new(NoopRecorder) as Arc<dyn Recorder>));
                sys.set_batch_obs(None);
            }
            Sinks::Ring => {
                sys.set_recorder(Some(Arc::new(RingRecorder::new(1_024)) as Arc<dyn Recorder>));
                sys.set_batch_obs(Some(Arc::new(BatchObs::unregistered())));
            }
        }
    }
}

const CONFIGS: [Sinks; 3] = [Sinks::Disabled, Sinks::Noop, Sinks::Ring];

/// Warm single-sample draws through a cached query handle — the hot
/// path the 5% acceptance bar is pinned to.
fn bench_warm_sample(c: &mut Criterion) {
    let sys = build_engine();
    let id = sys.create(stored_keys(2)).unwrap();
    let handle = sys.query_id(id).unwrap();
    let mut rng = rng_for(3);
    // Warm the handle's memoized weights before any timing.
    handle.sample(&mut rng).unwrap();

    let mut group = c.benchmark_group("obs-overhead-sample");
    for cfg in &CONFIGS {
        cfg.install(&sys);
        group.bench_function(cfg.name(), |b| {
            b.iter(|| {
                let key = handle.sample(&mut rng).unwrap();
                let _ = handle.take_stats();
                key
            })
        });
    }
    group.finish();
    sys.set_recorder(None);
    sys.set_batch_obs(None);
}

/// Warm 32-slot batches: the persistent weight cache is hot, so every
/// iteration is the phase-2 scatter plus per-batch span/histograms.
fn bench_warm_batch(c: &mut Criterion) {
    let sys = build_engine();
    let ids: Vec<FilterId> = (0..BATCH_SLOTS as u64)
        .map(|slot| sys.create(stored_keys(100 + slot)).unwrap())
        .collect();
    // Warm the engine-level weight cache before any timing.
    let (answers, _) = sys.query_batch_ids(&ids, 7, 0);
    assert!(answers.iter().all(Result::is_ok));

    let mut group = c.benchmark_group("obs-overhead-batch");
    for cfg in &CONFIGS {
        cfg.install(&sys);
        let mut seed = 0u64;
        group.bench_function(cfg.name(), |b| {
            b.iter(|| {
                seed += 1;
                sys.query_batch_ids(&ids, seed, 0)
            })
        });
    }
    group.finish();
    sys.set_recorder(None);
    sys.set_batch_obs(None);
}

criterion_group!(benches, bench_warm_sample, bench_warm_batch);
criterion_main!(benches);
