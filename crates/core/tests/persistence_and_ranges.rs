//! Integration tests for the production extensions: tree persistence,
//! range-restricted reconstruction, and prepared corrected sampling.

use bst_bloom::hash::HashKind;
use bst_bloom::params::{leaf_size, TreePlan};
use bst_core::metrics::OpStats;
use bst_core::pruned::PrunedBloomSampleTree;
use bst_core::reconstruct::BstReconstructor;
use bst_core::sampler::{BstSampler, SamplerConfig};
use bst_core::tree::{BloomSampleTree, SampleTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan(namespace: u64, depth: u32) -> TreePlan {
    TreePlan {
        namespace,
        m: 16_384,
        k: 3,
        kind: HashKind::Murmur3,
        seed: 5,
        depth,
        leaf_capacity: leaf_size(namespace, depth),
        target_accuracy: 0.9,
    }
}

#[test]
fn complete_tree_roundtrips_through_bytes() {
    let p = plan(8192, 5);
    let tree = BloomSampleTree::build(&p);
    let bytes = tree.to_bytes();
    let back = BloomSampleTree::from_bytes(&bytes).expect("decode");
    assert_eq!(back.node_count(), tree.node_count());
    assert_eq!(back.plan(), tree.plan());
    for i in 0..tree.node_count() as u32 {
        assert_eq!(back.filter(i).bits(), tree.filter(i).bits(), "node {i}");
        assert_eq!(back.range(i), tree.range(i), "range {i}");
    }
    // Behavioural equivalence: same reconstruction for the same filter.
    let keys: Vec<u64> = (0..150u64).map(|i| i * 53 % 8192).collect();
    let q = tree.query_filter(keys.iter().copied());
    let mut s1 = OpStats::new();
    let mut s2 = OpStats::new();
    assert_eq!(
        BstReconstructor::new(&tree).reconstruct(&q, &mut s1),
        BstReconstructor::new(&back).reconstruct(&q, &mut s2),
    );
}

#[test]
fn pruned_tree_roundtrips_through_bytes() {
    let p = plan(1 << 16, 6);
    let occupied: Vec<u64> = (0..500u64)
        .map(|i| i * 131 % (1 << 16))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut tree = PrunedBloomSampleTree::build(&p, &occupied);
    // Exercise dynamic state before persisting.
    tree.insert(99);
    tree.remove(occupied[10]);
    let bytes = tree.to_bytes();
    let back = PrunedBloomSampleTree::from_bytes(&bytes).expect("decode");
    assert_eq!(back.occupied_count(), tree.occupied_count());
    assert_eq!(back.occupied_ids(), tree.occupied_ids());
    assert_eq!(back.node_count(), tree.node_count());
    let q = tree.query_filter(tree.occupied_ids().into_iter().take(50));
    let mut s1 = OpStats::new();
    let mut s2 = OpStats::new();
    assert_eq!(
        BstReconstructor::new(&tree).reconstruct(&q, &mut s1),
        BstReconstructor::new(&back).reconstruct(&q, &mut s2),
    );
}

#[test]
fn decode_rejects_corruption() {
    use bst_core::persistence::PersistError;
    let p = plan(4096, 4);
    let tree = BloomSampleTree::build(&p);
    let bytes = tree.to_bytes();
    assert_eq!(
        BloomSampleTree::from_bytes(&bytes[..10]).unwrap_err(),
        PersistError::Truncated
    );
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert_eq!(
        BloomSampleTree::from_bytes(&wrong_magic).unwrap_err(),
        PersistError::BadMagic
    );
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 200;
    assert_eq!(
        BloomSampleTree::from_bytes(&wrong_version).unwrap_err(),
        PersistError::BadVersion(200)
    );
    // Pruned decoder must reject complete-tree payloads.
    assert_eq!(
        PrunedBloomSampleTree::from_bytes(&bytes).unwrap_err(),
        PersistError::BadMagic
    );
}

#[test]
fn range_reconstruction_matches_filtered_full() {
    let p = plan(8192, 5);
    let tree = BloomSampleTree::build(&p);
    let keys: Vec<u64> = (0..300u64)
        .map(|i| i * 27 % 8192)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let q = tree.query_filter(keys.iter().copied());
    let recon = BstReconstructor::new(&tree);
    let mut s_full = OpStats::new();
    let full = recon.reconstruct(&q, &mut s_full);
    for window in [0..8192u64, 1000..3000, 0..1, 8191..8192, 4000..4001] {
        let mut s_win = OpStats::new();
        let got = recon.reconstruct_range(&q, window.clone(), &mut s_win);
        let expected: Vec<u64> = full
            .iter()
            .copied()
            .filter(|x| window.contains(x))
            .collect();
        assert_eq!(got, expected, "window {window:?}");
    }
}

#[test]
fn narrow_windows_cost_less() {
    let p = plan(1 << 14, 7);
    let tree = BloomSampleTree::build(&p);
    let keys: Vec<u64> = (0..(1 << 14)).step_by(16).collect();
    let q = tree.query_filter(keys.iter().copied());
    let recon = BstReconstructor::new(&tree);
    let mut s_full = OpStats::new();
    let _ = recon.reconstruct(&q, &mut s_full);
    let mut s_win = OpStats::new();
    let _ = recon.reconstruct_range(&q, 0..512, &mut s_win);
    assert!(
        s_win.memberships * 4 < s_full.memberships,
        "window scan {} vs full {}",
        s_win.memberships,
        s_full.memberships
    );
}

#[test]
fn empty_window_returns_nothing() {
    let p = plan(4096, 4);
    let tree = BloomSampleTree::build(&p);
    let q = tree.query_filter([1u64, 2, 3]);
    let recon = BstReconstructor::new(&tree);
    let mut stats = OpStats::new();
    #[allow(clippy::reversed_empty_ranges)]
    let window = 100..100u64;
    assert!(recon.reconstruct_range(&q, window, &mut stats).is_empty());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
fn memoized_sampling_matches_unmemoized_distribution() {
    use bst_core::sampler::QueryMemo;
    let p = plan(1 << 14, 6);
    let tree = BloomSampleTree::build(&p);
    let keys: Vec<u64> = (0..64u64)
        .map(|i| i * 251 % (1 << 14))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let q = tree.query_filter(keys.iter().copied());
    let sampler = BstSampler::with_config(&tree, SamplerConfig::corrected());
    let mut rng = StdRng::seed_from_u64(42);
    let mut stats = OpStats::new();
    let mut memo = QueryMemo::new();
    let mut counts = vec![0u64; keys.len()];
    for _ in 0..130 * keys.len() {
        let s = sampler
            .try_sample_memo(&q, &mut memo, &mut rng, &mut stats)
            .expect("sample");
        if let Ok(i) = keys.binary_search(&s) {
            counts[i] += 1;
        }
    }
    assert!(memo.is_prepared());
    assert!(memo.estimated_cardinality().expect("prepared") > 40.0);
    let res = bst_stats::chi2_uniform_test(&counts);
    assert!(
        res.p_value > 0.01,
        "memoized sampling skewed: p = {}",
        res.p_value
    );

    // Memoization amortises: sampling with a warm memo must not be slower
    // per sample than fresh corrected sampling.
    let t0 = std::time::Instant::now();
    for _ in 0..200 {
        let _ = std::hint::black_box(sampler.try_sample_memo(&q, &mut memo, &mut rng, &mut stats));
    }
    let memoized_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..200 {
        std::hint::black_box(sampler.sample(&q, &mut rng, &mut stats));
    }
    let fresh_time = t1.elapsed();
    assert!(
        memoized_time <= fresh_time * 2,
        "memoized {memoized_time:?} vs fresh {fresh_time:?}"
    );
}
