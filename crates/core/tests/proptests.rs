//! Property-based tests for the BloomSampleTree core: soundness of
//! sampling and reconstruction under arbitrary sets, agreement between
//! methods, and pruned-tree/full-tree equivalence.

use bst_bloom::hash::HashKind;
use bst_bloom::params::{leaf_size, TreePlan};
use bst_core::baselines::{dictionary, hashinvert};
use bst_core::metrics::OpStats;
use bst_core::pruned::PrunedBloomSampleTree;
use bst_core::reconstruct::BstReconstructor;
use bst_core::sampler::BstSampler;
use bst_core::tree::{BloomSampleTree, SampleTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan(namespace: u64, m: usize, depth: u32, kind: HashKind) -> TreePlan {
    TreePlan {
        namespace,
        m,
        k: 3,
        kind,
        seed: 99,
        depth,
        leaf_capacity: leaf_size(namespace, depth),
        target_accuracy: 0.9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sample is a positive of the query filter, across tree shapes.
    #[test]
    fn samples_are_positives(
        keys in prop::collection::hash_set(0u64..4096, 1..200),
        depth in 1u32..7,
        seed in any::<u64>(),
    ) {
        let tree = BloomSampleTree::build(&plan(4096, 1 << 15, depth, HashKind::Murmur3));
        let mut sorted: Vec<u64> = keys.iter().copied().collect();
        sorted.sort_unstable();
        let q = tree.query_filter(sorted.iter().copied());
        let sampler = BstSampler::new(&tree);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = OpStats::new();
        for _ in 0..20 {
            if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                prop_assert!(q.contains(s), "sample {} is not a positive", s);
                prop_assert!(s < 4096, "sample outside namespace");
            }
        }
    }

    /// Sound reconstruction returns exactly the positive set (equal to the
    /// Dictionary Attack scan), for every hash family.
    #[test]
    fn reconstruction_equals_full_scan(
        keys in prop::collection::hash_set(0u64..2048, 1..150),
        kind in prop_oneof![Just(HashKind::Simple), Just(HashKind::Murmur3)],
    ) {
        let tree = BloomSampleTree::build(&plan(2048, 1 << 14, 4, kind));
        let mut sorted: Vec<u64> = keys.iter().copied().collect();
        sorted.sort_unstable();
        let q = tree.query_filter(sorted.iter().copied());
        let mut s1 = OpStats::new();
        let rec = BstReconstructor::new(&tree).reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let scan = dictionary::da_reconstruct(&q, 2048, &mut s2);
        prop_assert_eq!(rec, scan);
    }

    /// HashInvert reconstruction agrees with the Dictionary Attack in both
    /// density modes.
    #[test]
    fn hashinvert_equals_full_scan(
        keys in prop::collection::hash_set(0u64..8192, 1..300),
        m in 512usize..8192,
    ) {
        let hasher = std::sync::Arc::new(bst_bloom::hash::BloomHasher::new(
            HashKind::Simple, 3, m, 8192, 3,
        ));
        let q = bst_bloom::filter::BloomFilter::from_keys(hasher, keys.iter().copied());
        let mut s1 = OpStats::new();
        let hi = hashinvert::hi_reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let da = dictionary::da_reconstruct(&q, 8192, &mut s2);
        prop_assert_eq!(hi, da);
    }

    /// The pruned tree over the full namespace's occupied set answers
    /// queries identically to the complete tree restricted to occupied ids.
    #[test]
    fn pruned_matches_full_on_occupied(
        occupied in prop::collection::btree_set(0u64..4096, 10..300),
        member_stride in 1usize..5,
    ) {
        let p = plan(4096, 1 << 15, 5, HashKind::Murmur3);
        let occ: Vec<u64> = occupied.iter().copied().collect();
        let pruned = PrunedBloomSampleTree::build(&p, &occ);
        let full = BloomSampleTree::build(&p);
        let members: Vec<u64> = occ.iter().copied().step_by(member_stride).collect();
        let q = pruned.query_filter(members.iter().copied());
        let mut s1 = OpStats::new();
        let rec_pruned = BstReconstructor::new(&pruned).reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let rec_full: Vec<u64> = BstReconstructor::new(&full)
            .reconstruct(&q, &mut s2)
            .into_iter()
            .filter(|x| occ.binary_search(x).is_ok())
            .collect();
        prop_assert_eq!(rec_pruned, rec_full);
    }

    /// Dynamic insertion in any order produces the same tree behaviour as a
    /// batch build.
    #[test]
    fn dynamic_equals_batch(
        ids in prop::collection::hash_set(0u64..65_536, 1..150),
    ) {
        let p = plan(65_536, 4096, 6, HashKind::Murmur3);
        let mut sorted: Vec<u64> = ids.iter().copied().collect();
        sorted.sort_unstable();
        let batch = PrunedBloomSampleTree::build(&p, &sorted);
        let mut dynamic = PrunedBloomSampleTree::empty(&p);
        for &id in &ids {
            prop_assert!(dynamic.insert(id));
        }
        prop_assert_eq!(dynamic.occupied_ids(), batch.occupied_ids());
        prop_assert_eq!(dynamic.occupied_count(), batch.occupied_count());
        let q = batch.query_filter(sorted.iter().copied().take(40));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        prop_assert_eq!(
            BstReconstructor::new(&batch).reconstruct(&q, &mut s1),
            BstReconstructor::new(&dynamic).reconstruct(&q, &mut s2)
        );
    }

    /// Under arbitrary interleaved `insert`/`remove` sequences, the
    /// maintained subtree weights exactly equal a from-scratch recount
    /// at every node, and the root weight equals the surviving id count.
    #[test]
    fn maintained_weights_equal_recount(
        initial in prop::collection::btree_set(0u64..4096, 0..120),
        ops in prop::collection::vec((any::<bool>(), 0u64..4096), 1..150),
    ) {
        let p = plan(4096, 2048, 5, HashKind::Murmur3);
        let occ: Vec<u64> = initial.iter().copied().collect();
        let mut tree = PrunedBloomSampleTree::build(&p, &occ);
        let mut live = initial.clone();
        let mut mutations = 0u64;
        for (insert, id) in ops {
            let expected = if insert { live.insert(id) } else { live.remove(&id) };
            let changed = if insert { tree.insert(id) } else { tree.remove(id) };
            prop_assert_eq!(changed, expected);
            mutations += u64::from(changed);
            prop_assert!(tree.verify_weights(), "weights drifted after mutation");
        }
        prop_assert_eq!(tree.occupied_count(), live.len() as u64);
        prop_assert_eq!(tree.occupied_ids(), live.into_iter().collect::<Vec<u64>>());
        // Every successful mutation bumped the journal version once.
        prop_assert_eq!(tree.version(), mutations);
    }

    /// A warm `Query` handle repaired through the mutation journal
    /// reports exactly the live weight (and reconstruction) a cold
    /// handle computes, under arbitrary interleaved occupancy churn.
    #[test]
    fn repaired_live_weight_equals_cold(
        initial in prop::collection::btree_set(0u64..2048, 1..100),
        member_stride in 1usize..4,
        ops in prop::collection::vec((any::<bool>(), 0u64..2048), 1..40),
    ) {
        use bst_core::system::BstSystem;
        let occ: Vec<u64> = initial.iter().copied().collect();
        let sys = BstSystem::builder(2048)
            .expected_set_size(64)
            .seed(17)
            .pruned(occ.iter().copied())
            .build();
        let members: Vec<u64> = (0..2048u64).step_by(member_stride * 7).collect();
        let filter = sys.store(members.iter().copied());
        let warm = sys.query(&filter);
        // Prime the memo so every mutation exercises the repair path.
        let _ = warm.live_weight();
        for (insert, id) in ops {
            if insert {
                sys.insert_occupied(id).unwrap();
            } else {
                sys.remove_occupied(id).unwrap();
            }
            let cold = sys.query(&filter);
            prop_assert_eq!(warm.live_weight(), cold.live_weight());
            prop_assert_eq!(warm.reconstruct(), cold.reconstruct());
            prop_assert!(sys.weights_consistent());
        }
    }

    /// The one-pass multi-sampler returns only positives and at most r.
    #[test]
    fn sample_many_sound(
        keys in prop::collection::hash_set(0u64..4096, 1..100),
        r in 0usize..64,
        seed in any::<u64>(),
    ) {
        let tree = BloomSampleTree::build(&plan(4096, 1 << 15, 5, HashKind::Murmur3));
        let q = tree.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&tree);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = OpStats::new();
        let out = sampler.sample_many(&q, r, &mut rng, &mut stats);
        prop_assert!(out.len() <= r);
        for s in out {
            prop_assert!(q.contains(s));
        }
    }
}
