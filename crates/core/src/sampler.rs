//! BSTSample (Algorithm 1) and the one-pass multi-sampler (§5.3).
//!
//! Traversal: at each internal node, estimate the size of the query's
//! intersection with each child's filter. Children deemed empty are pruned
//! (§5.6); when both survive, descend into one with probability
//! proportional to the estimates, backtracking into the sibling when the
//! chosen subtree turns out to be a false-positive path. At a leaf,
//! brute-force membership over the candidates and pick uniformly.
//!
//! ## Configuration space (and why it exists)
//!
//! The paper leaves two decisions under-specified, and both matter:
//!
//! * **Liveness** (when is a branch "empty"?). [`Liveness::EstimateThreshold`]
//!   is the paper's §5.6 rule: prune when the estimated intersection size is
//!   below a threshold τ. At the paper's own parameters the estimate's noise
//!   is of the same order as a 1-element signal, so this rule *silently
//!   discards* true elements with non-trivial probability (the §5.6 caveat).
//!   [`Liveness::BitOverlap`] is the sound primitive implicit in the paper's
//!   Claim 5.4 ("the intersection Bloom filter has at least k bits set"):
//!   any true element contributes all `k` of its bits to both filters, so
//!   `t∧ < k` proves emptiness and no element can ever be lost. It prunes
//!   less aggressively; soundness is the price the default pays.
//! * **Descent ratio estimator.** [`RatioEstimator::AndCardinality`]
//!   (`n̂ = ln(ẑ∧/m)/(k ln(1−1/m))` on the AND — the estimator used in the
//!   paper's Proposition 5.2 proof) degrades gracefully toward a 50/50 split
//!   when chance bits swamp the signal. [`RatioEstimator::Papapetrou`]
//!   (the §5.3 display formula) is mean-corrected but *amplifies* frozen
//!   chance noise at exactly the levels where counts are small.
//!
//! Additionally, `carry_intersection` intersects the query filter with each
//! node on the way down, so chance bits decay geometrically with depth —
//! a large quality win for one extra AND per visited node.
//!
//! ## Exact uniformity: rejection correction
//!
//! Even with the best estimator, descent probabilities carry frozen noise,
//! and at the published parameter points raw BSTSample output is measurably
//! non-uniform (see EXPERIMENTS.md, Table 5 discussion). The
//! [`Correction::Rejection`] extension tracks the proposal probability
//! `P(path)` of the walk and accepts a leaf's sample with probability
//! `c_leaf / (P(path) · n̂ · γ)`, which cancels the proposal distribution
//! exactly (up to clipping, controlled by γ): accepted samples are uniform
//! over all positives *regardless of estimate noise*. Expected cost: γ
//! walks per sample.
//!
//! ## Amortization: [`QueryMemo`]
//!
//! One tree serves many query filters, and one *filter* is often queried
//! many times (the §3.2 framework's whole point). Every per-node decision
//! this module makes — child liveness, descent weight, a leaf's matching
//! elements, the corrected sampler's frontier weight cache — is a pure
//! function of `(tree, query, config)`, because each tree node is reached
//! by exactly one root path. A [`QueryMemo`] caches those decisions keyed
//! by node id; the `*_memo` entry points consult it before touching a
//! filter, so repeated operations on the same filter replace `O(m/64)`-word
//! Bloom intersections and full leaf membership scans with hash-map hits.
//! The high-level [`crate::query::Query`] handle owns one memo per filter;
//! one-shot entry points use a throwaway memo and behave exactly as before.

use std::collections::HashMap;
use std::sync::Arc;

use bst_bloom::estimate::{cardinality_from_ones, intersection_estimate};
use bst_bloom::filter::BloomFilter;
use rand::Rng;

use crate::error::BstError;
use crate::metrics::OpStats;
use crate::tree::{NodeId, SampleTree};

/// Default emptiness threshold τ for the paper's §5.6 pruning rule.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// When is a child branch considered non-empty?
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Liveness {
    /// Sound rule: live iff the AND has at least `k` set bits (no true
    /// element can be pruned away).
    BitOverlap,
    /// The paper's §5.6 rule: live iff the estimated intersection size
    /// exceeds the threshold. Faster, but can lose elements.
    EstimateThreshold(f64),
}

/// Which estimator drives the descent probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RatioEstimator {
    /// Mean-corrected bit overlap: `max(t∧ − t₁t₂/m, noise floor)`. The
    /// `t₁t₂/m` term is the expected chance overlap under independence, so
    /// the weight tracks the *signal* bits; the floor (one standard
    /// deviation of the chance overlap, at least `k`) keeps weights
    /// positive so no live branch can starve, and when both children sit
    /// at the noise floor the split degrades to 50/50. No regime mixing:
    /// at saturated nodes both children cancel to the floor.
    MeanCorrectedBits,
    /// Cardinality of the AND bitmap (Swamidass–Baldi form used in the
    /// Prop. 5.2 proof). Self-regularising but *flattens* ratios wherever
    /// chance bits dominate, which under-proposes clustered sets badly.
    AndCardinality,
    /// The Papapetrou et al. cross-term estimator (§5.3 display formula).
    /// Sharp when signal dominates, but mixes saturated-fallback and
    /// cross-term regimes across levels and can freeze near-zero
    /// probability onto a live branch.
    Papapetrou,
}

/// Post-hoc correction toward exact uniformity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Correction {
    /// Raw BSTSample (the paper's algorithm).
    None,
    /// Rejection correction with oversampling factor γ (≈ γ walks per
    /// sample). Larger γ ⇒ less clipping ⇒ closer to exactly uniform.
    Rejection {
        /// Oversampling factor.
        gamma: f64,
    },
    /// Rejection with γ chosen from the tree shape and the query's
    /// estimated cardinality.
    RejectionAuto,
}

/// Tunable sampling behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Branch-emptiness rule.
    pub liveness: Liveness,
    /// Descent-ratio estimator.
    pub ratio: RatioEstimator,
    /// Intersect the query with each node's filter on the way down
    /// (chance-noise decay; one extra intersection op per visited node).
    pub carry_intersection: bool,
    /// `false` splits 50/50 between live children (ablation lever).
    pub proportional_descent: bool,
    /// Uniformity correction.
    pub correction: Correction,
}

impl Default for SamplerConfig {
    /// Sound and fast: bit-overlap liveness, mean-corrected bit-overlap
    /// descent ratios, no correction.
    ///
    /// `carry_intersection` defaults to off because tree node filters are
    /// nested (a parent is the union of its children), so
    /// `q ∧ n₁ ∧ … ∧ n_d = q ∧ n_d` bit-for-bit: carrying cannot change
    /// any AND count and only costs an extra intersection per node. It
    /// *does* change the `t₂` input of Papapetrou-based rules, which is
    /// why it remains available as an option.
    fn default() -> Self {
        SamplerConfig {
            liveness: Liveness::BitOverlap,
            ratio: RatioEstimator::MeanCorrectedBits,
            carry_intersection: false,
            proportional_descent: true,
            correction: Correction::None,
        }
    }
}

impl SamplerConfig {
    /// The algorithm exactly as the paper describes it: §5.6 threshold
    /// pruning, §5.3 Papapetrou estimates, no carried intersection, no
    /// correction. Use for reproducing the paper's operation counts.
    pub fn paper() -> Self {
        SamplerConfig {
            liveness: Liveness::EstimateThreshold(DEFAULT_THRESHOLD),
            ratio: RatioEstimator::Papapetrou,
            carry_intersection: false,
            proportional_descent: true,
            correction: Correction::None,
        }
    }

    /// Provably near-uniform output (χ²-passing at the paper's Table 5
    /// operating points): defaults plus auto-tuned rejection correction.
    pub fn corrected() -> Self {
        SamplerConfig {
            correction: Correction::RejectionAuto,
            ..Self::default()
        }
    }

    /// Checks the configuration's numeric invariants, naming the broken
    /// one. [`BstSampler::with_config`] asserts the same invariants.
    pub fn validate(&self) -> Result<(), BstError> {
        if let Liveness::EstimateThreshold(tau) = self.liveness {
            if !(tau.is_finite() && tau >= 0.0) {
                return Err(BstError::InvalidConfig(
                    "liveness threshold must be finite and non-negative",
                ));
            }
        }
        if let Correction::Rejection { gamma } = self.correction {
            if !(gamma.is_finite() && gamma >= 1.0) {
                return Err(BstError::InvalidConfig(
                    "rejection gamma must be finite and at least 1",
                ));
            }
        }
        Ok(())
    }
}

/// Outcome of evaluating one child branch.
#[derive(Clone, Copy)]
struct ChildEval {
    live: bool,
    ratio_weight: f64,
}

/// Frontier/correction state shared by all corrected samples of one query.
struct PreparedState {
    n_hat: f64,
    gamma: f64,
    /// Aggregated mean-corrected weights for the saturated upper region
    /// (see [`BstSampler::build_blind_cache`]). Shared behind `Arc` so a
    /// proposal walk can read it while the memo is mutably borrowed.
    blind: Arc<HashMap<NodeId, f64>>,
}

/// Memoized per-query evaluation state.
///
/// Every entry is a pure function of `(tree, query filter, config)` —
/// each node has exactly one root path, so the carried filter reaching it
/// is determined by its id — which makes node-keyed caching sound even
/// with `carry_intersection` enabled. A memo must only ever be reused
/// with the *same* tree, filter and config it was first used with; the
/// [`crate::query::Query`] handle enforces that pairing.
///
/// Cached work is **not** re-counted in [`OpStats`]: stats report actual
/// filter operations performed, so the amortization is directly visible
/// as falling per-call op counts.
#[derive(Default)]
pub struct QueryMemo {
    evals: HashMap<NodeId, ChildEval>,
    /// Matching elements per fully-scanned leaf; shared with the
    /// reconstructor (the membership test is config-independent).
    pub(crate) leaves: HashMap<NodeId, Arc<Vec<u64>>>,
    /// Reconstruction liveness per node (the reconstructor's pruning rule
    /// can differ from the sampler's, so it gets its own map).
    pub(crate) recon_live: HashMap<NodeId, bool>,
    /// The full-range live-leaf weight of the last counting/reconstruction
    /// walk — the maintained per-filter weight: repeated `live_weight`
    /// calls are O(1) until a mutation invalidates it.
    pub(crate) cached_count: Option<u64>,
    prepared: Option<PreparedState>,
}

impl QueryMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached node evaluations (liveness + descent weight).
    pub fn cached_evals(&self) -> usize {
        self.evals.len()
    }

    /// Number of leaves whose match lists are cached.
    pub fn cached_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the corrected-sampling frontier state has been built.
    pub fn is_prepared(&self) -> bool {
        self.prepared.is_some()
    }

    /// The estimated cardinality of the query, if corrected-sampling
    /// state has been built.
    pub fn estimated_cardinality(&self) -> Option<f64> {
        self.prepared.as_ref().map(|p| p.n_hat)
    }

    /// The cached full-range live-leaf weight, if a counting or full
    /// reconstruction walk has run since the last invalidation.
    pub fn cached_count(&self) -> Option<u64> {
        self.cached_count
    }

    /// Repairs the memo's node-keyed state after one occupancy mutation
    /// at `id`: every entry whose inputs could have changed is dropped,
    /// everything else is kept, so the next operation re-evaluates
    /// `O(depth)` nodes instead of the whole live frontier. The cached
    /// live-leaf count is handled separately by the caller (it can often
    /// be delta-updated instead of dropped — see
    /// [`crate::backend::TreeView::repair_memo`]).
    ///
    /// What changes when `id` is inserted/removed: the filters of the
    /// nodes on `id`'s root-to-leaf path, and that leaf's candidate list.
    /// Node filters are laminar (each child ⊆ its parent), so a
    /// non-path node's liveness/weight — a function of `query ∧ own
    /// filter` — is untouched; the only cross-contamination is through
    /// the *carried* filter, which (again by laminarity) equals
    /// `query ∧ filter(parent)`: it changes exactly for children of path
    /// nodes. Dropping each path node's entry **and its children's**
    /// therefore restores cold-walk equivalence bit-for-bit. The
    /// corrected sampler's frontier cache aggregates weights across the
    /// whole upper tree, so it is rebuilt wholesale.
    ///
    /// Nodes unlinked by removals keep stale entries, but they are
    /// unreachable (their parent's entry is dropped and recomputed
    /// against the new links), so the walk never consults them.
    pub fn repair_after_mutation<T: SampleTree>(&mut self, tree: &T, id: u64) {
        self.prepared = None;
        let Some(mut node) = tree.root() else {
            return;
        };
        loop {
            self.evals.remove(&node);
            self.recon_live.remove(&node);
            if tree.is_leaf(node) {
                self.leaves.remove(&node);
                return;
            }
            let (l, r) = tree.children(node);
            for child in [l, r].into_iter().flatten() {
                self.evals.remove(&child);
                self.recon_live.remove(&child);
            }
            // Descend toward the mutated id; a missing child means the
            // (sub)path was never materialised or has been unlinked —
            // nothing below it can be cached under a reachable key.
            match [l, r]
                .into_iter()
                .flatten()
                .find(|&c| tree.range(c).contains(&id))
            {
                Some(next) => node = next,
                None => return,
            }
        }
    }
}

/// Sampler bound to a tree.
pub struct BstSampler<'t, T: SampleTree> {
    tree: &'t T,
    cfg: SamplerConfig,
}

impl<'t, T: SampleTree> BstSampler<'t, T> {
    /// Creates a sampler with the default (sound) configuration.
    pub fn new(tree: &'t T) -> Self {
        BstSampler {
            tree,
            cfg: SamplerConfig::default(),
        }
    }

    /// Creates a sampler with explicit configuration.
    pub fn with_config(tree: &'t T, cfg: SamplerConfig) -> Self {
        if let Liveness::EstimateThreshold(tau) = cfg.liveness {
            assert!(tau >= 0.0, "threshold must be non-negative");
        }
        if let Correction::Rejection { gamma } = cfg.correction {
            assert!(gamma >= 1.0, "gamma must be at least 1");
        }
        BstSampler { tree, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Evaluates one child: liveness + descent weight. One intersection op
    /// on a memo miss, a hash lookup on a hit.
    fn eval_child(
        &self,
        child: Option<NodeId>,
        carried: &BloomFilter,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> ChildEval {
        let Some(c) = child else {
            return ChildEval {
                live: false,
                ratio_weight: 0.0,
            };
        };
        if let Some(&e) = memo.evals.get(&c) {
            return e;
        }
        stats.intersections += 1;
        let f = self.tree.filter(c);
        let k = f.k();
        let m = f.m();
        let t_and = f.and_count(carried);
        let live = match self.cfg.liveness {
            Liveness::BitOverlap => t_and >= k,
            Liveness::EstimateThreshold(tau) => {
                let est = intersection_estimate(m, k, f.count_ones(), carried.count_ones(), t_and);
                est > tau
            }
        };
        let ratio_weight = match self.cfg.ratio {
            RatioEstimator::MeanCorrectedBits => {
                let chance = f.count_ones() as f64 * carried.count_ones() as f64 / m as f64;
                let floor = chance.sqrt().max(k as f64);
                (t_and as f64 - chance).max(floor)
            }
            RatioEstimator::AndCardinality => cardinality_from_ones(m, k, t_and),
            RatioEstimator::Papapetrou => {
                intersection_estimate(m, k, f.count_ones(), carried.count_ones(), t_and)
            }
        }
        .max(1e-12);
        let e = ChildEval { live, ratio_weight };
        memo.evals.insert(c, e);
        e
    }

    /// The filter to carry into `child`.
    fn descend_filter(
        &self,
        child: NodeId,
        carried: &BloomFilter,
        stats: &mut OpStats,
    ) -> BloomFilter {
        if self.cfg.carry_intersection {
            stats.intersections += 1;
            BloomFilter::intersection(carried, self.tree.filter(child))
        } else {
            carried.clone()
        }
    }

    /// Draws one sample from the set stored in `query`, or `None` when the
    /// filter is empty or every path dies in pruning. See
    /// [`Self::try_sample`] for the variant that reports *why*.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<u64> {
        self.try_sample(query, rng, stats).ok()
    }

    /// Draws one sample, reporting the failure reason on a miss.
    pub fn try_sample<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Result<u64, BstError> {
        let mut memo = QueryMemo::new();
        self.try_sample_memo(query, &mut memo, rng, stats)
    }

    /// [`Self::try_sample`] against a persistent [`QueryMemo`], amortizing
    /// per-node evaluations and leaf scans across repeated samples of the
    /// same filter.
    pub fn try_sample_memo<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Result<u64, BstError> {
        let root = self.tree.root().ok_or(BstError::EmptyTree)?;
        if query.is_empty() {
            return Err(BstError::EmptyFilter);
        }
        match self.cfg.correction {
            Correction::None => self
                .sample_at(root, query, query, memo, rng, stats)
                .ok_or(BstError::NoLiveLeaf),
            Correction::Rejection { gamma } => {
                self.sample_corrected(query, Some(gamma), memo, rng, stats)
            }
            Correction::RejectionAuto => self.sample_corrected(query, None, memo, rng, stats),
        }
    }

    /// γ heuristic: proposal skew grows as sets get sparse relative to the
    /// leaf count; clamp to a sane work budget.
    fn auto_gamma(&self, query: &BloomFilter) -> f64 {
        let n_hat = query.estimate_cardinality().max(1.0);
        let leaves = match self.tree.root() {
            Some(root) => {
                let total = self.tree.range(root);
                let width = (total.end - total.start).max(1);
                // Leaves ≈ namespace / leaf width; derive from any leaf by
                // walking left. Cheap: depth steps.
                let mut node = root;
                let mut depth = 0u32;
                while !self.tree.is_leaf(node) {
                    let (l, r) = self.tree.children(node);
                    match l.or(r) {
                        Some(child) => node = child,
                        // A childless internal node cannot exist in a
                        // well-formed tree; stop descending and use the
                        // depth reached.
                        None => break,
                    }
                    depth += 1;
                }
                let _ = width;
                (1u64 << depth.min(40)) as f64
            }
            None => 1.0,
        };
        (12.0 * (2.0 * leaves / n_hat).sqrt()).clamp(6.0, 48.0)
    }

    /// Ensures the memo carries corrected-sampling state (cardinality
    /// estimate, γ, frontier weight cache), building it on first use.
    fn ensure_prepared(
        &self,
        query: &BloomFilter,
        gamma_override: Option<f64>,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> (f64, f64, Arc<HashMap<NodeId, f64>>) {
        let p = memo.prepared.get_or_insert_with(|| {
            let gamma = gamma_override.unwrap_or_else(|| self.auto_gamma(query));
            let blind = match self.tree.root() {
                Some(root) => self.build_blind_cache(root, query, stats),
                None => HashMap::new(),
            };
            PreparedState {
                n_hat: query.estimate_cardinality().max(1.0),
                gamma,
                blind: Arc::new(blind),
            }
        });
        (p.n_hat, p.gamma, Arc::clone(&p.blind))
    }

    /// Rejection-corrected sampling: repeat proposal walks, accepting a
    /// leaf's uniform pick with probability `c_leaf / (P(path)·n̂·γ)`.
    ///
    /// Before walking, a *frontier weight cache* is built: node filters in
    /// the upper tree are saturated (all-ones) at realistic parameters, so
    /// their AND with the query carries no signal and a naive walk splits
    /// 50/50 there — blind to where the set's mass actually lives, which
    /// is catastrophic for clustered sets. The cache evaluates the
    /// mean-corrected weight at the first *unsaturated* descendants and
    /// aggregates the sums upward, giving the blind levels informed
    /// routing probabilities. It is built once per memo.
    fn sample_corrected<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        gamma_override: Option<f64>,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Result<u64, BstError> {
        let root = self.tree.root().ok_or(BstError::EmptyTree)?;
        let (n_hat, gamma, blind) = self.ensure_prepared(query, gamma_override, memo, stats);
        let max_attempts = (64.0 * gamma) as usize;
        let mut fallback = None;
        let mut reached_leaf = false;
        for attempt in 0..max_attempts {
            let Some((leaf, p_path)) = self.propose(root, query, &blind, memo, rng, stats) else {
                continue;
            };
            reached_leaf = true;
            let matches = self.leaf_matches(leaf, query, memo, stats);
            if matches.is_empty() {
                continue;
            }
            let pick = matches[rng.gen_range(0..matches.len())];
            let alpha = matches.len() as f64 / (p_path * n_hat * gamma);
            if rng.gen::<f64>() < alpha {
                return Ok(pick);
            }
            if fallback.is_none() && attempt + 8 >= max_attempts {
                fallback = Some(pick);
            }
        }
        match fallback {
            // Budget exhausted: return the last viable pick (slightly
            // biased) rather than failing.
            Some(pick) => Ok(pick),
            None if reached_leaf => Err(BstError::BudgetExhausted {
                attempts: max_attempts,
            }),
            None => Err(BstError::NoLiveLeaf),
        }
    }

    /// Fill ratio above which a node filter is considered informationless.
    const SATURATION_FILL: f64 = 0.98;

    /// Cap on cache size: stop deepening past this many frontier nodes.
    const BLIND_CACHE_CAP: usize = 4096;

    /// Computes subtree weights for the saturated upper region of the tree
    /// (see [`Self::sample_corrected`]). Keys: every node in the saturated
    /// region and its frontier. Values: aggregated mean-corrected weights.
    fn build_blind_cache(
        &self,
        root: NodeId,
        query: &BloomFilter,
        stats: &mut OpStats,
    ) -> HashMap<NodeId, f64> {
        let mut cache = HashMap::new();
        self.blind_weight(root, query, &mut cache, stats);
        cache
    }

    fn blind_weight(
        &self,
        node: NodeId,
        query: &BloomFilter,
        cache: &mut HashMap<NodeId, f64>,
        stats: &mut OpStats,
    ) -> f64 {
        let f = self.tree.filter(node);
        let saturated = f.count_ones() as f64 > Self::SATURATION_FILL * f.m() as f64;
        let w = if saturated && !self.tree.is_leaf(node) && cache.len() < Self::BLIND_CACHE_CAP {
            let (lc, rc) = self.tree.children(node);
            let mut sum = 0.0;
            for child in [lc, rc].into_iter().flatten() {
                sum += self.blind_weight(child, query, cache, stats);
            }
            sum
        } else {
            stats.intersections += 1;
            let m = f.m();
            let t_and = f.and_count(query);
            let chance = f.count_ones() as f64 * query.count_ones() as f64 / m as f64;
            let floor = chance.sqrt().max(f.k() as f64);
            (t_and as f64 - chance).max(floor)
        };
        cache.insert(node, w);
        w
    }

    /// One proposal walk (no backtracking): returns the reached leaf and
    /// the path probability. Nodes present in the blind cache route by the
    /// cached aggregated weights; below the frontier the per-node
    /// estimators take over (memoized).
    fn propose<R: Rng + ?Sized>(
        &self,
        root: NodeId,
        query: &BloomFilter,
        blind: &HashMap<NodeId, f64>,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<(NodeId, f64)> {
        let mut node = root;
        let mut carried = if self.cfg.carry_intersection {
            stats.intersections += 1;
            BloomFilter::intersection(query, self.tree.filter(root))
        } else {
            query.clone()
        };
        let mut p_path = 1.0f64;
        loop {
            stats.nodes_visited += 1;
            if self.tree.is_leaf(node) {
                return Some((node, p_path));
            }
            let (lc, rc) = self.tree.children(node);
            // Cached (blind-region) weights take priority; otherwise
            // evaluate the child estimators through the memo.
            let weight_of = |child: Option<NodeId>,
                             memo: &mut QueryMemo,
                             carried: &BloomFilter,
                             stats: &mut OpStats| match child {
                None => (false, 0.0),
                Some(c) => match blind.get(&c) {
                    Some(&w) => (w > 0.0, w),
                    None => {
                        let e = self.eval_child(Some(c), carried, memo, stats);
                        (e.live, e.ratio_weight)
                    }
                },
            };
            let (l_live, lw) = weight_of(lc, memo, &carried, stats);
            let (r_live, rw) = weight_of(rc, memo, &carried, stats);
            // Mask dead children out so the match below carries the
            // liveness proof in the type.
            let lc = if l_live { lc } else { None };
            let rc = if r_live { rc } else { None };
            let (next, prob) = match (lc, rc) {
                (None, None) => return None,
                (Some(c), None) => (c, 1.0),
                (None, Some(c)) => (c, 1.0),
                (Some(cl), Some(cr)) => {
                    let p_left = if self.cfg.proportional_descent {
                        lw / (lw + rw)
                    } else {
                        0.5
                    };
                    if rng.gen::<f64>() < p_left {
                        (cl, p_left)
                    } else {
                        (cr, 1.0 - p_left)
                    }
                }
            };
            p_path *= prob;
            if self.cfg.carry_intersection {
                stats.intersections += 1;
                carried.intersect_with(self.tree.filter(next));
            }
            node = next;
        }
    }

    fn sample_at<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        carried: &BloomFilter,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<u64> {
        stats.nodes_visited += 1;
        if self.tree.is_leaf(node) {
            return self.sample_leaf(node, query, memo, rng, stats);
        }
        let (lc, rc) = self.tree.children(node);
        let le = self.eval_child(lc, carried, memo, stats);
        let re = self.eval_child(rc, carried, memo, stats);
        // Mask dead children out so the match below carries the
        // liveness proof in the type.
        let lc = if le.live { lc } else { None };
        let rc = if re.live { rc } else { None };
        match (lc, rc) {
            (None, None) => None,
            (Some(c), None) | (None, Some(c)) => {
                let carried = self.descend_filter(c, carried, stats);
                self.sample_at(c, &carried, query, memo, rng, stats)
            }
            (Some(cl), Some(cr)) => {
                let p_left = if self.cfg.proportional_descent {
                    le.ratio_weight / (le.ratio_weight + re.ratio_weight)
                } else {
                    0.5
                };
                let (c1, c2) = if rng.gen::<f64>() < p_left {
                    (cl, cr)
                } else {
                    (cr, cl)
                };
                let carried1 = self.descend_filter(c1, carried, stats);
                let picked = self.sample_at(c1, &carried1, query, memo, rng, stats);
                if picked.is_some() {
                    picked
                } else {
                    // False-positive path: backtrack into the sibling.
                    stats.backtracks += 1;
                    let carried2 = self.descend_filter(c2, carried, stats);
                    self.sample_at(c2, &carried2, query, memo, rng, stats)
                }
            }
        }
    }

    /// Uniform pick among leaf candidates passing the membership test
    /// against the *original* query filter.
    fn sample_leaf<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<u64> {
        let matches = self.leaf_matches(node, query, memo, stats);
        if matches.is_empty() {
            None
        } else {
            Some(matches[rng.gen_range(0..matches.len())])
        }
    }

    /// Collects all leaf candidates passing the membership test (full
    /// scan on a memo miss, shared `Arc` on a hit).
    fn leaf_matches(
        &self,
        node: NodeId,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> Arc<Vec<u64>> {
        if let Some(cached) = memo.leaves.get(&node) {
            return Arc::clone(cached);
        }
        let mut out = Vec::new();
        // Bulk-membership kernel (layout dispatch hoisted out of the
        // loop); identical candidate order to a naive `contains` scan.
        stats.memberships +=
            query.for_each_member(self.tree.leaf_candidates(node), |x| out.push(x));
        let out = Arc::new(out);
        memo.leaves.insert(node, Arc::clone(&out));
        out
    }

    /// One-pass multi-sampling (§5.3): sends `r` independent search paths
    /// down the tree together, splitting them at each node with a binomial
    /// draw biased by the children's weights. Paths reaching the same leaf
    /// share one brute-force scan; leaf draws are with replacement.
    ///
    /// Fewer than `r` samples are returned only when paths die on
    /// false-positive routes with no live sibling. Correction is not
    /// applied here (the split *is* the proposal distribution).
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        r: usize,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Vec<u64> {
        let mut memo = QueryMemo::new();
        self.try_sample_many_memo(query, r, &mut memo, rng, stats)
            .unwrap_or_default()
    }

    /// [`Self::sample_many`] with typed errors and a persistent memo.
    pub fn try_sample_many_memo<R: Rng + ?Sized>(
        &self,
        query: &BloomFilter,
        r: usize,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Result<Vec<u64>, BstError> {
        let root = self.tree.root().ok_or(BstError::EmptyTree)?;
        if query.is_empty() {
            return Err(BstError::EmptyFilter);
        }
        let mut out = Vec::with_capacity(r);
        if r == 0 {
            return Ok(out);
        }
        self.many_at(root, query, query, r, memo, rng, stats, &mut out);
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn many_at<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        carried: &BloomFilter,
        query: &BloomFilter,
        r: usize,
        memo: &mut QueryMemo,
        rng: &mut R,
        stats: &mut OpStats,
        out: &mut Vec<u64>,
    ) -> usize {
        if r == 0 {
            return 0;
        }
        stats.nodes_visited += 1;
        if self.tree.is_leaf(node) {
            let matches = self.leaf_matches(node, query, memo, stats);
            if matches.is_empty() {
                return 0;
            }
            for _ in 0..r {
                out.push(matches[rng.gen_range(0..matches.len())]);
            }
            return r;
        }
        let (lc, rc) = self.tree.children(node);
        let le = self.eval_child(lc, carried, memo, stats);
        let re = self.eval_child(rc, carried, memo, stats);
        // Mask dead children out so the match below carries the
        // liveness proof in the type.
        let lc = if le.live { lc } else { None };
        let rc = if re.live { rc } else { None };
        match (lc, rc) {
            (None, None) => 0,
            (Some(c), None) | (None, Some(c)) => {
                let carried = self.descend_filter(c, carried, stats);
                self.many_at(c, &carried, query, r, memo, rng, stats, out)
            }
            (Some(cl), Some(cr)) => {
                let p_left = if self.cfg.proportional_descent {
                    le.ratio_weight / (le.ratio_weight + re.ratio_weight)
                } else {
                    0.5
                };
                let r_left = bst_stats::binomial::sample_binomial(rng, r as u64, p_left) as usize;
                let carried_l = self.descend_filter(cl, carried, stats);
                let carried_r = self.descend_filter(cr, carried, stats);
                let mut got = self.many_at(cl, &carried_l, query, r_left, memo, rng, stats, out);
                got += self.many_at(cr, &carried_r, query, r - r_left, memo, rng, stats, out);
                // Deficit rounds: paths that died on false-positive routes
                // are re-split until resolved or no further progress (the
                // multi-path analogue of single-sample backtracking).
                let mut rounds = 0;
                while got < r && rounds < 16 {
                    stats.backtracks += 1;
                    rounds += 1;
                    let deficit = r - got;
                    let r_left =
                        bst_stats::binomial::sample_binomial(rng, deficit as u64, p_left) as usize;
                    let mut extra =
                        self.many_at(cl, &carried_l, query, r_left, memo, rng, stats, out);
                    extra += self.many_at(
                        cr,
                        &carried_r,
                        query,
                        deficit - r_left,
                        memo,
                        rng,
                        stats,
                        out,
                    );
                    if extra == 0 && deficit == r {
                        break; // neither side can deliver anything
                    }
                    got += extra;
                }
                got.min(r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BloomSampleTree;
    use bst_bloom::hash::HashKind;
    use bst_bloom::params::TreePlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree(m: usize) -> BloomSampleTree {
        BloomSampleTree::build(&TreePlan {
            namespace: 4096,
            m,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 3,
            depth: 5,
            leaf_capacity: 128,
            target_accuracy: 0.9,
        })
    }

    #[test]
    fn sample_returns_positive_of_query() {
        let t = tree(1 << 16);
        let keys: Vec<u64> = (0..200u64).map(|i| i * 19 + 5).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OpStats::new();
        for _ in 0..50 {
            let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
            assert!(q.contains(s));
        }
        assert!(stats.memberships > 0);
        assert!(stats.intersections > 0);
    }

    #[test]
    fn large_filter_samples_only_true_elements() {
        let t = tree(1 << 18);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 37 + 11).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OpStats::new();
        for _ in 0..100 {
            let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
            assert!(keys.binary_search(&s).is_ok(), "sampled non-element {s}");
        }
    }

    #[test]
    fn empty_filter_yields_typed_error() {
        let t = tree(1 << 16);
        let q = t.query_filter(std::iter::empty());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = OpStats::new();
        assert_eq!(sampler.sample(&q, &mut rng, &mut stats), None);
        assert_eq!(
            sampler.try_sample(&q, &mut rng, &mut stats),
            Err(BstError::EmptyFilter)
        );
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn singleton_set_always_found() {
        let t = tree(1 << 16);
        let q = t.query_filter([2025u64]);
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = OpStats::new();
        for _ in 0..20 {
            assert_eq!(sampler.sample(&q, &mut rng, &mut stats), Some(2025));
        }
    }

    #[test]
    fn bit_overlap_liveness_never_loses_elements() {
        // Every key must be reachable: draw many samples and check that
        // every key is eventually produced (sound liveness guarantees a
        // nonzero probability for each).
        let t = tree(1 << 17);
        let keys: Vec<u64> = (0..50u64).map(|i| i * 80 + 3).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = OpStats::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3000 {
            if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                seen.insert(s);
            }
        }
        for k in &keys {
            assert!(seen.contains(k), "key {k} never sampled");
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
    fn corrected_sampling_is_uniform_chi2() {
        let t = tree(1 << 17);
        let n = 40usize;
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 101 + 7).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::with_config(&t, SamplerConfig::corrected());
        let mut rng = StdRng::seed_from_u64(6);
        let mut stats = OpStats::new();
        let rounds = bst_stats::chi2::PAPER_ROUNDS_PER_ELEMENT * n;
        let mut counts = vec![0u64; n];
        for _ in 0..rounds {
            let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
            let idx = keys.binary_search(&s).expect("true element");
            counts[idx] += 1;
        }
        let res = bst_stats::chi2_uniform_test(&counts);
        // Assert at 1%: p-values of a correct sampler are Uniform(0,1), so
        // the paper's 0.08 level would flake by construction; genuine
        // non-uniformity lands at p < 1e-10.
        assert!(
            res.is_uniform_at(0.01),
            "chi2 rejected uniformity: p = {}",
            res.p_value
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow: run under --release")]
    fn memoized_corrected_sampling_is_uniform_chi2() {
        // The same uniformity bar as the one-shot path, but through one
        // persistent memo — caching must not change the distribution.
        let t = tree(1 << 17);
        let n = 40usize;
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 101 + 7).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::with_config(&t, SamplerConfig::corrected());
        let mut rng = StdRng::seed_from_u64(61);
        let mut stats = OpStats::new();
        let mut memo = QueryMemo::new();
        let rounds = bst_stats::chi2::PAPER_ROUNDS_PER_ELEMENT * n;
        let mut counts = vec![0u64; n];
        for _ in 0..rounds {
            let s = sampler
                .try_sample_memo(&q, &mut memo, &mut rng, &mut stats)
                .expect("sample");
            let idx = keys.binary_search(&s).expect("true element");
            counts[idx] += 1;
        }
        let res = bst_stats::chi2_uniform_test(&counts);
        assert!(
            res.is_uniform_at(0.01),
            "chi2 rejected uniformity through memo: p = {}",
            res.p_value
        );
    }

    #[test]
    fn paper_config_matches_paper_op_shape() {
        // Paper-literal mode: 2 intersections per internal node on the
        // descent path, leaf memberships = leaf width.
        let t = tree(1 << 16);
        let keys: Vec<u64> = (100..120u64).collect(); // one tight cluster
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::with_config(&t, SamplerConfig::paper());
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = OpStats::new();
        let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
        assert!(q.contains(s));
        // Depth 5, no backtracks for a clean cluster: exactly 10
        // intersections and 128 memberships.
        assert_eq!(stats.intersections, 10, "{stats}");
        assert_eq!(stats.memberships, 128, "{stats}");
    }

    #[test]
    fn memo_amortizes_repeated_samples() {
        let t = tree(1 << 16);
        let keys: Vec<u64> = (100..120u64).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(71);
        let mut memo = QueryMemo::new();
        let mut first = OpStats::new();
        sampler
            .try_sample_memo(&q, &mut memo, &mut rng, &mut first)
            .expect("sample");
        assert!(memo.cached_evals() > 0);
        assert!(memo.cached_leaves() > 0);
        // Repeats along the already-walked path do no filter work at all.
        let mut repeat = OpStats::new();
        for _ in 0..50 {
            sampler
                .try_sample_memo(&q, &mut memo, &mut rng, &mut repeat)
                .expect("sample");
        }
        assert!(
            repeat.total_ops() < first.total_ops(),
            "50 memoized samples ({} ops) should cost less than 1 cold sample ({} ops)",
            repeat.total_ops(),
            first.total_ops()
        );
    }

    #[test]
    fn tiny_m_forces_backtracking_but_stays_sound() {
        let t = tree(256);
        let keys: Vec<u64> = (0..30u64).map(|i| i * 131 + 1).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = OpStats::new();
        let mut got = 0;
        for _ in 0..100 {
            if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                assert!(q.contains(s));
                got += 1;
            }
        }
        assert!(got > 0, "should find samples despite noise");
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let t = tree(1 << 17);
        let keys: Vec<u64> = (0..25u64).map(|i| i * 163 + 13).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(8);
        let mut stats = OpStats::new();
        let samples = sampler.sample_many(&q, 500, &mut rng, &mut stats);
        assert_eq!(samples.len(), 500);
        for s in &samples {
            assert!(keys.binary_search(s).is_ok());
        }
        // All keys appear across 500 draws of 25 keys (whp).
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() >= 20, "only {} distinct", distinct.len());
    }

    #[test]
    fn sample_many_is_cheaper_than_repeated_singles() {
        let t = tree(1 << 16);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 41).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(9);
        let r = 200;
        let mut stats_many = OpStats::new();
        let got = sampler.sample_many(&q, r, &mut rng, &mut stats_many);
        assert!(!got.is_empty());
        let mut stats_single = OpStats::new();
        for _ in 0..r {
            let _ = sampler.sample(&q, &mut rng, &mut stats_single);
        }
        assert!(
            stats_many.total_ops() < stats_single.total_ops(),
            "one-pass {} ops vs repeated {} ops",
            stats_many.total_ops(),
            stats_single.total_ops()
        );
    }

    #[test]
    fn sample_many_zero_requests() {
        let t = tree(1 << 16);
        let q = t.query_filter([1u64]);
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(10);
        let mut stats = OpStats::new();
        assert!(sampler.sample_many(&q, 0, &mut rng, &mut stats).is_empty());
    }

    #[test]
    fn uniform_descent_ablation_still_sound() {
        let t = tree(1 << 16);
        let keys: Vec<u64> = (0..60u64).map(|i| i * 67).collect();
        let q = t.query_filter(keys.iter().copied());
        let sampler = BstSampler::with_config(
            &t,
            SamplerConfig {
                proportional_descent: false,
                ..SamplerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut stats = OpStats::new();
        for _ in 0..50 {
            if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                assert!(q.contains(s));
            }
        }
    }

    #[test]
    fn huge_threshold_prunes_everything() {
        let t = tree(1 << 16);
        let q = t.query_filter([5u64, 6, 7]);
        let sampler = BstSampler::with_config(
            &t,
            SamplerConfig {
                liveness: Liveness::EstimateThreshold(1e9),
                ..SamplerConfig::paper()
            },
        );
        let mut rng = StdRng::seed_from_u64(12);
        let mut stats = OpStats::new();
        assert_eq!(
            sampler.try_sample(&q, &mut rng, &mut stats),
            Err(BstError::NoLiveLeaf)
        );
    }

    #[test]
    fn all_config_combinations_sample_soundly() {
        let t = tree(1 << 16);
        let keys: Vec<u64> = (0..80u64).map(|i| i * 51).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut rng = StdRng::seed_from_u64(13);
        for liveness in [
            Liveness::BitOverlap,
            Liveness::EstimateThreshold(DEFAULT_THRESHOLD),
        ] {
            for ratio in [RatioEstimator::AndCardinality, RatioEstimator::Papapetrou] {
                for carry in [false, true] {
                    for correction in [
                        Correction::None,
                        Correction::Rejection { gamma: 4.0 },
                        Correction::RejectionAuto,
                    ] {
                        let cfg = SamplerConfig {
                            liveness,
                            ratio,
                            carry_intersection: carry,
                            proportional_descent: true,
                            correction,
                        };
                        let sampler = BstSampler::with_config(&t, cfg);
                        let mut stats = OpStats::new();
                        if let Some(s) = sampler.sample(&q, &mut rng, &mut stats) {
                            assert!(q.contains(s), "cfg {cfg:?} returned non-positive");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn memoized_results_match_fresh_memo_results() {
        // Determinism: walking with a warm memo consumes the RNG stream
        // identically to a cold memo, so the sample sequences agree.
        let t = tree(1 << 16);
        let keys: Vec<u64> = (0..120u64).map(|i| i * 31 + 2).collect();
        let q = t.query_filter(keys.iter().copied());
        for cfg in [SamplerConfig::default(), SamplerConfig::corrected()] {
            let sampler = BstSampler::with_config(&t, cfg);
            let mut warm_memo = QueryMemo::new();
            let mut warm_rng = StdRng::seed_from_u64(14);
            let mut cold_rng = StdRng::seed_from_u64(14);
            let mut stats = OpStats::new();
            for _ in 0..40 {
                let warm = sampler.try_sample_memo(&q, &mut warm_memo, &mut warm_rng, &mut stats);
                let mut cold_memo = QueryMemo::new();
                let cold = sampler.try_sample_memo(&q, &mut cold_memo, &mut cold_rng, &mut stats);
                assert_eq!(warm, cold, "cfg {cfg:?}");
            }
        }
    }
}
