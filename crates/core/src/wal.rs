//! bst-wal: an append-only log of replayable mutation records.
//!
//! Snapshots ([`crate::persistence`]) are full-system and synchronous —
//! fine for a build artifact, hopeless for the §5.2 occupancy churn the
//! paper targets. The WAL closes the gap: every acked mutation appends
//! one small record *before* the ack, and recovery is the newest
//! checkpoint plus a tail replay of the log through the ordinary engine
//! API, landing on a state whose queries are bit-identical to the
//! uncrashed engine (the snapshot codec is byte-deterministic and the
//! engine's id allocation is a deterministic function of prior state).
//!
//! ## On-disk format
//!
//! Little-endian throughout, like every codec in the workspace:
//!
//! ```text
//! frame:  len u32 | checksum u64 (FNV-1a over payload) | payload
//! payload: op u8 | body
//!   1 Create     id u64 | key_count u32 | keys u64…
//!   2 InsertKeys id u64 | key_count u32 | keys u64…
//!   3 RemoveKeys id u64 | key_count u32 | keys u64…
//!   4 DropSet    id u64
//!   5 OccInsert  id u64
//!   6 OccRemove  id u64
//! ```
//!
//! A checkpoint file ([`encode_checkpoint`]) is
//! `BSTCKPT1 | covered_seq u64 LE | snapshot`: the embedded sequence
//! number names the newest log segment the snapshot covers, so recovery
//! replays only strictly newer segments and a complete-but-stale
//! segment lying next to a fresh checkpoint is skipped, never
//! double-applied.
//!
//! A crash mid-append leaves a **torn tail**: a final frame whose
//! length, checksum, or payload is incomplete or inconsistent.
//! [`recover`] replays the longest valid prefix and reports where it
//! ends; the opener truncates the file there, so an un-acked torn write
//! disappears exactly as if it never happened. Nothing after a bad
//! frame is trusted — a corrupt length can desynchronise every later
//! frame boundary, so scanning past it would fabricate records.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] pays one `fdatasync` per acked mutation
//! (power-loss durable); [`FsyncPolicy::Never`] leaves flushing to the
//! OS page cache (process-crash durable, power-loss window). Both
//! policies survive SIGKILL of the process, which is what the CI smoke
//! test exercises.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};

/// When the log file is flushed to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Leave flushing to the OS: durable across process crashes
    /// (SIGKILL), a bounded loss window across power failure.
    #[default]
    Never,
    /// `fdatasync` before every ack: durable across power failure.
    Always,
}

/// One replayable mutation, exactly the engine's own mutation surface:
/// store set operations plus §5.2 occupancy deltas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// `create(keys)` acked with the allocated set id. Replay re-derives
    /// the same id (allocation is deterministic given prior state); the
    /// recorded id double-checks the replay didn't diverge.
    Create {
        /// The id the live engine allocated.
        id: u64,
        /// The created set's keys, in the order the engine saw them.
        keys: Vec<u64>,
    },
    /// `insert_keys(id, keys)`.
    InsertKeys {
        /// Target set id.
        id: u64,
        /// Inserted keys, in call order.
        keys: Vec<u64>,
    },
    /// `remove_keys(id, keys)`.
    RemoveKeys {
        /// Target set id.
        id: u64,
        /// Removed keys, in call order.
        keys: Vec<u64>,
    },
    /// `drop_set(id)`.
    DropSet {
        /// Dropped set id.
        id: u64,
    },
    /// `insert_occupied(id)` — §5.2 namespace occupancy insertion.
    OccInsert {
        /// Namespace id marked occupied.
        id: u64,
    },
    /// `remove_occupied(id)` — §5.2 occupancy removal.
    OccRemove {
        /// Namespace id removed from the occupancy.
        id: u64,
    },
}

/// Frame header size: `len u32 | checksum u64`.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on one payload (64 MiB): a length field beyond this is
/// treated as tail corruption, never as an allocation request.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// File-growth step (256 KiB): appends land inside preallocated space,
/// so the per-record `write(2)` does not also extend the file.
const PREALLOC_CHUNK: u64 = 256 << 10;

const OP_CREATE: u8 = 1;
const OP_INSERT_KEYS: u8 = 2;
const OP_REMOVE_KEYS: u8 = 3;
const OP_DROP_SET: u8 = 4;
const OP_OCC_INSERT: u8 = 5;
const OP_OCC_REMOVE: u8 = 6;

/// FNV-1a over `bytes` — tiny, dependency-free, and plenty to detect
/// torn or bit-rotted frames (this guards against accidents, not
/// adversaries; snapshots get the same trust level).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_keys(buf: &mut BytesMut, keys: &[u64]) -> io::Result<()> {
    let count = u32::try_from(keys.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many keys for one record"))?;
    buf.put_u32_le(count);
    for &k in keys {
        buf.put_u64_le(k);
    }
    Ok(())
}

fn get_keys(input: &mut &[u8]) -> Option<Vec<u64>> {
    if input.remaining() < 4 {
        return None;
    }
    let count = input.get_u32_le() as usize;
    if (input.remaining() as u64) < (count as u64) * 8 {
        return None;
    }
    let mut keys = Vec::with_capacity(count.min(input.remaining() / 8));
    for _ in 0..count {
        keys.push(input.get_u64_le());
    }
    Some(keys)
}

/// Serializes one record's payload (op byte + body) into `buf`.
pub fn encode_payload(buf: &mut BytesMut, record: &WalRecord) -> io::Result<()> {
    match record {
        WalRecord::Create { id, keys } => {
            buf.put_u8(OP_CREATE);
            buf.put_u64_le(*id);
            put_keys(buf, keys)?;
        }
        WalRecord::InsertKeys { id, keys } => {
            buf.put_u8(OP_INSERT_KEYS);
            buf.put_u64_le(*id);
            put_keys(buf, keys)?;
        }
        WalRecord::RemoveKeys { id, keys } => {
            buf.put_u8(OP_REMOVE_KEYS);
            buf.put_u64_le(*id);
            put_keys(buf, keys)?;
        }
        WalRecord::DropSet { id } => {
            buf.put_u8(OP_DROP_SET);
            buf.put_u64_le(*id);
        }
        WalRecord::OccInsert { id } => {
            buf.put_u8(OP_OCC_INSERT);
            buf.put_u64_le(*id);
        }
        WalRecord::OccRemove { id } => {
            buf.put_u8(OP_OCC_REMOVE);
            buf.put_u64_le(*id);
        }
    }
    Ok(())
}

/// Decodes one payload. `None` means the payload is not a well-formed
/// record (unknown op, short body, trailing bytes) — recovery treats
/// that as tail corruption.
pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut input = payload;
    if input.remaining() < 1 + 8 {
        return None;
    }
    let op = input.get_u8();
    let id = input.get_u64_le();
    let record = match op {
        OP_CREATE => WalRecord::Create {
            id,
            keys: get_keys(&mut input)?,
        },
        OP_INSERT_KEYS => WalRecord::InsertKeys {
            id,
            keys: get_keys(&mut input)?,
        },
        OP_REMOVE_KEYS => WalRecord::RemoveKeys {
            id,
            keys: get_keys(&mut input)?,
        },
        OP_DROP_SET => WalRecord::DropSet { id },
        OP_OCC_INSERT => WalRecord::OccInsert { id },
        OP_OCC_REMOVE => WalRecord::OccRemove { id },
        _ => return None,
    };
    if !input.is_empty() {
        return None;
    }
    Some(record)
}

/// Magic prefixing a checkpoint file: format identifier plus revision.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"BSTCKPT1";

/// Checkpoint header size: magic + covered segment sequence (`u64 LE`).
const CHECKPOINT_HEADER: usize = 8 + 8;

/// Encodes a checkpoint file: the magic, the sequence number of the
/// newest log segment the snapshot covers (recovery replays only
/// strictly newer segments), then the engine snapshot bytes. The
/// embedded sequence is what makes checkpoint-plus-truncation a single
/// atomic transition: publishing the checkpoint *is* the truncation,
/// because covered segments stop being replayed the instant the rename
/// lands, whether or not their files have been unlinked yet.
pub fn encode_checkpoint(covered_seq: u64, snapshot: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER + snapshot.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&covered_seq.to_le_bytes());
    out.extend_from_slice(snapshot);
    out
}

/// Splits a checkpoint file into its covered-segment sequence number
/// and the snapshot bytes. Borrows the input — the decode path
/// allocates nothing; a short header or wrong magic is `InvalidData`.
pub fn decode_checkpoint(bytes: &[u8]) -> io::Result<(u64, &[u8])> {
    let mut input = bytes;
    if input.remaining() < CHECKPOINT_HEADER || &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a bst checkpoint file (short header or bad magic)",
        ));
    }
    input.advance(CHECKPOINT_MAGIC.len());
    let covered = input.get_u64_le();
    Ok((covered, input))
}

/// What [`recover`] found in a log file: the longest valid record
/// prefix, where it ends, and how many torn/corrupt bytes follow it.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset where the valid prefix ends — the opener truncates
    /// the file here before appending again.
    pub valid_len: u64,
    /// Bytes after `valid_len` (a torn or corrupt tail; 0 when clean).
    pub torn_bytes: u64,
}

/// Reads `path` and replays its longest valid prefix. A missing file is
/// an empty log, not an error; scanning stops at the first frame whose
/// length, checksum, or payload doesn't hold up.
pub fn recover(path: &Path) -> io::Result<Recovery> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovery::default()),
        Err(e) => return Err(e),
    };
    let mut input: &[u8] = &bytes;
    let mut recovery = Recovery::default();
    while input.remaining() >= FRAME_HEADER {
        let mut frame = input;
        let len = frame.get_u32_le() as usize;
        if len == 0 || len > MAX_RECORD_BYTES || frame.remaining() < 8 + len {
            break;
        }
        let checksum = frame.get_u64_le();
        let payload = &frame[..len];
        if fnv1a64(payload) != checksum {
            break;
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        recovery.records.push(record);
        input.advance(FRAME_HEADER + len);
        recovery.valid_len += (FRAME_HEADER + len) as u64;
    }
    recovery.torn_bytes = bytes.len() as u64 - recovery.valid_len;
    Ok(recovery)
}

/// An open log file positioned for appending.
///
/// Not internally synchronised: the durable engine serialises appends
/// under its own lock so log order always equals application order
/// (replay determinism depends on it).
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    len: u64,
    appended: u64,
    fsyncs: u64,
    /// Reused payload/frame buffers: the append hot path does exactly
    /// one `write(2)` and zero steady-state allocations.
    payload_buf: BytesMut,
    frame_buf: BytesMut,
    /// Physical file size: the file is grown in [`PREALLOC_CHUNK`]
    /// steps so steady-state appends land inside already-allocated
    /// space instead of extending the file on every write. The zeroed
    /// slack past `len` is indistinguishable from a torn tail to
    /// [`recover`] (a zero length prefix can never carry the FNV of an
    /// empty payload), so it is dropped on reopen like any other tail.
    allocated: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Wal({:?}, {} bytes, {:?})",
            self.path, self.len, self.fsync
        )
    }
}

impl Wal {
    /// Opens (creating if needed) the log at `path`, truncated to
    /// `valid_len` — pass [`Recovery::valid_len`] so a torn tail is
    /// physically removed before the first new append lands after it.
    pub fn open(path: &Path, fsync: FsyncPolicy, valid_len: u64) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            fsync,
            len: valid_len,
            appended: 0,
            fsyncs: 0,
            payload_buf: BytesMut::new(),
            frame_buf: BytesMut::new(),
            allocated: valid_len,
        })
    }

    /// Appends one record frame, flushing per the fsync policy. On
    /// success the record is durable (to the policy's level) and may be
    /// acked; on failure the caller must surface the error without
    /// acking — the tail is rewound so a partial frame can't linger as
    /// valid-looking garbage.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.payload_buf.clear();
        encode_payload(&mut self.payload_buf, record)?;
        let payload = &self.payload_buf;
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record exceeds MAX_RECORD_BYTES",
            ));
        }
        self.frame_buf.clear();
        let frame = &mut self.frame_buf;
        frame.put_u32_le(payload.len() as u32);
        frame.put_u64_le(fnv1a64(payload));
        frame.put_slice(payload);
        let end = self.len + self.frame_buf.len() as u64;
        if end > self.allocated {
            let grown = end.max(self.allocated + PREALLOC_CHUNK);
            self.file.set_len(grown)?;
            self.allocated = grown;
        }
        let frame = &self.frame_buf;
        if let Err(e) = self.file.write_all(frame) {
            // Best-effort rewind: recovery would drop a half-written
            // frame anyway (bad length/checksum), this just keeps the
            // in-process file position consistent.
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
            self.allocated = self.len;
            return Err(e);
        }
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
            self.fsyncs += 1;
        }
        self.len += frame.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Flushes the file to stable storage regardless of policy (used at
    /// checkpoint boundaries).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Empties the log — every record so far is covered by a checkpoint.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.len = 0;
        self.allocated = 0;
        Ok(())
    }

    /// Current byte length of the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records appended through this handle since open.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Fsyncs issued through this handle since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Wal {
    /// Best-effort trim of preallocated slack: a cleanly closed log is
    /// exactly its frames. A crash skips this — recovery treats the
    /// zeroed slack as a torn tail and the next open truncates it.
    fn drop(&mut self) {
        if self.allocated > self.len {
            let _ = self.file.set_len(self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "bst-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Create {
                id: 0,
                keys: vec![1, 5, 9],
            },
            WalRecord::InsertKeys {
                id: 0,
                keys: vec![42],
            },
            WalRecord::OccInsert { id: 7 },
            WalRecord::RemoveKeys {
                id: 0,
                keys: vec![5, 1],
            },
            WalRecord::OccRemove { id: 7 },
            WalRecord::Create {
                id: 1,
                keys: vec![],
            },
            WalRecord::DropSet { id: 0 },
        ]
    }

    #[test]
    fn append_recover_roundtrip() {
        let path = temp_log("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.appended(), 7);
        drop(wal);
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, sample_records());
        assert_eq!(recovery.torn_bytes, 0);
        assert_eq!(
            recovery.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "clean log: every byte is part of a valid frame"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_log("missing");
        let _ = std::fs::remove_file(&path);
        let recovery = recover(&path).unwrap();
        assert!(recovery.records.is_empty());
        assert_eq!((recovery.valid_len, recovery.torn_bytes), (0, 0));
    }

    #[test]
    fn torn_tail_truncates_at_every_cut_point() {
        // Whatever byte the crash landed on, recovery keeps exactly the
        // records whose frames are fully intact and reports the rest as
        // torn — never an error, never a fabricated record.
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
        let records = sample_records();
        let mut ends = Vec::new();
        for r in &records {
            wal.append(r).unwrap();
            ends.push(wal.len());
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let recovery = recover(&path).unwrap();
            let intact = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(recovery.records, records[..intact], "cut at {cut}");
            assert_eq!(
                recovery.valid_len,
                ends.get(intact.wrapping_sub(1)).copied().unwrap_or(0)
            );
            assert_eq!(recovery.torn_bytes, cut as u64 - recovery.valid_len);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_or_opcode_stops_the_scan() {
        let path = temp_log("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
        let records = sample_records();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Flip one payload byte in the third frame: frames 1–2 survive,
        // everything from the flip on is dropped.
        let mut bent = full.clone();
        let third_payload = {
            let mut off = 0usize;
            for _ in 0..2 {
                let len = u32::from_le_bytes(bent[off..off + 4].try_into().unwrap()) as usize;
                off += FRAME_HEADER + len;
            }
            off + FRAME_HEADER
        };
        bent[third_payload] ^= 0xFF;
        std::fs::write(&path, &bent).unwrap();
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, records[..2]);
        assert_eq!(
            recovery.valid_len,
            third_payload as u64 - FRAME_HEADER as u64
        );
        // A zero/oversized length field is corruption, not an alloc.
        let mut zeroed = full.clone();
        zeroed[0..4].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &zeroed).unwrap();
        assert!(recover(&path).unwrap().records.is_empty());
        let mut huge = full;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(recover(&path).unwrap().records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncates_the_torn_tail_and_resumes() {
        let path = temp_log("resume");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 0).unwrap();
        wal.append(&WalRecord::OccInsert { id: 3 }).unwrap();
        let clean = wal.len();
        assert!(wal.fsyncs() >= 1, "Always policy fsyncs per append");
        drop(wal);
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let recovery = recover(&path).unwrap();
        assert_eq!((recovery.valid_len, recovery.torn_bytes), (clean, 5));
        let mut wal = Wal::open(&path, FsyncPolicy::Never, recovery.valid_len).unwrap();
        wal.append(&WalRecord::OccRemove { id: 3 }).unwrap();
        drop(wal);
        let recovery = recover(&path).unwrap();
        assert_eq!(
            recovery.records,
            vec![
                WalRecord::OccInsert { id: 3 },
                WalRecord::OccRemove { id: 3 }
            ]
        );
        assert_eq!(recovery.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_header_roundtrips_and_rejects_garbage() {
        let snapshot = b"engine snapshot bytes".to_vec();
        let encoded = encode_checkpoint(41, &snapshot);
        let (covered, body) = decode_checkpoint(&encoded).unwrap();
        assert_eq!(covered, 41);
        assert_eq!(body, &snapshot[..]);
        // Empty snapshots are legal (header only).
        let header_only = encode_checkpoint(0, &[]);
        let (covered, body) = decode_checkpoint(&header_only).unwrap();
        assert_eq!((covered, body.len()), (0, 0));
        // Short header, wrong magic, raw snapshot bytes: all rejected.
        assert!(decode_checkpoint(&encoded[..15]).is_err());
        assert!(decode_checkpoint(b"NOTCKPT0________body").is_err());
        assert!(decode_checkpoint(&snapshot).is_err());
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_log("truncate");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
        wal.append(&WalRecord::DropSet { id: 9 }).unwrap();
        assert!(!wal.is_empty());
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // Appends keep working after a truncate.
        wal.append(&WalRecord::OccInsert { id: 1 }).unwrap();
        drop(wal);
        assert_eq!(
            recover(&path).unwrap().records,
            vec![WalRecord::OccInsert { id: 1 }]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
